"""Prometheus exposition regression and the diagnostics endpoint.

The exposition contract: every leaf metric in the ``/metrics`` JSON
document appears in the text format (``seconds_avg`` is represented by
the ``_sum``/``_count`` pair per Prometheus convention), every family
declares HELP and TYPE before its samples, and two scrapes of the same
server are structurally identical (same families, same label sets, same
order) — only counter/gauge values may move between them.  The test
parser below is deliberately minimal: if it can round-trip the output,
so can a real scraper.
"""

from __future__ import annotations

import urllib.request

import pytest

from repro.client import ServerClient, ServerError
from repro.server import make_server
from repro.server.metrics import (
    _DELTA_FIELDS,
    _DURABILITY_COUNTERS,
    _SCALARS,
    LATENCY_BUCKETS,
    prometheus_text,
)

SCHEMA_DOC = {
    "name": "emp",
    "attributes": [
        {"name": "dept", "type": "string"},
        {"name": "floor", "type": "int"},
    ],
}
RULES_DOC = [
    {"type": "fd", "relation": "emp", "lhs": ["dept"], "rhs": ["floor"]}
]
ROWS = [
    {"dept": "eng", "floor": 1},
    {"dept": "eng", "floor": 2},
    {"dept": "ops", "floor": 3},
]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    server = make_server(
        port=0, state_dir=tmp_path_factory.mktemp("state"), snapshot_every=4
    )
    server.start_background()
    yield server
    server.shutdown()


@pytest.fixture(scope="module")
def client(server):
    client = ServerClient(base_url=server.base_url)
    client.wait_ready()
    # some traffic so every metric section is populated
    try:
        client.delete_session("mx")
    except ServerError:
        pass
    client.create_session(
        schema=SCHEMA_DOC,
        rules=RULES_DOC,
        data={"emp": list(ROWS)},
        session_id="mx",
    )
    delta = client.apply(
        "mx",
        {"ops": [{"op": "insert", "relation": "emp",
                  "row": {"dept": "qa", "floor": 9}}]},
    )
    client.detect("mx")
    client.undo("mx", delta["undo_token"])
    return client


def parse_prometheus(text: str):
    """Minimal text-format (0.0.4) parser.

    Returns ``{family: {"type": ..., "help": ..., "samples": [(name,
    labels, value)]}}`` and *enforces* the format rules the scraper
    relies on: HELP/TYPE precede samples, sample names belong to a
    declared family (modulo histogram suffixes), values parse as floats.
    """
    families: dict = {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"type": None, "help": help_text, "samples": []}
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name in families, f"TYPE before HELP for {name}"
            assert families[name]["type"] is None, f"duplicate TYPE {name}"
            assert kind in ("counter", "gauge", "histogram")
            families[name]["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        sample, _, value_text = line.rpartition(" ")
        name, _, label_text = sample.partition("{")
        labels = {}
        if label_text:
            assert label_text.endswith("}")
            for pair in label_text[:-1].split(","):
                key, _, raw = pair.partition("=")
                assert raw.startswith('"') and raw.endswith('"'), pair
                labels[key] = raw[1:-1]
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)]
            if name.endswith(suffix) and base in families:
                if families[base]["type"] == "histogram":
                    family = base
                break
        assert family in families, f"sample before TYPE/HELP: {line!r}"
        assert families[family]["type"] is not None
        value = float(value_text)  # must parse
        families[family]["samples"].append((name, labels, value))
    for name, fam in families.items():
        assert fam["samples"], f"family {name} declared but empty"
    return families


class TestPrometheusExposition:
    def test_content_type_and_status(self, client):
        request = urllib.request.Request(
            f"{client.base_url}/metrics?format=prometheus"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert (
                response.headers["Content-Type"]
                == "text/plain; version=0.0.4; charset=utf-8"
            )
            body = response.read().decode("utf-8")
        assert body.endswith("\n")
        parse_prometheus(body)

    def test_unknown_format_is_rejected(self, client):
        with pytest.raises(ServerError) as err:
            client._request("GET", "/metrics?format=xml")
        assert err.value.status == 400

    def test_every_json_scalar_is_exposed(self, client):
        # render from one JSON document (prometheus_text is pure), so
        # values compare exactly instead of skewing between two scrapes
        document = client.metrics()
        families = parse_prometheus(prometheus_text(document))
        assert set(families) == set(
            parse_prometheus(client.prometheus_metrics())
        )
        for section, json_key, name, kind, _ in _SCALARS:
            source = document.get(section, {}) if section else document
            if json_key not in source:
                continue
            assert name in families, f"{name} missing from exposition"
            assert families[name]["type"] == kind
            (sample,) = families[name]["samples"]
            assert sample[2] == pytest.approx(float(source[json_key]))

    def test_responses_and_delta_and_durability_exposed(self, client):
        document = client.metrics()
        families = parse_prometheus(prometheus_text(document))

        responses = families["repro_responses_total"]
        statuses = {s[1]["status"] for s in responses["samples"]}
        assert statuses == {str(k) for k in document["responses"]}

        delta_stats = document["engines"]["delta_stats"]
        for field in _DELTA_FIELDS:
            fam = families[f"repro_delta_{field}_total"]
            assert fam["samples"][0][2] == pytest.approx(
                float(delta_stats[field])
            )

        durability = document["durability"]
        assert families["repro_durability_enabled"]["samples"][0][2] == 1.0
        for counter in _DURABILITY_COUNTERS:
            fam = families[f"repro_durability_{counter}"]
            assert fam["samples"][0][2] == pytest.approx(
                float(durability[counter])
            )

    def test_latency_histogram_shape(self, client):
        document = client.metrics()
        families = parse_prometheus(prometheus_text(document))
        histogram = families["repro_request_duration_seconds"]
        assert histogram["type"] == "histogram"
        by_endpoint: dict = {}
        for name, labels, value in histogram["samples"]:
            by_endpoint.setdefault(labels["endpoint"], {})[
                (name, labels.get("le"))
            ] = value
        assert set(by_endpoint) == set(document["endpoints"])
        bounds = [f"{b:g}" for b in LATENCY_BUCKETS] + ["+Inf"]
        for endpoint, samples in by_endpoint.items():
            stats = document["endpoints"][endpoint]
            cumulative = [
                samples[("repro_request_duration_seconds_bucket", bound)]
                for bound in bounds
            ]
            assert cumulative == sorted(cumulative), "buckets not cumulative"
            count = samples[("repro_request_duration_seconds_count", None)]
            assert cumulative[-1] == count == stats["count"]
            total = samples[("repro_request_duration_seconds_sum", None)]
            assert total == pytest.approx(stats["seconds_total"])

    def test_structurally_deterministic_across_scrapes(self, client):
        def structure(text: str):
            families = parse_prometheus(text)
            return [
                (
                    name,
                    fam["type"],
                    fam["help"],
                    [(s[0], tuple(sorted(s[1].items())))
                     for s in fam["samples"]],
                )
                for name, fam in families.items()
            ]

        first = client.prometheus_metrics()
        client.detect("mx")  # move some counters between scrapes
        second = client.prometheus_metrics()
        assert structure(first) == structure(second)

    def test_renderer_is_pure(self, client):
        document = client.metrics()
        assert prometheus_text(document) == prometheus_text(document)


class TestDiagnostics:
    def test_diagnostics_document(self, client):
        client.detect("mx")
        doc = client.diagnostics("mx")
        assert doc["session"] == "mx"
        assert doc["relations"] == {"emp": 3}
        assert doc["rules"] == 1
        assert doc["requests"] >= 3
        assert doc["age_seconds"] >= doc["idle_seconds"] >= 0

        engine = doc["engine"]
        assert engine["warm_delta_engine"] is True
        assert set(engine["delta_stats"]) >= {"batches", "ops_applied"}

        locks = doc["locks"]
        assert locks["acquisitions"] >= 1
        assert locks["wait_seconds_total"] >= 0.0
        assert locks["wait_seconds_max"] >= 0.0

        degraded = doc["degraded"]
        assert degraded["degraded"] is False
        assert degraded["consecutive_failures"] == 0

        durability = doc["durability"]
        assert durability["enabled"] is True
        assert durability["generation"] >= 0

        assert isinstance(doc["undo_tokens"], list)

    def test_unknown_session_404(self, client):
        with pytest.raises(ServerError) as err:
            client.diagnostics("missing")
        assert err.value.status == 404
