"""X-repairs: greedy and exhaustive, with Example 5.1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.base import holds
from repro.deps.fd import FD
from repro.paper import example51_instance, example51_key
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.checking import is_x_repair
from repro.repair.xrepair import all_x_repairs, count_x_repairs, greedy_x_repair


class TestExample51:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_exactly_2_to_the_n_repairs(self, n):
        db = example51_instance(n)
        assert count_x_repairs(db, [example51_key()]) == 2 ** n

    def test_each_repair_valid(self):
        db = example51_instance(3)
        for repair in all_x_repairs(db, [example51_key()]):
            assert is_x_repair(db, repair, [example51_key()])
            assert len(repair.relation("R")) == 3  # one tuple per key group

    def test_limit_enforced(self):
        db = example51_instance(10)
        with pytest.raises(MemoryError):
            all_x_repairs(db, [example51_key()], limit=50)


class TestGreedy:
    def test_produces_maximal_consistent_subset(self):
        db = example51_instance(4)
        repair = greedy_x_repair(db, [example51_key()])
        assert is_x_repair(db, repair, [example51_key()])

    def test_consistent_input_unchanged(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(
            DatabaseSchema([schema]), {"R": [("a", "x"), ("b", "y")]}
        )
        repair = greedy_x_repair(db, [FD("R", ["A"], ["B"])])
        assert repair == db

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]), st.sampled_from(["x", "y"])
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_greedy_always_maximal(self, rows):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(DatabaseSchema([schema]), {"R": rows})
        fd = FD("R", ["A"], ["B"])
        repair = greedy_x_repair(db, [fd])
        assert is_x_repair(db, repair, [fd])


class TestExhaustiveMatchesDefinition:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]), st.sampled_from(["x", "y", "z"])
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_every_enumerated_repair_checks_out(self, rows):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(DatabaseSchema([schema]), {"R": rows})
        fd = FD("R", ["A"], ["B"])
        repairs = all_x_repairs(db, [fd])
        assert repairs  # at least one maximal consistent subset exists
        for repair in repairs:
            assert is_x_repair(db, repair, [fd])

    def test_repairs_distinct(self):
        db = example51_instance(3)
        repairs = all_x_repairs(db, [example51_key()])
        signatures = {
            frozenset(t.values() for t in r.relation("R")) for r in repairs
        }
        assert len(signatures) == len(repairs)
