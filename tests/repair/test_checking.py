"""Repair checking (Theorem 5.1)."""

import pytest

from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.paper import example51_instance, example51_key
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.checking import check_u_repair, is_s_repair, is_x_repair
from repro.repair.models import CostModel


def _db(rows):
    schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
    return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})


class TestXRepairChecking:
    def test_valid_repair(self):
        original = _db([("a", "x"), ("a", "y")])
        candidate = _db([("a", "x")])
        assert is_x_repair(original, candidate, [FD("R", ["A"], ["B"])])

    def test_not_a_subset(self):
        original = _db([("a", "x")])
        candidate = _db([("a", "x"), ("z", "w")])
        assert not is_x_repair(original, candidate, [FD("R", ["A"], ["B"])])

    def test_not_consistent(self):
        original = _db([("a", "x"), ("a", "y"), ("b", "z")])
        candidate = _db([("a", "x"), ("a", "y")])
        assert not is_x_repair(original, candidate, [FD("R", ["A"], ["B"])])

    def test_not_maximal(self):
        original = _db([("a", "x"), ("a", "y"), ("b", "z")])
        candidate = _db([("a", "x")])  # could re-add (b, z)
        assert not is_x_repair(original, candidate, [FD("R", ["A"], ["B"])])


class TestSRepairChecking:
    def test_valid_deletion_repair(self):
        original = _db([("a", "x"), ("a", "y")])
        candidate = _db([("a", "y")])
        assert is_s_repair(original, candidate, [FD("R", ["A"], ["B"])])

    def test_excessive_difference_rejected(self):
        original = _db([("a", "x"), ("a", "y"), ("b", "z")])
        candidate = _db([("a", "x")])  # deleted (b, z) needlessly
        assert not is_s_repair(original, candidate, [FD("R", ["A"], ["B"])])

    def test_insertion_repair_accepted(self):
        schema = DatabaseSchema(
            [
                RelationSchema("R", [("a", STRING)]),
                RelationSchema("S", [("c", STRING)]),
            ]
        )
        original = DatabaseInstance(schema, {"R": [("v",)], "S": []})
        candidate = DatabaseInstance(schema, {"R": [("v",)], "S": [("v",)]})
        assert is_s_repair(original, candidate, [IND("R", ["a"], "S", ["c"])])


class TestURepairChecking:
    def test_valid_value_repair(self):
        original = _db([("a", "x"), ("a", "y")])
        candidate = _db([("a", "x"), ("a", "x")])  # merged by set semantics?
        # set semantics collapses equal tuples; use distinct B values on a
        # second key group instead
        original = _db([("a", "x"), ("b", "y")])
        candidate = _db([("a", "x"), ("b", "y")])
        result = check_u_repair(original, candidate, [FD("R", ["A"], ["B"])])
        assert result.consistent
        assert result.cost == 0.0

    def test_cost_computed(self):
        original = _db([("a", "x"), ("b", "wrong")])
        candidate = _db([("a", "x"), ("b", "right")])
        result = check_u_repair(original, candidate, [FD("R", ["A"], ["B"])])
        assert result.consistent
        assert result.cost > 0

    def test_tuple_count_mismatch_rejected(self):
        original = _db([("a", "x"), ("b", "y")])
        candidate = _db([("a", "x")])
        result = check_u_repair(original, candidate, [FD("R", ["A"], ["B"])])
        assert not result.consistent
        assert result.cost == float("inf")

    def test_local_minimality_detects_gratuitous_change(self):
        original = _db([("a", "x"), ("c", "z")])
        # consistent already; changing (c, z) to (c, w) is gratuitous
        candidate = _db([("a", "x"), ("c", "w")])
        result = check_u_repair(original, candidate, [FD("R", ["A"], ["B"])])
        assert result.consistent
        assert not result.locally_minimal
        assert not result.acceptable
