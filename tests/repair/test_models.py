"""Cost model: w(t,A)·dis(v,v′)."""

import pytest

from repro.repair.models import CostModel, default_distance
from repro.relational.domains import INT, STRING
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple


@pytest.fixture
def t():
    schema = RelationSchema("R", [("a", STRING), ("n", INT)])
    return Tuple(schema, ("hello", 10))


class TestDefaultDistance:
    def test_equal_is_zero(self):
        assert default_distance("x", "x") == 0.0
        assert default_distance(5, 5) == 0.0

    def test_string_normalized(self):
        assert default_distance("abc", "abd") == pytest.approx(1 / 3)
        assert default_distance("abc", "xyz") == 1.0

    def test_numeric_relative(self):
        assert default_distance(10, 11) == pytest.approx(0.1, abs=0.01)
        assert default_distance(0, 1000) == 1.0

    def test_cross_type_is_one(self):
        assert default_distance("x", 5) == 1.0

    def test_bounded(self):
        assert 0.0 <= default_distance("a" * 50, "b") <= 1.0


class TestCostModel:
    def test_default_weight(self, t):
        model = CostModel()
        assert model.weight(t, "a") == 1.0

    def test_explicit_weight(self, t):
        model = CostModel(weights={(t, "a"): 3.0})
        assert model.weight(t, "a") == 3.0
        assert model.weight(t, "n") == 1.0

    def test_change_cost_scales_with_weight(self, t):
        cheap = CostModel()
        expensive = CostModel(weights={(t, "a"): 10.0})
        assert expensive.change_cost(t, "a", "hellp") == pytest.approx(
            10 * cheap.change_cost(t, "a", "hellp")
        )

    def test_tuple_cost_sums_changed_cells(self, t):
        model = CostModel()
        repaired = t.replace(a="hellp", n=11)
        cost = model.tuple_cost(t, repaired)
        expected = model.change_cost(t, "a", "hellp") + model.change_cost(t, "n", 11)
        assert cost == pytest.approx(expected)

    def test_identical_tuples_cost_zero(self, t):
        assert CostModel().tuple_cost(t, t) == 0.0

    def test_set_weight(self, t):
        model = CostModel()
        model.set_weight(t, "a", 5.0)
        assert model.weight(t, "a") == 5.0
