"""Conflict components and repair counting (Example 5.1)."""

import pytest

from repro.deps.fd import FD
from repro.paper import example51_instance, example51_key
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.enumerate import (
    conflict_components,
    count_repairs_by_components,
    repair_space,
)


class TestConflictComponents:
    def test_example51_has_n_components(self):
        db = example51_instance(4)
        components = conflict_components(db, [example51_key()])
        assert len(components) == 4
        assert all(len(c) == 2 for c in components)

    def test_clean_instance_no_components(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(DatabaseSchema([schema]), {"R": [("a", "x")]})
        assert conflict_components(db, [FD("R", ["A"], ["B"])]) == []

    def test_triangle_single_component(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(
            DatabaseSchema([schema]),
            {"R": [("a", "x"), ("a", "y"), ("a", "z")]},
        )
        components = conflict_components(db, [FD("R", ["A"], ["B"])])
        assert len(components) == 1
        assert len(components[0]) == 3


class TestCounting:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_component_product_matches_exponential(self, n):
        db = example51_instance(n)
        assert count_repairs_by_components(db, [example51_key()]) == 2 ** n

    def test_counting_scales_beyond_enumeration(self):
        """Component-wise counting handles n where full enumeration (2^n
        instances) would be painful."""
        db = example51_instance(16)
        assert count_repairs_by_components(db, [example51_key()]) == 65536

    def test_clean_instance_one_repair(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(DatabaseSchema([schema]), {"R": [("a", "x")]})
        assert count_repairs_by_components(db, [FD("R", ["A"], ["B"])]) == 1

    def test_mixed_group_sizes(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(
            DatabaseSchema([schema]),
            {
                "R": [
                    ("a", "x"), ("a", "y"), ("a", "z"),  # 3 repairs
                    ("b", "p"), ("b", "q"),              # 2 repairs
                    ("c", "solo"),                        # conflict-free
                ]
            },
        )
        fd = FD("R", ["A"], ["B"])
        assert count_repairs_by_components(db, [fd]) == 6
        assert len(repair_space(db, [fd])) == 6
