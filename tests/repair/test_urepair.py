"""U-repair heuristics: Figure 1 repair, cost accounting, weights."""

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.deps.fd import FD
from repro.paper import fig1_instance, fig2_cfds
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.models import CostModel
from repro.repair.urepair import repair_cfds, repair_fds


class TestFigure1Repair:
    def test_repairs_to_consistency(self):
        cfds = list(fig2_cfds().values())
        result = repair_cfds(fig1_instance(), cfds)
        assert result.resolved
        assert all(cfd.holds_on(result.repaired) for cfd in cfds)

    def test_city_constants_written(self):
        cfds = list(fig2_cfds().values())
        result = repair_cfds(fig1_instance(), cfds)
        cities = {t["city"] for t in result.repaired.relation("customer")}
        assert cities == {"EDI", "MH"}

    def test_changes_logged_with_cost(self):
        cfds = list(fig2_cfds().values())
        result = repair_cfds(fig1_instance(), cfds)
        assert result.changed_cells() >= 4  # 3 cities + 1 street
        assert result.cost > 0
        assert all(change.cost >= 0 for change in result.changes)

    def test_tuple_count_preserved(self):
        cfds = list(fig2_cfds().values())
        result = repair_cfds(fig1_instance(), cfds)
        assert len(result.repaired.relation("customer")) == 3


class TestWeights:
    def _db(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        return DatabaseInstance(
            DatabaseSchema([schema]), {"R": [("k", "cheap"), ("k", "pricey")]}
        )

    def test_plurality_respects_weights(self):
        db = self._db()
        fd = FD("R", ["A"], ["B"])
        trusted = db.relation("R").tuples()[1]  # the "pricey" tuple
        model = CostModel()
        model.set_weight(trusted, "B", 100.0)
        result = repair_fds(db, [fd], model)
        assert result.resolved
        values = {t["B"] for t in result.repaired.relation("R")}
        # changing the trusted cell would cost 100×; the cheap one moves
        assert values == {"pricey"}

    def test_unweighted_deterministic(self):
        db = self._db()
        fd = FD("R", ["A"], ["B"])
        first = repair_fds(db, [fd])
        second = repair_fds(self._db(), [fd])
        assert {t.values() for t in first.repaired.relation("R")} == {
            t.values() for t in second.repaired.relation("R")
        }


class TestConstantPhase:
    def test_rhs_constant_written(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(DatabaseSchema([schema]), {"R": [("uk", "wrong")]})
        cfd = CFD("R", ["A"], ["B"], [{"A": "uk", "B": "right"}])
        result = repair_cfds(db, [cfd])
        assert result.resolved
        assert result.repaired.relation("R").tuples()[0]["B"] == "right"
        assert len(result.changes) == 1

    def test_cascading_rules(self):
        """Writing one constant triggers another rule's LHS."""
        schema = RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])
        db = DatabaseInstance(
            DatabaseSchema([schema]), {"R": [("uk", "wrong", "wrong2")]}
        )
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": "uk", "B": "mid"}]),
            CFD("R", ["B"], ["C"], [{"B": "mid", "C": "final"}]),
        ]
        result = repair_cfds(db, cfds)
        assert result.resolved
        t = result.repaired.relation("R").tuples()[0]
        assert (t["B"], t["C"]) == ("mid", "final")

    def test_clean_input_zero_changes(self):
        cfds = list(fig2_cfds().values())
        repaired_once = repair_cfds(fig1_instance(), cfds).repaired
        second = repair_cfds(repaired_once, cfds)
        assert second.resolved
        assert second.changed_cells() == 0

    def test_unresolvable_flagged(self):
        """Two contradictory constants on the same selected tuples cannot be
        fixed by value modification of B alone; the heuristic must not
        claim success."""
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(DatabaseSchema([schema]), {"R": [("uk", "v")]})
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": "uk", "B": "x"}]),
            CFD("R", ["A"], ["B"], [{"A": "uk", "B": "y"}]),
        ]
        result = repair_cfds(db, cfds, max_passes=5)
        assert not result.resolved
