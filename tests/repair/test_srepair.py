"""S-repairs: denial-class coincidence with X, insertion handling for INDs."""

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.deps.base import holds
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.paper import example51_instance, example51_key
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.checking import is_s_repair
from repro.repair.srepair import all_s_repairs, is_denial_class, symmetric_difference
from repro.repair.xrepair import all_x_repairs


def _two_relations():
    return DatabaseSchema(
        [
            RelationSchema("R", [("a", STRING), ("b", STRING)]),
            RelationSchema("S", [("c", STRING), ("d", STRING)]),
        ]
    )


class TestDenialClass:
    def test_classification(self):
        assert is_denial_class([example51_key()])
        assert is_denial_class([CFD("R", ["a"], ["b"], [{"a": UNNAMED, "b": "x"}])])
        assert not is_denial_class([IND("R", ["a"], "S", ["c"])])
        assert not is_denial_class([CIND("R", ["a"], "S", ["c"])])

    def test_s_equals_x_for_keys(self):
        """§5.1: for denial constraints X- and S-repairs coincide."""
        db = example51_instance(3)
        x = all_x_repairs(db, [example51_key()])
        s = all_s_repairs(db, [example51_key()])
        x_sigs = {frozenset(t.values() for t in r.relation("R")) for r in x}
        s_sigs = {frozenset(t.values() for t in r.relation("R")) for r in s}
        assert x_sigs == s_sigs


class TestWithInclusionDependencies:
    def test_insertion_can_beat_deletion(self):
        """With R[a] ⊆ S[c], inserting the missing S tuple is a repair with
        symmetric difference {insert}, incomparable to deleting R's tuple."""
        schema = _two_relations()
        db = DatabaseInstance(schema, {"R": [("v", "w")], "S": []})
        ind = IND("R", ["a"], "S", ["c"])
        repairs = all_s_repairs(db, [ind], max_insertions=2)
        assert repairs
        kinds = set()
        for repair in repairs:
            assert holds(repair, [ind])
            delta = symmetric_difference(db, repair)
            assert delta  # the original is inconsistent, something changed
            if any(rel == "S" for rel, _ in delta):
                kinds.add("insertion")
            if any(rel == "R" for rel, _ in delta):
                kinds.add("deletion")
        assert "insertion" in kinds and "deletion" in kinds

    def test_minimality_of_differences(self):
        schema = _two_relations()
        db = DatabaseInstance(schema, {"R": [("v", "w")], "S": []})
        ind = IND("R", ["a"], "S", ["c"])
        repairs = all_s_repairs(db, [ind], max_insertions=2)
        deltas = [frozenset(symmetric_difference(db, r)) for r in repairs]
        for d1 in deltas:
            assert not any(d2 < d1 for d2 in deltas)

    def test_cind_repair_with_pattern(self):
        schema = _two_relations()
        db = DatabaseInstance(schema, {"R": [("v", "book")], "S": []})
        cind = CIND(
            "R", ["a"], "S", ["c"],
            lhs_pattern_attrs=["b"],
            rhs_pattern_attrs=["d"],
            tableau=[{"b": "book", "d": "audio"}],
        )
        repairs = all_s_repairs(db, [cind], max_insertions=2)
        inserted = [
            r for r in repairs if len(r.relation("S")) == 1
        ]
        assert inserted
        witness = inserted[0].relation("S").tuples()[0]
        assert witness["c"] == "v" and witness["d"] == "audio"


class TestSymmetricDifference:
    def test_empty_for_identical(self):
        db = example51_instance(2)
        assert symmetric_difference(db, db.copy()) == set()

    def test_counts_both_directions(self):
        db = example51_instance(1)
        other = db.copy()
        removed = other.relation("R").tuples()[0]
        other.relation("R").discard(removed)
        other.relation("R").add(("a99", "b"))
        delta = symmetric_difference(db, other)
        assert len(delta) == 2
