"""Master-data repair (§5.1 Remark): identify against reference data,
copy trusted values."""

import pytest

from repro.md.model import MD, RelativeKey
from repro.md.similarity import EQ, EditDistanceSimilarity
from repro.relational.domains import STRING
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.repair.master import repair_with_master_data


@pytest.fixture
def dirty_schema():
    return RelationSchema(
        "cust", [("ssn", STRING), ("name", STRING), ("city", STRING)]
    )


@pytest.fixture
def master_schema():
    return RelationSchema(
        "master", [("id", STRING), ("full_name", STRING), ("home_city", STRING)]
    )


@pytest.fixture
def dirty(dirty_schema):
    return RelationInstance(
        dirty_schema,
        [
            ("s1", "John Smith", "Edinburg"),   # typo in city
            ("s2", "Mary Chen", "London"),      # already clean
            ("s3", "Unknown Person", "Nowhere"),  # no master record
        ],
    )


@pytest.fixture
def master(master_schema):
    return RelationInstance(
        master_schema,
        [
            ("s1", "John Smith", "Edinburgh"),
            ("s2", "Mary Chen", "London"),
        ],
    )


def _rule():
    return RelativeKey(
        "cust", "master",
        [("ssn", "id")], [EQ],
        ["name", "city"], ["full_name", "home_city"],
        name="ssn-key",
    )


class TestMasterRepair:
    def test_copies_trusted_values(self, dirty, master):
        result = repair_with_master_data(
            dirty, master, [_rule()], {"city": "home_city"}
        )
        by_ssn = {t["ssn"]: t for t in result.repaired}
        assert by_ssn["s1"]["city"] == "Edinburgh"
        assert by_ssn["s2"]["city"] == "London"

    def test_change_log_and_cost(self, dirty, master):
        result = repair_with_master_data(
            dirty, master, [_rule()], {"city": "home_city"}
        )
        assert len(result.changes) == 1  # only s1's city differed
        assert result.changes[0].old == "Edinburg"
        assert result.changes[0].new == "Edinburgh"
        assert 0 < result.cost < 1  # single-character edit, normalized

    def test_unmatched_untouched(self, dirty, master):
        result = repair_with_master_data(
            dirty, master, [_rule()], {"city": "home_city"}
        )
        assert len(result.unmatched) == 1
        assert result.unmatched[0]["ssn"] == "s3"
        by_ssn = {t["ssn"]: t for t in result.repaired}
        assert by_ssn["s3"]["city"] == "Nowhere"

    def test_matched_count(self, dirty, master):
        result = repair_with_master_data(
            dirty, master, [_rule()], {"city": "home_city"}
        )
        assert result.matched == 2

    def test_similarity_rule_matching(self, dirty_schema, master):
        """Match on approximately-equal names when SSNs are absent."""
        dirty = RelationInstance(
            dirty_schema, [("zz", "Jon Smith", "Glasgow")]
        )
        rule = MD(
            "cust", "master",
            [("name", "full_name", EditDistanceSimilarity(2))],
            ["city"], ["home_city"],
        )
        result = repair_with_master_data(
            dirty, master, [rule], {"city": "home_city"}
        )
        assert result.matched == 1
        assert result.repaired.tuples()[0]["city"] == "Edinburgh"

    def test_ambiguous_skipped_by_default(self, dirty_schema, master_schema):
        dirty = RelationInstance(dirty_schema, [("s1", "A", "X")])
        master = RelationInstance(
            master_schema,
            [("s1", "A", "CityOne"), ("s1", "A2", "CityTwo")],
        )
        result = repair_with_master_data(
            dirty, master, [_rule()], {"city": "home_city"}
        )
        assert len(result.ambiguous) == 1
        assert result.repaired.tuples()[0]["city"] == "X"  # untouched

    def test_ambiguous_first_policy(self, dirty_schema, master_schema):
        dirty = RelationInstance(dirty_schema, [("s1", "A", "X")])
        master = RelationInstance(
            master_schema,
            [("s1", "A", "CityOne"), ("s1", "A2", "CityTwo")],
        )
        result = repair_with_master_data(
            dirty, master, [_rule()], {"city": "home_city"}, on_ambiguous="first"
        )
        assert result.repaired.tuples()[0]["city"] == "CityOne"

    def test_agreeing_duplicates_not_ambiguous(self, dirty_schema, master_schema):
        dirty = RelationInstance(dirty_schema, [("s1", "A", "X")])
        master = RelationInstance(
            master_schema,
            [("s1", "A", "SameCity"), ("s1", "A2", "SameCity")],
        )
        result = repair_with_master_data(
            dirty, master, [_rule()], {"city": "home_city"}
        )
        assert result.ambiguous == []
        assert result.repaired.tuples()[0]["city"] == "SameCity"

    def test_bad_policy_rejected(self, dirty, master):
        with pytest.raises(ValueError):
            repair_with_master_data(
                dirty, master, [_rule()], {"city": "home_city"}, on_ambiguous="zzz"
            )

    def test_unknown_correspondence_attribute(self, dirty, master):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            repair_with_master_data(dirty, master, [_rule()], {"nope": "home_city"})
