"""Automatic view-CFD derivation ([37]): Example 4.2 regenerated."""

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.deps.fd import FD
from repro.paper import example42_sources
from repro.propagation.derive import candidate_view_cfds, derive_view_cfds, view_tags
from repro.propagation.views import tagged_union_view
from repro.relational.domains import INT, STRING
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


@pytest.fixture
def ex42():
    schema = example42_sources()
    view = tagged_union_view(
        [("R1", 44), ("R2", 1), ("R3", 31)], Attribute("CC", INT)
    )
    sigma = [
        FD("R1", ["zip"], ["street"]),
        FD("R1", ["AC"], ["city"]),
        FD("R2", ["AC"], ["city"]),
        FD("R3", ["AC"], ["city"]),
    ]
    return schema, view, sigma


class TestViewTags:
    def test_union_tags_collected(self, ex42):
        _, view, _ = ex42
        assert view_tags(view) == {"CC": {44, 1, 31}}

    def test_no_tags_on_plain_base(self):
        from repro.relational.query import Base

        assert view_tags(Base("R")) == {}


class TestCandidates:
    def test_candidates_include_conditional_variants(self, ex42):
        schema, view, sigma = ex42
        candidates = candidate_view_cfds(schema, sigma, view)
        shapes = {(c.lhs, c.rhs) for c in candidates}
        assert (("zip", "CC"), ("street",)) in shapes
        assert (("zip",), ("street",)) in shapes  # the unconditional one too


class TestDerivation:
    def test_example42_phi7_phi8_derived(self, ex42):
        """The headline: ϕ7 and ϕ8 fall out automatically from Σ0 and σ0."""
        schema, view, sigma = ex42
        derived = derive_view_cfds(schema, sigma, view)
        by_fd = {(c.lhs, c.rhs): c for c in derived}
        phi7 = by_fd.get((("zip", "CC"), ("street",)))
        assert phi7 is not None
        assert [tp["CC"] for tp in phi7.tableau] == [44]
        phi8 = by_fd.get((("AC", "CC"), ("city",)))
        assert phi8 is not None
        assert sorted(tp["CC"] for tp in phi8.tableau) == [1, 31, 44]

    def test_unconditional_fds_not_derived(self, ex42):
        schema, view, sigma = ex42
        derived = derive_view_cfds(schema, sigma, view, merge_tableaux=False)
        shapes = {(c.lhs, c.rhs) for c in derived}
        assert (("zip",), ("street",)) not in shapes
        assert (("AC",), ("city",)) not in shapes

    def test_all_derived_cfds_propagate(self, ex42):
        from repro.propagation.propagate import propagates

        schema, view, sigma = ex42
        for cfd in derive_view_cfds(schema, sigma, view, merge_tableaux=False):
            assert propagates(schema, sigma, view, cfd)

    def test_single_source_everything_survives(self):
        schema = DatabaseSchema(
            [RelationSchema("S", [("a", STRING), ("b", STRING)])]
        )
        from repro.relational.query import Base

        sigma = [FD("S", ["a"], ["b"])]
        derived = derive_view_cfds(schema, sigma, Base("S"))
        assert len(derived) == 1
        assert derived[0].lhs == ("a",)
