"""CFD propagation through SPCU views (Theorem 4.7, Example 4.2)."""

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.deps.fd import FD
from repro.errors import QueryError
from repro.paper import example42_sources
from repro.propagation.propagate import propagated_cfds, propagates
from repro.propagation.views import select_project_view, tagged_union_view
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import Comparison, eq
from repro.relational.query import Base, Project, Select, Union
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


def _cfd(rel, lhs, rhs, row):
    return CFD(rel, lhs, rhs, [row])


@pytest.fixture
def ex42():
    schema = example42_sources()
    view = tagged_union_view(
        [("R1", 44), ("R2", 1), ("R3", 31)], Attribute("CC", INT)
    )
    sigma = [
        FD("R1", ["zip"], ["street"]),
        FD("R1", ["AC"], ["city"]),
        FD("R2", ["AC"], ["city"]),
        FD("R3", ["AC"], ["city"]),
    ]
    view_name = view.output_schema(schema).name
    return schema, view, sigma, view_name


class TestExample42:
    def test_f3_not_propagated(self, ex42):
        schema, view, sigma, name = ex42
        f3 = _cfd(name, ["zip"], ["street"], {"zip": UNNAMED, "street": UNNAMED})
        assert not propagates(schema, sigma, view, f3)

    def test_ac_city_not_propagated(self, ex42):
        """Area code 20 is London *and* Amsterdam: AC → city fails."""
        schema, view, sigma, name = ex42
        f = _cfd(name, ["AC"], ["city"], {"AC": UNNAMED, "city": UNNAMED})
        assert not propagates(schema, sigma, view, f)

    def test_phi7_propagated(self, ex42):
        schema, view, sigma, name = ex42
        phi7 = _cfd(
            name, ["CC", "zip"], ["street"],
            {"CC": 44, "zip": UNNAMED, "street": UNNAMED},
        )
        assert propagates(schema, sigma, view, phi7)

    def test_phi8_propagated(self, ex42):
        schema, view, sigma, name = ex42
        phi8 = CFD(
            name, ["CC", "AC"], ["city"],
            [
                {"CC": c, "AC": UNNAMED, "city": UNNAMED}
                for c in (44, 1, 31)
            ],
        )
        assert propagates(schema, sigma, view, phi8)

    def test_us_zip_rule_not_propagated(self, ex42):
        """No source FD about zip in the US ⟹ (CC=1, zip → street) fails."""
        schema, view, sigma, name = ex42
        us = _cfd(
            name, ["CC", "zip"], ["street"],
            {"CC": 1, "zip": UNNAMED, "street": UNNAMED},
        )
        assert not propagates(schema, sigma, view, us)

    def test_filtering_candidates(self, ex42):
        schema, view, sigma, name = ex42
        good = _cfd(
            name, ["CC", "zip"], ["street"],
            {"CC": 44, "zip": UNNAMED, "street": UNNAMED},
        )
        bad = _cfd(name, ["zip"], ["street"], {"zip": UNNAMED, "street": UNNAMED})
        assert propagated_cfds(schema, sigma, view, [good, bad]) == [good]


class TestSelectionViews:
    def _schema(self):
        return DatabaseSchema(
            [RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])]
        )

    def test_fd_survives_selection(self):
        schema = self._schema()
        view = select_project_view("R", condition=eq("@C", "keep"))
        fd = _cfd("R", ["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})
        assert propagates(schema, [FD("R", ["A"], ["B"])], view, fd)

    def test_selection_constant_becomes_cfd(self):
        """σ_{C='keep'} makes (∅ → C='keep') hold on the view."""
        schema = self._schema()
        view = select_project_view("R", condition=eq("@C", "keep"))
        forced = CFD("R", ["A"], ["C"], [{"A": UNNAMED, "C": "keep"}])
        assert propagates(schema, [], view, forced)

    def test_selection_equality_between_attrs(self):
        schema = self._schema()
        view = Select(Base("R"), eq("@A", "@B"))
        # on the view, A determines B outright (they are equal)
        fd = _cfd("R", ["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})
        assert propagates(schema, [], view, fd)

    def test_unsupported_condition_raises(self):
        schema = self._schema()
        view = Select(Base("R"), Comparison("@A", "<", "@B"))
        fd = _cfd("R", ["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})
        with pytest.raises(QueryError):
            propagates(schema, [], view, fd)


class TestProjectionViews:
    def test_fd_on_kept_attributes_survives(self):
        schema = DatabaseSchema(
            [RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])]
        )
        view = Project(Base("R"), ["A", "B"])
        target = CFD("R_proj", ["A"], ["B"], [{"A": UNNAMED, "B": UNNAMED}])
        assert propagates(schema, [FD("R", ["A"], ["B"])], view, target)

    def test_transitive_fd_through_projection(self):
        """A → B → C with B projected out still gives A → C on the view."""
        schema = DatabaseSchema(
            [RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])]
        )
        view = Project(Base("R"), ["A", "C"])
        sigma = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        target = CFD("R_proj", ["A"], ["C"], [{"A": UNNAMED, "C": UNNAMED}])
        assert propagates(schema, sigma, view, target)

    def test_lost_dependency_not_propagated(self):
        schema = DatabaseSchema(
            [RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])]
        )
        view = Project(Base("R"), ["A", "C"])
        sigma = [FD("R", ["A"], ["B"])]
        target = CFD("R_proj", ["A"], ["C"], [{"A": UNNAMED, "C": UNNAMED}])
        assert not propagates(schema, sigma, view, target)


class TestSoundnessOnConcreteData:
    def test_propagated_cfd_holds_on_materialized_view(self, ex42):
        """End-to-end: build concrete sources satisfying Σ, materialize the
        view, check the propagated CFDs actually hold."""
        schema, view, sigma, name = ex42
        db = DatabaseInstance(schema)
        db.relation("R1").add(("EH4", "Mayfield", 131, "EDI"))
        db.relation("R1").add(("EH4", "Mayfield", 20, "LDN"))
        db.relation("R2").add(("07974", "Mtn Ave", 908, "MH"))
        db.relation("R3").add(("1011", "Dam", 20, "AMS"))
        from repro.deps.base import holds

        assert holds(db, sigma)
        materialized = view.evaluate(db)
        phi7 = _cfd(
            name, ["CC", "zip"], ["street"],
            {"CC": 44, "zip": UNNAMED, "street": UNNAMED},
        )
        view_db_schema = DatabaseSchema([materialized.schema])
        view_db = DatabaseInstance(view_db_schema, {materialized.schema.name: materialized.tuples()})
        assert phi7.holds_on(view_db)
        # and the view genuinely violates AC → city (20 → LDN vs AMS)
        f = _cfd(name, ["AC"], ["city"], {"AC": UNNAMED, "city": UNNAMED})
        assert not f.holds_on(view_db)
