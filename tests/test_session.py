"""The Session facade: one API over detect / repair / discover / stream.

The acceptance bar for the facade is *exact* agreement with the free
functions it fronts: ``Session.detect()``, ``Session.apply()`` /
``Session.stream()`` and ``Session.repair()`` are pinned against
``detect_violations`` / ``DeltaEngine`` / ``repair_cfds`` over the same
220-seed corpus the engine differential harness uses.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cfd.detect import detect_violations
from repro.cfd.model import CFD
from repro.deps.fd import FD
from repro.engine.delta import Changeset, DeltaEngine, violation_multiset
from repro.errors import RepairError, SchemaError
from repro.paper import fig1_instance, fig2_cfds
from repro.repair.urepair import repair_cfds
from repro.session import RepairReport, Session, ViolationReport
from repro.workloads.stream import StreamConfig, run_stream

from tests.engine.test_differential import (
    N_CASES,
    _random_batch,
    _random_dependencies,
    _random_instance,
    _random_schema,
)


def _case(seed: int):
    rng = random.Random(10_000 + seed)
    schema = _random_schema(rng)
    db = _random_instance(schema, rng)
    deps = _random_dependencies(schema, rng)
    return rng, db, deps


class TestDetectDifferential:
    def test_detect_matches_free_function_on_corpus(self):
        """Session.detect == detect_violations over all 220 corpus seeds."""
        for seed in range(N_CASES):
            _, db, deps = _case(seed)
            session = Session.from_instance(db, deps)
            facade = session.detect()
            free = detect_violations(db, deps)
            assert violation_multiset(facade.violations) == violation_multiset(
                free.violations
            ), f"seed={seed}"
            assert isinstance(facade, ViolationReport)

    def test_apply_matches_delta_engine_on_corpus(self):
        """Session.apply == DeltaEngine.apply batch by batch (mirrored)."""
        for seed in range(0, N_CASES, 2):
            rng, db, deps = _case(seed)
            mirror = db.copy()
            session = Session.from_instance(db, deps)
            reference = DeltaEngine(mirror, deps)
            for batch_index in range(rng.randrange(1, 4)):
                batch = _random_batch(db, rng)
                facade_delta = session.apply(batch)
                reference_delta = reference.apply(batch)
                context = f"seed={seed} batch={batch_index}"
                assert facade_delta.remaining == reference_delta.remaining, context
                assert violation_multiset(
                    facade_delta.added
                ) == violation_multiset(reference_delta.added), context
                assert violation_multiset(
                    facade_delta.removed
                ) == violation_multiset(reference_delta.removed), context


class TestRepairDifferential:
    def test_u_repair_matches_free_function_on_corpus(self):
        """Session.repair('u') == repair_cfds on every corpus case that has
        at least one FD/CFD (the classes U-repair consumes)."""
        compared = 0
        for seed in range(N_CASES):
            _, db, deps = _case(seed)
            value_rules = [
                d for d in deps if isinstance(d, (FD, CFD))
            ]
            if not value_rules:
                continue
            session = Session.from_instance(db.copy(), deps)
            report = session.repair(strategy="u", max_passes=5)
            free = repair_cfds(
                db.copy(), session._value_rules(), max_passes=5
            )
            context = f"seed={seed}"
            assert report.repaired == free.repaired, context
            assert report.cost == pytest.approx(free.cost), context
            assert report.changed == free.changed_cells(), context
            assert report.passes == free.passes, context
            compared += 1
        assert compared >= 100  # the corpus is FD/CFD-heavy


class TestStreamDifferential:
    def test_stream_matches_run_stream_shim(self):
        for seed in (0, 7, 23):
            _, db, deps = _case(seed)
            config = StreamConfig(n_batches=4, batch_size=6, seed=seed + 1)
            session = Session.from_instance(db.copy(), deps)
            facade = session.stream(config, verify=True)
            free = run_stream(db.copy(), deps, config, verify=True)
            assert [
                (b.edits, b.added, b.removed, b.total) for b in facade.batches
            ] == [(b.edits, b.added, b.removed, b.total) for b in free.batches]

    def test_stream_accepts_explicit_batches(self):
        db = fig1_instance()
        rules = list(fig2_cfds().values())
        session = Session.from_instance(db, rules)
        t = db.relation("customer").tuples()[0]
        report = session.stream(
            batches=[Changeset().delete("customer", t)], verify=True
        )
        assert len(report.batches) == 1
        assert report.batches[0].edits == 1
        assert report.verified


class TestRepairStrategies:
    def test_u_repair_report_fields(self):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        report = session.repair(strategy="u")
        assert isinstance(report, RepairReport)
        assert report.resolved and report.residual.is_clean()
        assert report.passes >= 1
        assert report.cost > 0 and report.changed == len(report.changes)
        assert report.to_dict()["residual_violations"] == 0

    def test_x_repair_deletes_tuples(self):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        before = session.database.total_tuples()
        report = session.repair(strategy="x")
        assert report.resolved
        assert report.repaired.total_tuples() == before - report.changed
        # the session still owns the unrepaired instance
        assert session.database.total_tuples() == before

    def test_s_repair_minimal_on_small_case(self):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        report = session.repair(strategy="s", limit=50_000)
        assert report.resolved
        assert report.changed == report.cost

    def test_adopt_swaps_the_instance(self):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        assert not session.is_clean()
        report = session.repair(strategy="u", adopt=True)
        assert session.database is report.repaired
        assert session.is_clean()

    def test_unknown_strategy_rejected(self):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        with pytest.raises(RepairError):
            session.repair(strategy="z")

    def test_u_repair_needs_value_rules(self):
        session = Session.from_instance(fig1_instance(), [])
        with pytest.raises(RepairError):
            session.repair(strategy="u")


class TestLifecycle:
    def test_detect_report_to_dict(self):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        document = session.detect().to_dict()
        assert document["total"] == 4
        assert set(document) >= {"per_dependency", "violations", "single_tuple"}
        assert all("reason" in v and "tuples" in v for v in document["violations"])
        json.dumps(document, default=str)  # JSON-ready

    def test_engine_is_lazy_and_cached(self):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        assert session._engine is None
        engine = session.engine
        assert session.engine is engine
        session.add_rules(FD("customer", ["zip"], ["street"]))
        assert session._engine is None  # rebuilt on next use
        assert len(session.engine.dependencies) == 4

    def test_apply_undo_round_trip(self):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        before = session.engine.total_violations()
        t = session.database.relation("customer").tuples()[0]
        delta = session.apply(Changeset().delete("customer", t))
        session.apply(delta.undo)
        assert session.engine.total_violations() == before

    def test_save_and_reload_round_trip(self, tmp_path):
        session = Session.from_instance(fig1_instance(), list(fig2_cfds().values()))
        schema_path = tmp_path / "schema.json"
        rules_path = tmp_path / "rules.json"
        data_path = tmp_path / "customer.csv"
        session.save_schema(schema_path)
        session.save_rules(rules_path)
        session.save_data(data_path)
        reloaded = Session.from_files(schema_path, rules_path, data_path)
        # rule objects are reparsed, so compare reasons, not identities
        assert sorted(v.reason for v in reloaded.detect().violations) == sorted(
            v.reason for v in session.detect().violations
        )
        assert reloaded.rules_documents() == session.rules_documents()

    def test_from_files_single_path_needs_single_relation(self, tmp_path):
        schema_path = tmp_path / "schema.json"
        schema_path.write_text(
            json.dumps(
                {
                    "relations": [
                        {"name": "a", "attributes": [{"name": "x"}]},
                        {"name": "b", "attributes": [{"name": "y"}]},
                    ]
                }
            )
        )
        data = tmp_path / "a.csv"
        data.write_text("x\n1\n")
        with pytest.raises(SchemaError):
            Session.from_files(schema_path, None, data)

    def test_discover_delegates(self):
        session = Session.from_instance(fig1_instance())
        found = session.discover(max_lhs=1, min_support=2)
        assert found and all(d.cfd.relation_name == "customer" for d in found)
