"""JSON schema/rules serialization round trips."""

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.deps.fd import FD
from repro.errors import DependencyError, SchemaError
from repro.paper import fig2_cfds
from repro.relational.domains import BOOL, EnumDomain, INT, STRING
from repro.relational.schema import RelationSchema
from repro.rules_json import (
    rules_from_list,
    rules_to_list,
    schema_from_dict,
    schema_to_dict,
)


class TestSchemaDocuments:
    def test_parse_basic(self):
        doc = {
            "name": "customer",
            "attributes": [
                {"name": "CC", "type": "int"},
                {"name": "city"},
                {"name": "flag", "type": "bool"},
            ],
        }
        schema = schema_from_dict(doc)
        assert schema.domain("CC") == INT
        assert schema.domain("city") == STRING
        assert schema.domain("flag") == BOOL

    def test_enum_type(self):
        doc = {
            "name": "R",
            "attributes": [{"name": "ct", "type": "enum", "values": ["a", "b"]}],
        }
        schema = schema_from_dict(doc)
        assert schema.domain("ct") == EnumDomain(["a", "b"])

    def test_unknown_type_rejected(self):
        doc = {"name": "R", "attributes": [{"name": "x", "type": "blob"}]}
        with pytest.raises(SchemaError):
            schema_from_dict(doc)

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"attributes": []})

    def test_round_trip(self):
        schema = RelationSchema(
            "R", [("a", INT), ("b", STRING), ("c", EnumDomain([1, 2]))]
        )
        assert schema_from_dict(schema_to_dict(schema)) == schema


class TestRuleDocuments:
    def test_fd_round_trip(self):
        fd = FD("R", ["A", "B"], ["C"])
        docs = rules_to_list([fd])
        assert rules_from_list(docs) == [fd]

    def test_cfd_round_trip(self):
        for cfd in fig2_cfds().values():
            docs = rules_to_list([cfd])
            (parsed,) = rules_from_list(docs)
            assert parsed == cfd

    def test_wildcard_spelling(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "x", "B": UNNAMED}])
        doc = rules_to_list([cfd])[0]
        assert doc["tableau"][0]["B"] == "_"

    def test_unknown_type_rejected(self):
        with pytest.raises(DependencyError):
            rules_from_list([{"type": "mystery"}])

    def test_schema_validation(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        docs = [{"type": "fd", "relation": "R", "lhs": ["A"], "rhs": ["ZZ"]}]
        with pytest.raises(SchemaError):
            rules_from_list(docs, schema)
