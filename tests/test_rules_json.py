"""JSON schema/rules serialization round trips."""

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.deps.fd import FD
from repro.errors import DependencyError, DomainError, SchemaError
from repro.paper import fig2_cfds
from repro.relational.domains import BOOL, EnumDomain, INT, STRING
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.rules_json import (
    database_schema_from_dict,
    database_schema_to_dict,
    rules_from_list,
    rules_to_list,
    schema_from_dict,
    schema_to_dict,
)


class TestSchemaDocuments:
    def test_parse_basic(self):
        doc = {
            "name": "customer",
            "attributes": [
                {"name": "CC", "type": "int"},
                {"name": "city"},
                {"name": "flag", "type": "bool"},
            ],
        }
        schema = schema_from_dict(doc)
        assert schema.domain("CC") == INT
        assert schema.domain("city") == STRING
        assert schema.domain("flag") == BOOL

    def test_enum_type(self):
        doc = {
            "name": "R",
            "attributes": [{"name": "ct", "type": "enum", "values": ["a", "b"]}],
        }
        schema = schema_from_dict(doc)
        assert schema.domain("ct") == EnumDomain(["a", "b"])

    def test_unknown_type_rejected(self):
        doc = {"name": "R", "attributes": [{"name": "x", "type": "blob"}]}
        with pytest.raises(SchemaError):
            schema_from_dict(doc)

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"attributes": []})

    def test_round_trip(self):
        schema = RelationSchema(
            "R", [("a", INT), ("b", STRING), ("c", EnumDomain([1, 2]))]
        )
        assert schema_from_dict(schema_to_dict(schema)) == schema


class TestRuleDocuments:
    def test_fd_round_trip(self):
        fd = FD("R", ["A", "B"], ["C"])
        docs = rules_to_list([fd])
        assert rules_from_list(docs) == [fd]

    def test_cfd_round_trip(self):
        for cfd in fig2_cfds().values():
            docs = rules_to_list([cfd])
            (parsed,) = rules_from_list(docs)
            assert parsed == cfd

    def test_wildcard_spelling(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "x", "B": UNNAMED}])
        doc = rules_to_list([cfd])[0]
        assert doc["tableau"][0]["B"] == "_"

    def test_unknown_type_rejected(self):
        with pytest.raises(DependencyError):
            rules_from_list([{"type": "mystery"}])

    def test_unknown_type_lists_registered_tags(self):
        with pytest.raises(DependencyError, match=r"rule #1.*'fd'.*'ind'"):
            rules_from_list(
                [{"type": "fd", "relation": "R", "lhs": ["A"], "rhs": ["B"]},
                 {"type": "mystery"}]
            )

    def test_schema_validation(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        docs = [{"type": "fd", "relation": "R", "lhs": ["A"], "rhs": ["ZZ"]}]
        with pytest.raises(SchemaError):
            rules_from_list(docs, schema)

    def test_schema_error_names_rule_index_and_relation(self):
        """Unknown attributes report the offending rule, not just the attr."""
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        docs = [
            {"type": "fd", "relation": "R", "lhs": ["A"], "rhs": ["B"]},
            {"type": "fd", "relation": "R", "lhs": ["A"], "rhs": ["ZZ"]},
        ]
        with pytest.raises(SchemaError, match=r"rule #1 \(fd on relation R\)"):
            rules_from_list(docs, schema)

    def test_domain_error_keeps_rule_context(self):
        schema = RelationSchema("R", [("A", INT), ("B", STRING)])
        docs = [
            {
                "type": "cfd", "relation": "R", "lhs": ["A"], "rhs": ["B"],
                "tableau": [{"A": "not-an-int", "B": "_"}],
            }
        ]
        with pytest.raises(DomainError, match=r"rule #0 \(cfd on relation R\)"):
            rules_from_list(docs, schema)

    def test_missing_relation_reported_with_rule_index(self):
        schema = RelationSchema("R", [("A", STRING)])
        docs = [{"type": "fd", "relation": "Zed", "lhs": ["A"], "rhs": ["A"]}]
        with pytest.raises(SchemaError, match=r"rule #0.*Zed"):
            rules_from_list(docs, schema)

    def test_validation_against_database_schema(self):
        db_schema = DatabaseSchema(
            [
                RelationSchema("R", [("A", STRING)]),
                RelationSchema("S", [("X", STRING)]),
            ]
        )
        docs = [
            {"type": "ind", "lhs_relation": "R", "lhs": ["A"],
             "rhs_relation": "S", "rhs": ["X"]},
        ]
        (ind,) = rules_from_list(docs, db_schema)
        assert ind.relations() == ("R", "S")
        bad = [
            {"type": "ind", "lhs_relation": "R", "lhs": ["A"],
             "rhs_relation": "S", "rhs": ["ZZ"]},
        ]
        with pytest.raises(SchemaError, match=r"rule #0 \(ind on relation R, S\)"):
            rules_from_list(bad, db_schema)


class TestDatabaseSchemaDocuments:
    def test_multi_relation_round_trip(self):
        db_schema = DatabaseSchema(
            [
                RelationSchema("R", [("A", INT), ("B", STRING)]),
                RelationSchema("S", [("X", STRING)]),
            ]
        )
        doc = database_schema_to_dict(db_schema)
        assert [r["name"] for r in doc["relations"]] == ["R", "S"]
        assert database_schema_from_dict(doc) == db_schema

    def test_single_relation_document_promotes(self):
        doc = {"name": "R", "attributes": [{"name": "A", "type": "int"}]}
        db_schema = database_schema_from_dict(doc)
        assert db_schema.relation_names == ("R",)
        assert db_schema.relation("R").domain("A") == INT
