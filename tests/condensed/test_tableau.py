"""Tableaux with variables: homomorphisms and subsumption."""

import pytest

from repro.condensed.tableau import (
    TVar,
    find_homomorphism,
    is_variable,
    subsumes,
    variables_of,
)
from repro.relational.domains import STRING
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple


def _schema():
    return RelationSchema("R", [("A", STRING), ("B", STRING)])


def _tableau(rows):
    schema = _schema()
    instance = RelationInstance(schema)
    for row in rows:
        instance.add(Tuple(schema, row, validate=False))
    return instance


class TestTVar:
    def test_identity_equality(self):
        x = TVar()
        assert x == x
        assert TVar() != TVar()

    def test_is_variable(self):
        assert is_variable(TVar())
        assert not is_variable("a")

    def test_labels_unique_by_default(self):
        assert TVar().label != TVar().label


class TestVariablesOf:
    def test_collects_distinct(self):
        x, y = TVar("x"), TVar("y")
        tableau = _tableau([("a", x), ("b", y), ("c", x)])
        assert variables_of(tableau) == [x, y]

    def test_ground_instance_has_none(self):
        assert variables_of(_tableau([("a", "b")])) == []


class TestHomomorphism:
    def test_variable_maps_to_constant(self):
        x = TVar()
        general = _tableau([("a", x)])
        specific = _tableau([("a", "b")])
        h = find_homomorphism(general, specific)
        assert h == {x: "b"}

    def test_consistent_binding_required(self):
        x = TVar()
        general = _tableau([("a", x), ("b", x)])
        specific = _tableau([("a", "p"), ("b", "q")])  # x would need p and q
        assert find_homomorphism(general, specific) is None

    def test_consistent_binding_found(self):
        x = TVar()
        general = _tableau([("a", x), ("b", x)])
        specific = _tableau([("a", "p"), ("b", "p")])
        assert find_homomorphism(general, specific) == {x: "p"}

    def test_constants_must_match(self):
        general = _tableau([("a", "b")])
        specific = _tableau([("a", "c")])
        assert find_homomorphism(general, specific) is None

    def test_ground_subset(self):
        general = _tableau([("a", "b")])
        specific = _tableau([("a", "b"), ("c", "d")])
        assert find_homomorphism(general, specific) == {}


class TestSubsumption:
    def test_general_subsumes_specific(self):
        x = TVar()
        assert subsumes(_tableau([("a", x)]), _tableau([("a", "b")]))

    def test_specific_does_not_subsume_general(self):
        x = TVar()
        general = _tableau([("a", x)])
        specific = _tableau([("a", "b")])
        # specific's constant row has no image row ("a", "b") in general?
        # actually ("a", x) can be the image only if b maps... constants
        # cannot map, so no homomorphism exists
        assert not subsumes(specific, general)

    def test_reflexive(self):
        t = _tableau([("a", TVar())])
        assert subsumes(t, t)
