"""World-set decompositions of repair spaces (§5.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.condensed.wsd import decompose_repairs
from repro.deps.fd import FD
from repro.paper import example51_instance, example51_key
from repro.relational import algebra
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.xrepair import all_x_repairs


def _db(rows):
    schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
    return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})


class TestDecomposition:
    def test_example51_structure(self):
        db = example51_instance(5)
        wsd = decompose_repairs(db, [example51_key()])
        assert len(wsd.blocks) == 5
        assert all(len(block) == 2 for block in wsd.blocks)
        assert wsd.world_count() == 32

    def test_succinctness(self):
        """O(n) cells represent 2^n worlds (the §5.3 motivation)."""
        db = example51_instance(16)
        wsd = decompose_repairs(db, [example51_key()])
        assert wsd.world_count() == 65536
        assert wsd.size() <= 2 * 16  # one cell per alternative

    def test_clean_instance_single_world(self):
        db = _db([("a", "x"), ("b", "y")])
        wsd = decompose_repairs(db, [FD("R", ["A"], ["B"])])
        assert wsd.world_count() == 1
        assert len(wsd.core) == 2
        assert wsd.blocks == []

    def test_worlds_equal_repair_space(self):
        db = _db([("a", "x"), ("a", "y"), ("b", "z")])
        fd = FD("R", ["A"], ["B"])
        wsd = decompose_repairs(db, [fd])
        worlds = {
            frozenset(t.values() for t in w.relation("R"))
            for w in wsd.worlds()
        }
        repairs = {
            frozenset(t.values() for t in r.relation("R"))
            for r in all_x_repairs(db, [fd])
        }
        assert worlds == repairs

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]), st.sampled_from(["x", "y"])
            ),
            min_size=1,
            max_size=7,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_worlds_equal_repairs_random(self, rows):
        db = _db(rows)
        fd = FD("R", ["A"], ["B"])
        wsd = decompose_repairs(db, [fd])
        worlds = {
            frozenset(t.values() for t in w.relation("R"))
            for w in wsd.worlds()
        }
        repairs = {
            frozenset(t.values() for t in r.relation("R"))
            for r in all_x_repairs(db, [fd])
        }
        assert worlds == repairs
        assert wsd.world_count() == len(repairs)


class TestCertainAnswers:
    def test_certain_cells(self):
        db = _db([("a", "x"), ("a", "y"), ("b", "z")])
        wsd = decompose_repairs(db, [FD("R", ["A"], ["B"])])
        certain_values = {t.values() for _, t in wsd.certain_cells()}
        assert certain_values == {("b", "z")}

    def test_certain_answers_match_enumeration(self):
        from repro.cqa.certain import certain_answers

        db = _db([("a", "x"), ("a", "y"), ("b", "z")])
        fd = FD("R", ["A"], ["B"])
        wsd = decompose_repairs(db, [fd])
        query = lambda inst: algebra.project(inst.relation("R"), ["B"])
        got = wsd.certain_answers(
            lambda d: algebra.project(d.relation("R"), ["B"])
        )
        reference = certain_answers(
            db, [fd], lambda d: algebra.project(d.relation("R"), ["B"])
        )
        assert got == reference == {("z",)}

    def test_shared_cell_across_alternatives_is_certain(self):
        # two alternatives in the same block can share a tuple; it is then
        # certain even though its block is conflicted
        db = _db([("a", "x"), ("a", "y"), ("a", "z")])
        wsd = decompose_repairs(db, [FD("R", ["A"], ["B"])])
        # no shared tuples here (each repair keeps exactly one of three)
        assert wsd.certain_cells() == set()
