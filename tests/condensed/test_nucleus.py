"""Nuclei: merge construction, CQ answers = consistent answers."""

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.condensed.nucleus import certain_answers_on_nucleus, nucleus
from repro.condensed.tableau import is_variable, variables_of
from repro.cqa.certain import certain_answers
from repro.deps.fd import FD
from repro.paper import example51_instance, example51_key
from repro.relational import algebra
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


def _db(rows):
    schema = RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])
    return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})


class TestConstruction:
    def test_example51_linear_size(self):
        """2^n repairs, but the nucleus has n tuples."""
        db = example51_instance(5)
        g = nucleus(db.relation("R"), [example51_key()])
        assert len(g) == 5
        assert len(variables_of(g)) == 5  # one variable per conflict

    def test_conflict_free_attributes_stay_constant(self):
        db = example51_instance(2)
        g = nucleus(db.relation("R"), [example51_key()])
        for t in g:
            assert not is_variable(t["A"])
            assert is_variable(t["B"])

    def test_clean_instance_unchanged(self):
        db = _db([("a", "x", "1"), ("b", "y", "2")])
        g = nucleus(db.relation("R"), [FD("R", ["A"], ["B"])])
        assert {t.values() for t in g} == {("a", "x", "1"), ("b", "y", "2")}

    def test_three_way_merge(self):
        db = _db([("a", "x", "1"), ("a", "y", "1"), ("a", "z", "1")])
        g = nucleus(db.relation("R"), [FD("R", ["A"], ["B"])])
        assert len(g) == 1
        merged = g.tuples()[0]
        assert merged["A"] == "a"
        assert is_variable(merged["B"])
        assert merged["C"] == "1"

    def test_cfd_pattern_scoped_merge(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "uk", "B": UNNAMED}])
        db = _db([("uk", "x", "1"), ("uk", "y", "1"), ("us", "p", "2"), ("us", "q", "2")])
        g = nucleus(db.relation("R"), [cfd])
        # only the uk pair merges; the us pair is outside the pattern
        assert len(g) == 3


class TestCertainAnswers:
    def test_variable_free_answers_are_consistent_answers(self):
        db = _db([("a", "x", "1"), ("a", "y", "1"), ("b", "z", "2")])
        fd = FD("R", ["A"], ["B"])
        g = nucleus(db.relation("R"), [fd])

        def q_project_b(instance):
            return algebra.project(instance, ["B"])

        nucleus_answers = certain_answers_on_nucleus(g, q_project_b)
        reference = certain_answers(
            db, [fd], lambda d: algebra.project(d.relation("R"), ["B"])
        )
        assert nucleus_answers == reference == {("z",)}

    def test_projection_on_stable_attributes(self):
        db = _db([("a", "x", "1"), ("a", "y", "1")])
        fd = FD("R", ["A"], ["B"])
        g = nucleus(db.relation("R"), [fd])
        answers = certain_answers_on_nucleus(
            g, lambda inst: algebra.project(inst, ["A", "C"])
        )
        assert answers == {("a", "1")}

    def test_selection_queries(self):
        db = _db([("a", "x", "1"), ("a", "y", "1"), ("b", "x", "2")])
        fd = FD("R", ["A"], ["B"])
        g = nucleus(db.relation("R"), [fd])
        from repro.relational.predicates import eq

        answers = certain_answers_on_nucleus(
            g,
            lambda inst: algebra.project(
                algebra.select(inst, eq("@B", "x")), ["A"]
            ),
        )
        reference = certain_answers(
            db,
            [fd],
            lambda d: algebra.project(
                algebra.select(d.relation("R"), eq("@B", "x")), ["A"]
            ),
        )
        assert answers == reference == {("b",)}
