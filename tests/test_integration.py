"""End-to-end pipelines across subsystems."""

import pytest

from repro.cfd import detect_violations
from repro.cqa.certain import certain_answers
from repro.cqa.rewriting import certain_sp
from repro.deps.base import holds
from repro.md import ObjectIdentifier, derive_rcks
from repro.paper import YB, YC, example31_mds
from repro.repair import greedy_x_repair, is_x_repair, repair_cfds
from repro.workloads import (
    CardBillingConfig,
    CustomerConfig,
    OrdersConfig,
    generate_card_billing,
    generate_customers,
    generate_orders,
)


class TestCleaningPipeline:
    """generate → detect → repair → re-detect → clean."""

    def test_detect_repair_redetect(self):
        workload = generate_customers(CustomerConfig(n_tuples=200, error_rate=0.05))
        cfds = workload.cfds()
        before = detect_violations(workload.db, cfds)
        assert not before.is_clean()
        result = repair_cfds(workload.db, cfds)
        assert result.resolved
        after = detect_violations(result.repaired, cfds)
        assert after.is_clean()

    def test_repair_recovers_injected_city_errors(self):
        """City errors have a unique consistent value (the CFD constant), so
        the repair must restore the clean value exactly."""
        workload = generate_customers(CustomerConfig(n_tuples=300, error_rate=0.04))
        result = repair_cfds(workload.db, workload.cfds())
        repaired = result.repaired.relation("customer").tuples()
        clean = workload.clean_db.relation("customer").tuples()
        city_errors = [e for e in workload.errors if e.attribute == "city"]
        assert city_errors
        # order is preserved by the repair (value modifications only)
        by_phone = {t["phn"]: t for t in repaired}
        for error in city_errors:
            clean_tuple = clean[error.row_index]
            assert by_phone[clean_tuple["phn"]]["city"] == error.clean

    def test_x_repair_pipeline_on_orders(self):
        workload = generate_orders(OrdersConfig(n_orders=150, error_rate=0.05))
        cinds = workload.cinds()
        assert not holds(workload.db, cinds)
        repaired = greedy_x_repair(workload.db, cinds)
        assert holds(repaired, cinds)
        assert is_x_repair(workload.db, repaired, cinds)


class TestMatchingPipeline:
    """generate → derive RCKs → identify → evaluate (§4.2's experiment)."""

    def test_full_pipeline(self):
        workload = generate_card_billing(
            CardBillingConfig(n_people=60, unrelated_billing=20)
        )
        base = list(example31_mds().values())
        rcks = derive_rcks(base, list(YC), list(YB), max_length=3)
        assert rcks
        base_report = ObjectIdentifier(base).identify(
            workload.card, workload.billing
        )
        full_report = ObjectIdentifier(base + rcks).identify(
            workload.card, workload.billing
        )
        base_q = base_report.quality(workload.truth)
        full_q = full_report.quality(workload.truth)
        assert full_q["recall"] >= base_q["recall"]
        assert full_q["f1"] >= base_q["f1"]


class TestDetectThenQuery:
    """Inconsistent data answered via CQA without repairing (§5.2)."""

    def test_cqa_on_dirty_customers(self):
        workload = generate_customers(CustomerConfig(n_tuples=60, error_rate=0.08))
        db = workload.db
        # primary key: phn is unique per tuple in the generator, so make
        # conflicts by grouping on (CC, AC): use city as the queried value
        answers = certain_sp(
            db, "customer", key=["CC", "AC"], projection=["city"]
        )
        # areas whose city column was corrupted somewhere are not certain
        corrupted_areas = set()
        tuples = db.relation("customer").tuples()
        for error in workload.errors:
            if error.attribute == "city":
                t = tuples[error.row_index]
                corrupted_areas.add((t["CC"], t["AC"]))
        clean_cities = {
            t["city"]
            for t in workload.clean_db.relation("customer")
            if (t["CC"], t["AC"]) not in corrupted_areas
        }
        assert {a[0] for a in answers} <= clean_cities
