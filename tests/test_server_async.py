"""The asyncio front end, the /v1 wire versioning and the snapshot reads.

Three acceptance bars from the async-service redesign:

* **wire versioning** — every endpoint mounts under ``/v1`` and carries
  ``"wire_version": 1`` as the first envelope key; unversioned paths
  answer 301 (with a ``Deprecation`` header) to the ``/v1`` mount;
  unknown version prefixes answer 404 with a supported-versions doc.
* **transport equivalence** — the async server and the legacy threaded
  server share one :class:`~repro.server.core.ServiceCore`, so the same
  request history must produce *byte-identical* response bodies on both,
  error documents and undo-token flows included.
* **snapshot reads** — on the async server a warm ``detect`` against an
  unchanged engine is served from the session snapshot without entering
  the gated verb path; any write invalidates the snapshot.
"""

from __future__ import annotations

import http.client
import json
import threading
from urllib.parse import urlsplit

import pytest

from repro.client import ServerClient, ServerError
from repro.server import make_async_server, make_server

SCHEMA_DOC = {
    "name": "emp",
    "attributes": [
        {"name": "dept", "type": "string"},
        {"name": "floor", "type": "int"},
    ],
}
RULES_DOC = [
    {"type": "fd", "relation": "emp", "lhs": ["dept"], "rhs": ["floor"]}
]
ROWS = [
    {"dept": "eng", "floor": 1},
    {"dept": "eng", "floor": 2},  # violates dept -> floor
    {"dept": "ops", "floor": 3},
]

EXTRA_RULE = {
    "type": "cfd",
    "relation": "emp",
    "name": "eng-first-floor",
    "lhs": ["dept"],
    "rhs": ["floor"],
    "tableau": [{"dept": "eng", "floor": 1}],
}


@pytest.fixture(scope="module")
def server():
    server = make_async_server(port=0)
    server.start_background()
    yield server
    server.shutdown()


@pytest.fixture(scope="module")
def client(server):
    client = ServerClient(base_url=server.base_url)
    client.wait_ready()
    return client


def _fresh(client: ServerClient, session_id: str, **kwargs):
    try:
        client.delete_session(session_id)
    except ServerError:
        pass
    return client.create_session(
        schema=SCHEMA_DOC,
        rules=RULES_DOC,
        data={"emp": list(ROWS)},
        session_id=session_id,
        **kwargs,
    )


def _raw(base_url, method, path, body=None):
    """One raw request (no redirect following); returns
    ``(status, headers, body_bytes)``."""
    parts = urlsplit(base_url)
    conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=30)
    try:
        headers = {}
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), raw
    finally:
        conn.close()


# --------------------------------------------------------------------------
# Wire versioning
# --------------------------------------------------------------------------


class TestWireVersioning:
    def test_envelope_carries_wire_version_first(self, server):
        status, _headers, raw = _raw(server.base_url, "GET", "/v1/healthz")
        assert status == 200
        document = json.loads(raw)
        assert document["wire_version"] == 1
        assert next(iter(document)) == "wire_version"

    def test_client_strips_the_envelope(self, client):
        doc = client.healthz()
        assert "wire_version" not in doc
        assert doc.wire_version == 1

    def test_unversioned_path_redirects_with_deprecation(self, server):
        status, headers, raw = _raw(server.base_url, "GET", "/healthz")
        assert status == 301
        assert headers["Location"] == "/v1/healthz"
        assert headers["Deprecation"] == "true"
        document = json.loads(raw)
        assert document["type"] == "MovedPermanently"
        assert document["location"] == "/v1/healthz"

    def test_redirect_preserves_the_query_string(self, server):
        status, headers, _raw_body = _raw(
            server.base_url, "GET", "/metrics?format=prometheus"
        )
        assert status == 301
        assert headers["Location"] == "/v1/metrics?format=prometheus"

    def test_unknown_version_is_404_with_supported_doc(self, server):
        status, _headers, raw = _raw(server.base_url, "GET", "/v999/healthz")
        assert status == 404
        document = json.loads(raw)
        assert document["supported_versions"] == [1]
        assert "999" in document["error"]

    def test_session_named_v1_stays_addressable(self, client, server):
        _fresh(client, "v1")
        status, _headers, raw = _raw(
            server.base_url, "GET", "/v1/sessions/v1"
        )
        assert status == 200
        assert json.loads(raw)["session"] == "v1"
        client.delete_session("v1")


# --------------------------------------------------------------------------
# The async transport end to end
# --------------------------------------------------------------------------


class TestAsyncVerbs:
    def test_full_verb_cycle(self, client):
        info = _fresh(client, "cycle")
        assert info["session"] == "cycle"
        report = client.detect("cycle")
        assert report["total"] == 1
        assert report.clean is False  # derived from "total": the detect
        # document carries counts, not a "clean" flag
        delta = client.apply(
            "cycle",
            {"ops": [{"op": "delete", "relation": "emp",
                      "row": {"dept": "eng", "floor": 2}}]},
        )
        assert delta.clean is True
        replay = client.undo("cycle", delta.undo_token)
        assert len(replay["added"]) == 1
        assert client.get_rules("cycle") == RULES_DOC
        client.add_rules("cycle", [EXTRA_RULE])
        assert len(client.get_rules("cycle")) == 2
        repair = client.repair("cycle", strategy="u")
        assert repair["strategy"] == "u"
        diag = client.diagnostics("cycle")
        assert diag["session"] == "cycle"
        assert "cycle" in {s["session"] for s in client.list_sessions()}
        assert client.delete_session("cycle") == {
            "session": "cycle",
            "closed": True,
        }
        with pytest.raises(ServerError) as err:
            client.detect("cycle")
        assert err.value.status == 404

    def test_malformed_json_body_is_400(self, server):
        parts = urlsplit(server.base_url)
        conn = http.client.HTTPConnection(
            parts.hostname, parts.port, timeout=30
        )
        try:
            conn.request(
                "POST",
                "/v1/sessions",
                body=b"{nope",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            raw = response.read()
            assert response.status == 400
            assert "not valid JSON" in json.loads(raw)["error"]
            # keep-alive survives the parse error
            conn.request("GET", "/v1/healthz")
            second = conn.getresponse()
            assert second.status == 200
            second.read()
        finally:
            conn.close()

    def test_legacy_executor_keys_rejected_with_schema_hint(
        self, client, server
    ):
        _fresh(client, "legacy")
        status, _headers, raw = _raw(
            server.base_url,
            "POST",
            "/v1/sessions/legacy/detect",
            body={"executor": "indexed"},
        )
        assert status == 400
        assert '{"engine":' in json.loads(raw)["error"]
        client.delete_session("legacy")

    def test_engine_error_text_matches_session_layer(self, client):
        from repro.errors import ReproError
        from repro.session import Session

        # the kwarg layer
        with pytest.raises(ReproError) as local:
            from repro.relational.instance import DatabaseInstance
            from repro.rules_json import database_schema_from_dict

            Session.from_instance(
                DatabaseInstance(database_schema_from_dict(SCHEMA_DOC)),
                [],
                executor="warp-drive",
            )
        # the wire layer
        _fresh(client, "errs")
        with pytest.raises(ServerError) as served:
            client.detect("errs", executor="warp-drive")
        assert str(local.value) in str(served.value)
        client.delete_session("errs")

    def test_positional_client_shim_warns(self, server):
        with pytest.warns(DeprecationWarning):
            shim = ServerClient(server.base_url)
        assert shim.base_url == server.base_url
        assert shim.healthz()["status"] == "ok"


# --------------------------------------------------------------------------
# Lock-free reads
# --------------------------------------------------------------------------


class TestLockFreeReads:
    def test_sessions_list_answers_while_a_session_is_wedged(
        self, client, server
    ):
        """GET /v1/sessions and GET /v1/sessions/{id} must not take
        session locks: a wedged (long-running or stuck) verb on one
        session cannot stall the listing."""
        _fresh(client, "wedged")
        _fresh(client, "bystander")
        hosted = server.manager.get("wedged")
        assert hosted.lock.acquire(timeout=5)
        try:
            done = threading.Event()
            result = {}

            def read():
                result["list"] = client.list_sessions()
                result["info"] = client.session_info("wedged")
                done.set()

            thread = threading.Thread(target=read, daemon=True)
            thread.start()
            assert done.wait(timeout=5), (
                "lock-free reads stalled behind a held session lock"
            )
            ids = {s["session"] for s in result["list"]}
            assert {"wedged", "bystander"} <= ids
            assert result["info"]["session"] == "wedged"
        finally:
            hosted.lock.release()
        client.delete_session("wedged")
        client.delete_session("bystander")


# --------------------------------------------------------------------------
# Snapshot reads
# --------------------------------------------------------------------------


class TestSnapshotReads:
    def test_warm_detect_skips_the_gated_verb_path(self, client, server):
        """Repeated detects on an unchanged engine are snapshot hits.

        Proof: sabotage the session's ``detect`` after the first call —
        a request that re-entered the verb path would blow up, a
        snapshot hit answers the cached bytes."""
        _fresh(client, "snap")
        first = client.detect("snap")
        hosted = server.manager.get("snap")
        real = hosted.session.detect

        def explode(**_kwargs):
            raise RuntimeError("detect re-ran on an unchanged engine")

        hosted.session.detect = explode
        try:
            for _ in range(3):
                assert client.detect("snap") == first
        finally:
            hosted.session.detect = real

    def test_writes_invalidate_the_snapshot(self, client, server):
        _fresh(client, "inval")
        before = client.detect("inval")
        assert client.detect("inval") == before  # snapshot hit
        delta = client.apply(
            "inval",
            {"ops": [{"op": "delete", "relation": "emp",
                      "row": {"dept": "eng", "floor": 2}}]},
        )
        after = client.detect("inval")  # must re-run: engine changed
        assert after["total"] == 0
        client.undo("inval", delta.undo_token)
        assert client.detect("inval") == before

    def test_summary_and_full_detect_cache_separately(self, client):
        _fresh(client, "keys")
        full = client.detect("keys")
        summary = client.detect("keys", include_violations=False)
        assert "violations" in full
        assert "violations" not in summary
        assert client.detect("keys") == full
        assert client.detect("keys", include_violations=False) == summary


# --------------------------------------------------------------------------
# Async vs threaded: byte-identical wire behavior
# --------------------------------------------------------------------------


def _history():
    """A scripted request history touching every verb, error paths and
    undo-token flows.  Tokens are deterministic (``undo-N``), so the raw
    response bytes must agree between transports."""
    ops = [{"op": "insert", "relation": "emp",
            "row": {"dept": "qa", "floor": 7}}]
    bad_ops = [{"op": "insert", "relation": "emp",
                "row": {"dept": "qa"}}]  # missing attribute -> 400
    return [
        ("POST", "/v1/sessions", {
            "schema": SCHEMA_DOC, "rules": RULES_DOC,
            "data": {"emp": ROWS}, "id": "t",
        }),
        ("POST", "/v1/sessions/t/detect", None),
        ("POST", "/v1/sessions/t/detect", {"include_violations": False}),
        ("POST", "/v1/sessions/t/detect",
         {"engine": {"executor": "naive"}}),
        ("POST", "/v1/sessions/t/apply", {"ops": ops}),
        ("POST", "/v1/sessions/t/detect", None),
        ("POST", "/v1/sessions/t/undo", {"token": "undo-1"}),
        ("POST", "/v1/sessions/t/undo", {"token": "undo-1"}),  # reused: 400
        ("POST", "/v1/sessions/t/apply", {"ops": bad_ops}),  # 400
        ("GET", "/v1/sessions/t/rules", None),
        ("PUT", "/v1/sessions/t/rules", {"rules": RULES_DOC + [EXTRA_RULE]}),
        ("POST", "/v1/sessions/t/rules", {"rules": [EXTRA_RULE]}),  # dup 400
        ("POST", "/v1/sessions/t/detect", None),
        ("POST", "/v1/sessions/t/repair", {"strategy": "u"}),
        ("POST", "/v1/sessions/t/detect",
         {"engine": {"executor": "warp-drive"}}),  # 400, canonical text
        ("POST", "/v1/sessions/t/detect", {"executor": "naive"}),  # legacy 400
        ("GET", "/v1/sessions/missing", None),  # 404
        ("POST", "/v1/sessions/missing/detect", None),  # 404
        ("GET", "/v1/teapot", None),  # 400
        ("GET", "/v999/healthz", None),  # 404 version doc
        ("GET", "/healthz", None),  # 301 + Deprecation
        ("DELETE", "/v1/sessions/t", None),
        ("DELETE", "/v1/sessions/t", None),  # already gone: 404
    ]


#: wall-clock fields — non-deterministic between any two server boots
#: (two runs of the *same* transport disagree on them too)
_CLOCK_KEYS = frozenset({"age_seconds", "idle_seconds", "uptime_seconds"})


def _mask_clocks(value):
    if isinstance(value, dict):
        return {
            key: 0.0 if key in _CLOCK_KEYS else _mask_clocks(entry)
            for key, entry in value.items()
        }
    if isinstance(value, list):
        return [_mask_clocks(entry) for entry in value]
    return value


def _assert_same_bytes(context, t_raw, a_raw):
    if t_raw == a_raw:
        return
    # only wall-clock fields may diverge — and only in value, never in
    # key order or structure: masking them must restore byte equality
    t_masked = json.dumps(_mask_clocks(json.loads(t_raw)), indent=2)
    a_masked = json.dumps(_mask_clocks(json.loads(a_raw)), indent=2)
    assert t_masked == a_masked, (
        f"{context}: bodies diverge beyond clock fields\n"
        f"threaded: {t_raw!r}\nasync:    {a_raw!r}"
    )


def test_async_and_threaded_servers_answer_byte_identically():
    threaded = make_server(port=0)
    threaded.start_background()
    asyncio_server = make_async_server(port=0)
    asyncio_server.start_background()
    try:
        for index, (method, path, body) in enumerate(_history()):
            t_status, t_headers, t_raw = _raw(
                threaded.base_url, method, path, body
            )
            a_status, a_headers, a_raw = _raw(
                asyncio_server.base_url, method, path, body
            )
            context = f"step {index}: {method} {path}"
            assert t_status == a_status, context
            _assert_same_bytes(context, t_raw, a_raw)
            assert t_headers.get("Content-Type") == a_headers.get(
                "Content-Type"
            ), context
            assert t_headers.get("Deprecation") == a_headers.get(
                "Deprecation"
            ), context
            assert t_headers.get("Location") == a_headers.get(
                "Location"
            ), context
    finally:
        threaded.shutdown()
        asyncio_server.shutdown()


# --------------------------------------------------------------------------
# Worker-pinned shards
# --------------------------------------------------------------------------


class TestPinnedWorkers:
    def test_pinned_pool_report_is_byte_identical(self):
        from repro.engine.parallel import ParallelExecutor
        from repro.relational.instance import DatabaseInstance
        from repro.rules_json import database_schema_from_dict, rules_from_list
        from repro.session import ViolationReport

        def canon(report):
            return json.dumps(ViolationReport(report.violations).to_dict())

        db = DatabaseInstance(database_schema_from_dict(SCHEMA_DOC))
        for i in range(200):
            db.relation("emp").add({"dept": f"d{i % 17}", "floor": i % 5})
        deps = rules_from_list(RULES_DOC, db.schema)

        plain = ParallelExecutor(
            shards=2, workers=2, use_pool=True, pin_workers=False
        )
        pinned = ParallelExecutor(
            shards=2, workers=2, use_pool=True, pin_workers=True
        )
        try:
            baseline = canon(plain.detect(db, deps))
            pinned.prewarm(db, deps)
            assert canon(pinned.detect(db, deps)) == baseline
            assert pinned.stats.pool_workers == 2
            # the pinned pool is warm: repeated detects reuse it
            assert canon(pinned.detect(db, deps)) == baseline
        finally:
            plain.close()
            pinned.close()

    def test_pin_workers_env_default(self, monkeypatch):
        from repro.engine import parallel

        monkeypatch.setenv(parallel.PIN_ENV, "1")
        assert parallel.default_pin_workers() is True
        monkeypatch.setenv(parallel.PIN_ENV, "0")
        assert parallel.default_pin_workers() is False
        monkeypatch.delenv(parallel.PIN_ENV)
        assert parallel.default_pin_workers() is False
