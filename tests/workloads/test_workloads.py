"""Workload generators: determinism, clean-data invariants, injection
ground truth."""

import pytest

from repro.deps.base import holds
from repro.workloads.card_billing import CardBillingConfig, generate_card_billing
from repro.workloads.customer import CustomerConfig, generate_customers
from repro.workloads.noise import abbreviate_name, address_variant, pick_other, truncate, typo
from repro.workloads.orders import OrdersConfig, generate_orders

import random


class TestNoise:
    def test_typo_changes_string(self):
        rng = random.Random(1)
        changed = sum(1 for _ in range(50) if typo("hello", rng) != "hello")
        assert changed >= 45  # transpose of equal chars can be a no-op

    def test_typo_on_empty(self):
        assert typo("", random.Random(1))

    def test_truncate_keeps_prefix(self):
        rng = random.Random(2)
        out = truncate("abcdefgh", rng)
        assert "abcdefgh".startswith(out)
        assert len(out) >= 3

    def test_abbreviate(self):
        assert abbreviate_name("John Smith") == "J. Smith"
        assert abbreviate_name("Cher") == "Cher"

    def test_address_variant_differs(self):
        rng = random.Random(3)
        assert address_variant("12 Mountain Avenue", rng) != "12 Mountain Avenue"

    def test_pick_other(self):
        rng = random.Random(4)
        assert pick_other("a", ["a", "b"], rng) == "b"
        with pytest.raises(ValueError):
            pick_other("a", ["a"], rng)


class TestCustomerWorkload:
    def test_deterministic_given_seed(self):
        w1 = generate_customers(CustomerConfig(n_tuples=50, seed=5))
        w2 = generate_customers(CustomerConfig(n_tuples=50, seed=5))
        assert w1.db == w2.db
        assert len(w1.errors) == len(w2.errors)

    def test_different_seeds_differ(self):
        w1 = generate_customers(CustomerConfig(n_tuples=50, seed=5))
        w2 = generate_customers(CustomerConfig(n_tuples=50, seed=6))
        assert w1.db != w2.db

    def test_clean_data_satisfies_all_rules(self):
        w = generate_customers(CustomerConfig(n_tuples=120, error_rate=0.1))
        assert holds(w.clean_db, w.cfds())
        assert holds(w.clean_db, w.fds())

    def test_zero_error_rate_clean(self):
        w = generate_customers(CustomerConfig(n_tuples=50, error_rate=0.0))
        assert w.errors == []
        assert w.db == w.clean_db

    def test_errors_recorded_accurately(self):
        w = generate_customers(CustomerConfig(n_tuples=200, error_rate=0.05))
        tuples = w.db.relation("customer").tuples()
        clean_tuples = w.clean_db.relation("customer").tuples()
        for error in w.errors:
            assert tuples[error.row_index][error.attribute] == error.dirty
            assert clean_tuples[error.row_index][error.attribute] == error.clean

    def test_error_rate_roughly_respected(self):
        w = generate_customers(CustomerConfig(n_tuples=1000, error_rate=0.05))
        assert 20 <= len(w.errors) <= 90


class TestOrdersWorkload:
    def test_clean_satisfies_cinds(self):
        w = generate_orders(OrdersConfig(n_orders=150))
        assert holds(w.clean_db, w.cinds())

    def test_dirty_violates_when_errors_injected(self):
        w = generate_orders(OrdersConfig(n_orders=300, error_rate=0.08))
        assert w.errors
        assert not holds(w.db, w.cinds())

    def test_deterministic(self):
        w1 = generate_orders(OrdersConfig(n_orders=80, seed=2))
        w2 = generate_orders(OrdersConfig(n_orders=80, seed=2))
        assert w1.db == w2.db


class TestCardBillingWorkload:
    def test_truth_pairs_cover_population(self):
        config = CardBillingConfig(n_people=30, billings_per_person=2)
        w = generate_card_billing(config)
        assert len(w.truth) == 60
        assert len(w.card) == 30
        assert len(w.billing) == 60 + config.unrelated_billing

    def test_deterministic(self):
        w1 = generate_card_billing(CardBillingConfig(n_people=20, seed=9))
        w2 = generate_card_billing(CardBillingConfig(n_people=20, seed=9))
        assert w1.db == w2.db

    def test_truth_pairs_share_cnum(self):
        w = generate_card_billing(CardBillingConfig(n_people=15))
        for card_t, billing_t in w.truth:
            assert card_t["cnum"] == billing_t["cnum"]

    def test_variation_actually_varies(self):
        w = generate_card_billing(
            CardBillingConfig(n_people=40, variation_rate=1.0)
        )
        varied = sum(
            1
            for card_t, billing_t in w.truth
            if card_t["FN"] != billing_t["FN"] or card_t["addr"] != billing_t["post"]
        )
        assert varied > len(w.truth) * 0.8
