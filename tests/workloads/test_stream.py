"""Streaming edit workload: generation, application, verification."""

import pytest

from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.delta import DeltaEngine
from repro.errors import ReproError
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads.customer import CustomerConfig, CustomerWorkload, generate_customers
from repro.workloads.stream import StreamConfig, run_stream, stream_edits


def _small_db():
    r = RelationSchema("R", [("A", STRING), ("B", STRING)])
    s = RelationSchema("S", [("X", STRING)])
    return DatabaseInstance(
        DatabaseSchema([r, s]),
        {"R": [("a", "x"), ("b", "y"), ("c", "z")], "S": [("a",), ("b",)]},
    )


class TestStreamEdits:
    def test_batches_have_requested_size(self):
        db = _small_db()
        config = StreamConfig(n_batches=4, batch_size=6, seed=3)
        batches = []
        for batch in stream_edits(db, config):
            batches.append(batch)
            batch.apply_to(db)  # generator reads the live instance
        assert len(batches) == 4
        assert all(len(b) == 6 for b in batches)

    def test_deterministic_given_seed(self):
        first = [repr(b) for b in _collect(seed=11)]
        second = [repr(b) for b in _collect(seed=11)]
        assert first == second

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(n_batches=0)


def _collect(seed):
    db = _small_db()
    out = []
    for batch in stream_edits(db, StreamConfig(n_batches=3, batch_size=5, seed=seed)):
        out.append(batch)
        batch.apply_to(db)
    return out


class TestRunStream:
    def _deps(self):
        return [FD("R", ["A"], ["B"]), IND("R", ["A"], "S", ["X"])]

    def test_verified_run_on_small_db(self):
        db = _small_db()
        report = run_stream(
            db,
            self._deps(),
            StreamConfig(n_batches=5, batch_size=4, seed=2),
            verify=True,
        )
        assert report.verified
        assert len(report.batches) == 5
        assert report.total_edits == 20

    def test_maintained_total_matches_engine(self):
        db = _small_db()
        deps = self._deps()
        engine = DeltaEngine(db, deps)
        report = run_stream(
            db, deps, StreamConfig(n_batches=3, batch_size=5, seed=9), engine=engine
        )
        assert report.final_violations == engine.total_violations()

    def test_customer_workload_stream_verifies(self):
        workload = generate_customers(CustomerConfig(n_tuples=300, seed=5))
        deps = CustomerWorkload.cfds()
        report = run_stream(
            workload.db,
            deps,
            StreamConfig(n_batches=3, batch_size=20, seed=4),
            verify=True,
        )
        assert report.verified
        assert report.total_seconds >= 0
