"""End-to-end: discover rules from clean data, then use them to police and
repair dirty data — the full profiling→detection→repair loop through the
file-based interfaces a downstream user would script."""

import json

import pytest

from repro.cli import main
from repro.relational.csvio import dump_csv, load_csv
from repro.rules_json import schema_to_dict
from repro.workloads.customer import CustomerConfig, generate_customers


@pytest.fixture
def workspace(tmp_path):
    workload = generate_customers(
        CustomerConfig(n_tuples=300, error_rate=0.04, seed=99)
    )
    schema = workload.db.relation("customer").schema
    clean_path = tmp_path / "clean.csv"
    dirty_path = tmp_path / "dirty.csv"
    dump_csv(workload.clean_db.relation("customer"), clean_path)
    dump_csv(workload.db.relation("customer"), dirty_path)
    schema_path = tmp_path / "schema.json"
    schema_path.write_text(json.dumps(schema_to_dict(schema)))
    return tmp_path, workload, schema, clean_path, dirty_path, schema_path


class TestDiscoverThenDetectThenRepair:
    def test_full_loop(self, workspace, capsys):
        tmp, workload, schema, clean_path, dirty_path, schema_path = workspace

        # 1. profile the clean sample
        code = main(
            [
                "discover",
                "--schema", str(schema_path),
                "--max-lhs", "2",
                "--min-support", "8",
                str(clean_path),
            ]
        )
        assert code == 0
        discovered = json.loads(capsys.readouterr().out)
        assert discovered
        rules_path = tmp / "rules.json"
        # keep the semantically grounded city rules (area code determines
        # city); discovery also reports spurious high-support associations
        # like street → city that a curator would reject
        kept = [
            {k: v for k, v in doc.items() if k not in ("support", "kind")}
            for doc in discovered
            if doc["rhs"] == ["city"] and set(doc["lhs"]) <= {"CC", "AC"}
        ]
        assert kept
        rules_path.write_text(json.dumps(kept))

        # 2. the clean file passes, the dirty file is flagged
        assert (
            main(
                ["detect", "--summary-only", "--schema", str(schema_path),
                 "--rules", str(rules_path), str(clean_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                ["detect", "--summary-only", "--schema", str(schema_path),
                 "--rules", str(rules_path), str(dirty_path)]
            )
            == 1
        )
        capsys.readouterr()

        # 3. repair the dirty file against the discovered rules
        out_path = tmp / "repaired.csv"
        code = main(
            [
                "repair",
                "--schema", str(schema_path),
                "--rules", str(rules_path),
                "--output", str(out_path),
                str(dirty_path),
            ]
        )
        assert code == 0
        capsys.readouterr()

        # 4. the repaired file passes detection
        assert (
            main(
                ["detect", "--summary-only", "--schema", str(schema_path),
                 "--rules", str(rules_path), str(out_path)]
            )
            == 0
        )
