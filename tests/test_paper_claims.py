"""One test per checkable claim in the paper — the reproduction record.

Each test's docstring quotes or paraphrases the claim; EXPERIMENTS.md
indexes these tests by figure/table/example number.
"""

import pytest

from repro.cfd import cfd_implies, detect_violations, is_consistent
from repro.cfd.model import CFD, UNNAMED
from repro.cind import Verdict, check_joint_consistency, cind_implies, consistency_is_trivial
from repro.deps.base import holds
from repro.md import derive_rcks, md_implies
from repro.paper import (
    YB,
    YC,
    customer_schema,
    example31_mds,
    example32_rcks,
    example41_cfds,
    example41_schema,
    example42_sources,
    example51_instance,
    example51_key,
    fig1_fds,
    fig1_instance,
    fig2_cfds,
    fig3_instance,
    fig4_cinds,
    source_target_schema,
)
from repro.propagation import propagates, tagged_union_view
from repro.relational.domains import INT
from repro.relational.schema import Attribute
from repro.repair import count_repairs_by_components, repair_cfds


class TestSection21:
    def test_d0_satisfies_f1_f2(self):
        """"The instance D0 of Fig. 1 satisfies f1 and f2."""
        assert holds(fig1_instance(), fig1_fds())

    def test_no_tuple_is_error_free(self):
        """"A closer examination of D0 ... none of the tuples in D0 is
        error-free" — all three tuples violate some CFD."""
        report = detect_violations(fig1_instance(), fig2_cfds().values())
        assert len(report.violating_tuples()) == 3

    def test_t1_t2_violate_cfd1(self):
        """"Tuples t1 and t2 in D0 violate cfd1."""
        phi1 = fig2_cfds()["phi1"]
        violations = list(phi1.violations(fig1_instance()))
        assert len(violations) == 1
        phones = {t["phn"] for _, t in violations[0].tuples}
        assert phones == {1234567, 3456789}

    def test_each_of_t1_t2_violates_cfd2_and_t3_cfd3(self):
        """"each of t1 and t2 in D0 violates cfd2 ... t3 violates cfd3"."""
        phi2 = fig2_cfds()["phi2"]
        singles = [
            v for v in phi2.violations(fig1_instance()) if len(v.tuples) == 1
        ]
        cities = sorted(t["city"] for v in singles for _, t in v.tuples)
        assert cities == ["NYC", "NYC", "NYC"]

    def test_d0_satisfies_phi3(self):
        """"the instance D0 of Fig. 1 satisfies the CFD ϕ3"."""
        assert fig2_cfds()["phi3"].holds_on(fig1_instance())


class TestSection22:
    def test_d1_satisfies_cind1_cind2(self):
        """"While D1 of Fig 3 satisfies cind1 and cind2 ..." """
        db = fig3_instance()
        cinds = fig4_cinds()
        assert cinds["phi4"].holds_on(db)
        assert cinds["phi5"].holds_on(db)

    def test_d1_violates_cind3(self):
        """"... it violates cind3. Indeed, tuple t9 ... cannot find a match
        in the book table with 'audio' format."""
        violations = list(fig4_cinds()["phi6"].violations(fig3_instance()))
        assert [t["id"] for _, t in violations[0].tuples] == ["c58"]


class TestTheorem41:
    def test_example_41_inconsistent(self):
        """Example 4.1: no nonempty instance satisfies {ψ1, ψ2} over bool."""
        assert not is_consistent(example41_schema(True), example41_cfds(True))

    def test_fds_always_consistent_as_cfds(self):
        """"One can specify arbitrary FDs ... without worrying about their
        consistency" — all-wildcard CFDs are always consistent."""
        from repro.cfd.model import fd_as_cfd

        cfds = [fd_as_cfd(fd) for fd in fig1_fds()]
        assert is_consistent(customer_schema(), cfds)

    def test_cind_consistency_trivial(self):
        """Theorem 4.1: consistency for CINDs alone is O(1) (always yes)."""
        assert consistency_is_trivial()

    def test_joint_interaction_detects_inconsistency(self):
        """CFDs + CINDs together: the (necessarily bounded) checker finds a
        genuine interaction inconsistency."""
        from repro.cind.model import CIND
        from repro.relational.domains import STRING
        from repro.relational.schema import DatabaseSchema, RelationSchema

        schema = DatabaseSchema(
            [
                RelationSchema("R", [("a", STRING), ("b", STRING)]),
                RelationSchema("S", [("c", STRING), ("d", STRING)]),
            ]
        )
        cfds = [
            CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "x"}]),
            CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "y"}]),
        ]
        cinds = [CIND("R", ["a"], "S", ["c"])]
        result = check_joint_consistency(schema, cfds, cinds, "R")
        assert result.verdict == Verdict.INCONSISTENT


class TestTheorem42:
    def test_cfd_implication_examples(self):
        """Implication behaves as dependency theory predicts on CFDs."""
        schema = customer_schema()
        phi2 = fig2_cfds()["phi2"]
        weaker = CFD(
            "customer", ["CC", "AC", "phn"], ["city"],
            [{"CC": 44, "AC": 131, "phn": UNNAMED, "city": "EDI"}],
        )
        assert cfd_implies(schema, [phi2], weaker)
        assert not cfd_implies(schema, [weaker], phi2)

    def test_cind_implication_via_chase(self):
        schema = source_target_schema()
        cinds = fig4_cinds()
        assert cind_implies(schema, [cinds["phi4"]], cinds["phi4"])
        assert not cind_implies(schema, [cinds["phi4"]], cinds["phi5"])


class TestExample42:
    def _setup(self):
        schema = example42_sources()
        view = tagged_union_view(
            [("R1", 44), ("R2", 1), ("R3", 31)], Attribute("CC", INT)
        )
        from repro.deps.fd import FD

        sigma = [
            FD("R1", ["zip"], ["street"]),
            FD("R1", ["AC"], ["city"]),
            FD("R2", ["AC"], ["city"]),
            FD("R3", ["AC"], ["city"]),
        ]
        name = view.output_schema(schema).name
        return schema, view, sigma, name

    def test_neither_f3_nor_f3i_propagates(self):
        """"one can expect neither Σ0 ⊨σ0 f3 nor Σ0 ⊨σ0 f3+i"."""
        schema, view, sigma, name = self._setup()
        f3 = CFD(name, ["zip"], ["street"], [{"zip": UNNAMED, "street": UNNAMED}])
        f_ac = CFD(name, ["AC"], ["city"], [{"AC": UNNAMED, "city": UNNAMED}])
        assert not propagates(schema, sigma, view, f3)
        assert not propagates(schema, sigma, view, f_ac)

    def test_phi7_phi8_propagate(self):
        """"In contrast, Σ0 ⊨σ0 ϕ7 and Σ0 ⊨σ0 ϕ8"."""
        schema, view, sigma, name = self._setup()
        phi7 = CFD(
            name, ["CC", "zip"], ["street"],
            [{"CC": 44, "zip": UNNAMED, "street": UNNAMED}],
        )
        phi8 = CFD(
            name, ["CC", "AC"], ["city"],
            [{"CC": c, "AC": UNNAMED, "city": UNNAMED} for c in (44, 31, 1)],
        )
        assert propagates(schema, sigma, view, phi7)
        assert propagates(schema, sigma, view, phi8)


class TestExample43AndTheorem48:
    def test_sigma1_implies_all_three_rcks(self):
        """Example 4.3: Σ1 ⊨m rck_i for each i ∈ [1, 3]."""
        sigma = list(example31_mds().values())
        for rck in example32_rcks().values():
            assert md_implies(sigma, rck)

    def test_rck_derivation_produces_the_derived_rule(self):
        """§3.1: "An example of derived rules is: if t[LN, tel] and
        t′[SN, phn] equal, and if t[FN] and t′[FN] are similar ..." """
        sigma = list(example31_mds().values())
        rcks = derive_rcks(sigma, list(YC), list(YB), max_length=3)
        shapes = {
            frozenset((p.left_attr, p.right_attr) for p in rck.premises)
            for rck in rcks
        }
        assert frozenset({("LN", "SN"), ("tel", "phn"), ("FN", "FN")}) in shapes


class TestExample51:
    @pytest.mark.parametrize("n", [1, 3, 6, 10])
    def test_2_to_n_repairs(self, n):
        """"each Dn has 2n tuples and 2^n repairs"."""
        db = example51_instance(n)
        assert len(db.relation("R")) == 2 * n
        assert count_repairs_by_components(db, [example51_key()]) == 2 ** n


class TestSection51Repairing:
    def test_figure1_urepair_round_trip(self):
        """U-repair fixes D0 so that all the Figure 2 CFDs hold."""
        cfds = list(fig2_cfds().values())
        result = repair_cfds(fig1_instance(), cfds)
        assert result.resolved
        report = detect_violations(result.repaired, cfds)
        assert report.is_clean()
