"""Tuples: construction, validation, projection, replace."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DomainError, SchemaError
from repro.relational.domains import INT, STRING
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple


@pytest.fixture
def schema():
    return RelationSchema("R", [("a", INT), ("b", STRING)])


class TestConstruction:
    def test_from_mapping(self, schema):
        t = Tuple(schema, {"a": 1, "b": "x"})
        assert t["a"] == 1
        assert t["b"] == "x"

    def test_from_sequence(self, schema):
        t = Tuple(schema, (1, "x"))
        assert t.values() == (1, "x")

    def test_missing_attribute(self, schema):
        with pytest.raises(SchemaError):
            Tuple(schema, {"a": 1})

    def test_extra_attribute(self, schema):
        with pytest.raises(SchemaError):
            Tuple(schema, {"a": 1, "b": "x", "c": 2})

    def test_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            Tuple(schema, (1,))

    def test_domain_validation(self, schema):
        with pytest.raises(DomainError):
            Tuple(schema, {"a": "not an int", "b": "x"})

    def test_validation_can_be_skipped(self, schema):
        t = Tuple(schema, ("anything", object()), validate=False)
        assert len(t) == 2


class TestProjection:
    def test_single_attribute(self, schema):
        t = Tuple(schema, (1, "x"))
        assert t["b"] == "x"

    def test_attribute_list(self, schema):
        t = Tuple(schema, (1, "x"))
        assert t[["b", "a"]] == ("x", 1)

    def test_empty_projection(self, schema):
        t = Tuple(schema, (1, "x"))
        assert t[[]] == ()

    def test_agrees_with(self, schema):
        t1 = Tuple(schema, (1, "x"))
        t2 = Tuple(schema, (1, "y"))
        assert t1.agrees_with(t2, ["a"])
        assert not t1.agrees_with(t2, ["b"])


class TestValueSemantics:
    def test_equality(self, schema):
        assert Tuple(schema, (1, "x")) == Tuple(schema, {"a": 1, "b": "x"})

    def test_hash_consistency(self, schema):
        assert len({Tuple(schema, (1, "x")), Tuple(schema, (1, "x"))}) == 1

    def test_replace_returns_new(self, schema):
        t = Tuple(schema, (1, "x"))
        t2 = t.replace(b="y")
        assert t["b"] == "x"
        assert t2["b"] == "y"
        assert t2["a"] == 1

    def test_replace_unknown_attribute(self, schema):
        with pytest.raises(SchemaError):
            Tuple(schema, (1, "x")).replace(nope=1)

    def test_as_dict_is_fresh(self, schema):
        t = Tuple(schema, (1, "x"))
        d = t.as_dict()
        d["a"] = 99
        assert t["a"] == 1

    @given(st.integers(), st.text(max_size=10))
    def test_roundtrip(self, a, b):
        schema = RelationSchema("R", [("a", INT), ("b", STRING)])
        t = Tuple(schema, {"a": a, "b": b})
        assert Tuple(schema, t.as_dict()) == t
        assert tuple(t) == (a, b)
