"""Relation and database instances: set semantics, grouping, copying."""

import pytest

from repro.errors import SchemaError
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return RelationSchema("R", [("a", INT), ("b", STRING)])


@pytest.fixture
def instance(schema):
    return RelationInstance(schema, [(1, "x"), (2, "y"), (1, "z")])


class TestRelationInstance:
    def test_set_semantics(self, schema):
        rel = RelationInstance(schema, [(1, "x"), (1, "x")])
        assert len(rel) == 1

    def test_insertion_order_preserved(self, instance):
        assert [t.values() for t in instance] == [(1, "x"), (2, "y"), (1, "z")]

    def test_add_coerces_dicts(self, schema):
        rel = RelationInstance(schema)
        t = rel.add({"a": 1, "b": "x"})
        assert t in rel

    def test_wrong_schema_tuple_rejected(self, schema):
        other = RelationSchema("S", [("c", INT)])
        rel = RelationInstance(schema)
        from repro.relational.tuples import Tuple

        with pytest.raises(SchemaError):
            rel.add(Tuple(other, (1,)))

    def test_remove_and_discard(self, schema, instance):
        t = instance.tuples()[0]
        instance.remove(t)
        assert t not in instance
        instance.discard(t)  # no error on absent
        with pytest.raises(KeyError):
            instance.remove(t)

    def test_filter(self, instance):
        filtered = instance.filter(lambda t: t["a"] == 1)
        assert len(filtered) == 2

    def test_group_by(self, instance):
        groups = instance.group_by(["a"])
        assert len(groups[(1,)]) == 2
        assert len(groups[(2,)]) == 1

    def test_group_by_empty_key_single_group(self, instance):
        groups = instance.group_by([])
        assert len(groups) == 1
        assert len(groups[()]) == 3

    def test_active_domain(self, instance):
        assert instance.active_domain("a") == [1, 2]

    def test_copy_is_independent(self, instance):
        clone = instance.copy()
        clone.remove(clone.tuples()[0])
        assert len(instance) == 3
        assert len(clone) == 2

    def test_equality_ignores_order(self, schema):
        r1 = RelationInstance(schema, [(1, "x"), (2, "y")])
        r2 = RelationInstance(schema, [(2, "y"), (1, "x")])
        assert r1 == r2

    def test_pretty_contains_data(self, instance):
        rendered = instance.pretty()
        assert "a" in rendered and "'x'" in rendered


class TestDatabaseInstance:
    def test_construction_with_rows(self, schema):
        db_schema = DatabaseSchema([schema])
        db = DatabaseInstance(db_schema, {"R": [(1, "x")]})
        assert len(db.relation("R")) == 1

    def test_unknown_relation(self, schema):
        db = DatabaseInstance(DatabaseSchema([schema]))
        with pytest.raises(SchemaError):
            db.relation("S")

    def test_getitem(self, schema):
        db = DatabaseInstance(DatabaseSchema([schema]), {"R": [(1, "x")]})
        assert len(db["R"]) == 1

    def test_total_and_empty(self, schema):
        db = DatabaseInstance(DatabaseSchema([schema]))
        assert db.is_empty()
        db.relation("R").add((1, "x"))
        assert db.total_tuples() == 1
        assert not db.is_empty()

    def test_copy_independence(self, schema):
        db = DatabaseInstance(DatabaseSchema([schema]), {"R": [(1, "x")]})
        clone = db.copy()
        clone.relation("R").add((2, "y"))
        assert len(db.relation("R")) == 1

    def test_equality(self, schema):
        db_schema = DatabaseSchema([schema])
        db1 = DatabaseInstance(db_schema, {"R": [(1, "x")]})
        db2 = DatabaseInstance(db_schema, {"R": [(1, "x")]})
        assert db1 == db2
        db2.relation("R").add((2, "y"))
        assert db1 != db2
