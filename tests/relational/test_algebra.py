"""Relational algebra operators."""

import pytest

from repro.errors import QueryError
from repro.relational import algebra
from repro.relational.domains import INT, STRING
from repro.relational.instance import RelationInstance
from repro.relational.predicates import Comparison, eq
from repro.relational.schema import RelationSchema


@pytest.fixture
def r():
    schema = RelationSchema("R", [("a", INT), ("b", STRING)])
    return RelationInstance(schema, [(1, "x"), (2, "y"), (3, "x")])


@pytest.fixture
def s():
    schema = RelationSchema("S", [("c", INT), ("d", STRING)])
    return RelationInstance(schema, [(1, "p"), (2, "q")])


class TestSelect:
    def test_equality_selection(self, r):
        result = algebra.select(r, eq("@b", "x"))
        assert {t["a"] for t in result} == {1, 3}

    def test_comparison_selection(self, r):
        result = algebra.select(r, Comparison("@a", ">", 1))
        assert {t["a"] for t in result} == {2, 3}

    def test_unknown_attribute_raises(self, r):
        with pytest.raises(QueryError):
            algebra.select(r, eq("@zzz", 1))


class TestProject:
    def test_duplicate_elimination(self, r):
        result = algebra.project(r, ["b"])
        assert len(result) == 2

    def test_order(self, r):
        result = algebra.project(r, ["b", "a"])
        assert result.schema.attribute_names == ("b", "a")


class TestProduct:
    def test_cardinality(self, r, s):
        result = algebra.product(r, s)
        assert len(result) == 6
        assert result.schema.attribute_names == ("a", "b", "c", "d")

    def test_shared_attributes_rejected(self, r):
        with pytest.raises(QueryError):
            algebra.product(r, r)


class TestSetOperators:
    def test_union(self, r):
        other = RelationInstance(r.schema, [(9, "z"), (1, "x")])
        result = algebra.union(r, other)
        assert len(result) == 4  # (1, x) deduplicated

    def test_union_incompatible(self, r, s):
        with pytest.raises(QueryError):
            algebra.union(r, s)

    def test_difference(self, r):
        other = RelationInstance(r.schema, [(1, "x")])
        result = algebra.difference(r, other)
        assert {t["a"] for t in result} == {2, 3}

    def test_intersection(self, r):
        other = RelationInstance(r.schema, [(1, "x"), (9, "z")])
        result = algebra.intersection(r, other)
        assert len(result) == 1


class TestRename:
    def test_rename_attribute(self, r):
        result = algebra.rename(r, {"a": "alpha"})
        assert result.schema.attribute_names == ("alpha", "b")
        assert {t["alpha"] for t in result} == {1, 2, 3}

    def test_rename_collision_rejected(self, r):
        with pytest.raises(QueryError):
            algebra.rename(r, {"a": "b"})

    def test_rename_unknown_attr(self, r):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            algebra.rename(r, {"zzz": "w"})


class TestNaturalJoin:
    def test_join_on_shared(self):
        left = RelationInstance(
            RelationSchema("L", [("k", INT), ("x", STRING)]), [(1, "a"), (2, "b")]
        )
        right = RelationInstance(
            RelationSchema("R", [("k", INT), ("y", STRING)]), [(1, "p"), (1, "q")]
        )
        result = algebra.natural_join(left, right)
        assert result.schema.attribute_names == ("k", "x", "y")
        assert len(result) == 2  # (1,a,p), (1,a,q)

    def test_join_no_shared_is_product(self, r, s):
        result = algebra.natural_join(r, s)
        assert len(result) == 6
