"""CSV bridge: round trips and parsing driven by the schema domains."""

import io

import pytest

from repro.errors import SchemaError
from repro.relational.csvio import dump_csv, load_csv, read_rows, write_rows
from repro.relational.domains import BOOL, FLOAT, INT, STRING
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema


@pytest.fixture
def schema():
    return RelationSchema(
        "R", [("i", INT), ("f", FLOAT), ("s", STRING), ("b", BOOL)]
    )


class TestReadRows:
    def test_parsing_by_domain(self, schema):
        instance = read_rows(schema, [["1", "2.5", "abc", "true"]])
        t = instance.tuples()[0]
        assert t.values() == (1, 2.5, "abc", True)

    def test_bool_parsing_variants(self, schema):
        instance = read_rows(
            schema,
            [["1", "0.0", "x", "YES"], ["2", "0.0", "x", "0"]],
        )
        values = [t["b"] for t in instance]
        assert values == [True, False]

    def test_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            read_rows(schema, [["1", "2.0"]])


class TestRoundTrip:
    def test_file_roundtrip(self, schema, tmp_path):
        original = RelationInstance(
            schema, [(1, 1.5, "hello", True), (2, 2.5, "world", False)]
        )
        path = tmp_path / "data.csv"
        dump_csv(original, path)
        loaded = load_csv(schema, path)
        assert loaded == original

    def test_handle_roundtrip(self, schema):
        original = RelationInstance(schema, [(1, 1.0, "x", True)])
        buffer = io.StringIO()
        dump_csv(original, buffer)
        buffer.seek(0)
        assert load_csv(schema, buffer) == original

    def test_header_mismatch_rejected(self, schema):
        buffer = io.StringIO("wrong,header,names,here\n1,1.0,x,true\n")
        with pytest.raises(SchemaError):
            load_csv(schema, buffer)

    def test_no_header_mode(self, schema):
        buffer = io.StringIO("1,1.0,x,true\n")
        loaded = load_csv(schema, buffer, has_header=False)
        assert len(loaded) == 1

    def test_write_rows_strings(self, schema):
        instance = RelationInstance(schema, [(1, 1.0, "x", True)])
        assert write_rows(instance) == [["1", "1.0", "x", "True"]]
