"""Schemas: construction, lookup, projection, finite-domain detection."""

import pytest

from repro.errors import SchemaError
from repro.relational.domains import BOOL, INT, STRING
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


class TestAttribute:
    def test_default_domain_is_string(self):
        assert Attribute("name").domain == STRING

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_equality(self):
        assert Attribute("a", INT) == Attribute("a", INT)
        assert Attribute("a", INT) != Attribute("a", STRING)


class TestRelationSchema:
    def test_mixed_attribute_specs(self):
        schema = RelationSchema("R", [Attribute("a", INT), ("b", STRING), "c"])
        assert schema.attribute_names == ("a", "b", "c")
        assert schema.domain("a") == INT
        assert schema.domain("c") == STRING

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_unknown_attribute_lookup(self):
        schema = RelationSchema("R", ["a"])
        with pytest.raises(SchemaError):
            schema.attribute("zzz")

    def test_index_of(self):
        schema = RelationSchema("R", ["a", "b", "c"])
        assert schema.index_of("b") == 1

    def test_contains(self):
        schema = RelationSchema("R", ["a"])
        assert "a" in schema
        assert "b" not in schema

    def test_project_preserves_order_given(self):
        schema = RelationSchema("R", ["a", "b", "c"])
        projected = schema.project(["c", "a"])
        assert projected.attribute_names == ("c", "a")

    def test_project_unknown_attribute(self):
        schema = RelationSchema("R", ["a"])
        with pytest.raises(SchemaError):
            schema.project(["nope"])

    def test_rename(self):
        schema = RelationSchema("R", ["a"]).rename("S")
        assert schema.name == "S"
        assert schema.attribute_names == ("a",)

    def test_finite_domain_detection(self):
        finite = RelationSchema("R", [("flag", BOOL), ("x", INT)])
        infinite = RelationSchema("R", [("x", INT), ("s", STRING)])
        assert finite.has_finite_domain_attribute()
        assert not infinite.has_finite_domain_attribute()

    def test_check_attributes(self):
        schema = RelationSchema("R", ["a", "b"])
        assert schema.check_attributes(["b", "a"]) == ("b", "a")
        with pytest.raises(SchemaError):
            schema.check_attributes(["a", "zz"])

    def test_equality_and_hash(self):
        s1 = RelationSchema("R", [("a", INT)])
        s2 = RelationSchema("R", [("a", INT)])
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != RelationSchema("R", [("a", STRING)])


class TestDatabaseSchema:
    def test_lookup(self):
        db = DatabaseSchema([RelationSchema("R", ["a"]), RelationSchema("S", ["b"])])
        assert db.relation("R").name == "R"
        assert len(db) == 2
        assert "S" in db

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("R", ["a"]), RelationSchema("R", ["b"])])

    def test_unknown_relation(self):
        db = DatabaseSchema([RelationSchema("R", ["a"])])
        with pytest.raises(SchemaError):
            db.relation("S")

    def test_iteration_order(self):
        db = DatabaseSchema([RelationSchema("R", ["a"]), RelationSchema("S", ["b"])])
        assert [r.name for r in db] == ["R", "S"]
