"""Domains: membership, finiteness, fresh-value generation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DomainError
from repro.relational.domains import (
    BOOL,
    EnumDomain,
    FLOAT,
    INT,
    STRING,
    BoolDomain,
    IntDomain,
    StringDomain,
)


class TestIntDomain:
    def test_contains_int(self):
        assert INT.contains(5)
        assert INT.contains(-3)

    def test_rejects_bool(self):
        # bool is a subclass of int but must not type-pun into IntDomain
        assert not INT.contains(True)

    def test_rejects_string(self):
        assert not INT.contains("5")

    def test_not_finite(self):
        assert not INT.is_finite

    def test_enumerating_infinite_domain_raises(self):
        with pytest.raises(DomainError):
            list(INT.values())

    def test_size_of_infinite_domain_raises(self):
        with pytest.raises(DomainError):
            INT.size()

    def test_fresh_value_avoids(self):
        avoid = {0, 1, 2}
        assert INT.fresh_value(avoid) not in avoid

    def test_validate_passes_member(self):
        assert INT.validate(7) == 7

    def test_validate_raises_for_nonmember(self):
        with pytest.raises(DomainError):
            INT.validate("x")


class TestStringDomain:
    def test_contains(self):
        assert STRING.contains("hello")
        assert not STRING.contains(5)

    def test_fresh_values_distinct(self):
        values = []
        for v in STRING.fresh_values():
            values.append(v)
            if len(values) == 10:
                break
        assert len(set(values)) == 10

    def test_fresh_avoids(self):
        avoid = {"v0", "v1"}
        assert STRING.fresh_value(avoid) not in avoid


class TestFloatDomain:
    def test_contains_numbers(self):
        assert FLOAT.contains(1.5)
        assert FLOAT.contains(2)  # ints acceptable in float columns

    def test_rejects_bool(self):
        assert not FLOAT.contains(False)


class TestBoolDomain:
    def test_finite_with_two_values(self):
        assert BOOL.is_finite
        assert BOOL.size() == 2
        assert set(BOOL.values()) == {True, False}

    def test_contains_only_bools(self):
        assert BOOL.contains(True)
        assert not BOOL.contains(1)

    def test_exhaustion(self):
        with pytest.raises(DomainError):
            BOOL.fresh_value({True, False})

    def test_fresh_respects_avoid(self):
        assert BOOL.fresh_value({True}) is False


class TestEnumDomain:
    def test_membership(self):
        d = EnumDomain(["a", "b", "c"])
        assert d.contains("a")
        assert not d.contains("z")

    def test_empty_enum_rejected(self):
        with pytest.raises(DomainError):
            EnumDomain([])

    def test_enumeration_deterministic(self):
        d = EnumDomain(["b", "a", "c"])
        assert list(d.values()) == list(d.values())

    def test_fresh_values_only_remaining(self):
        d = EnumDomain([1, 2, 3])
        assert set(d.fresh_values({1})) == {2, 3}

    def test_equality_by_value_set(self):
        assert EnumDomain([1, 2]) == EnumDomain([2, 1])
        assert EnumDomain([1, 2]) != EnumDomain([1, 3])

    def test_hashable(self):
        assert len({EnumDomain([1, 2]), EnumDomain([2, 1])}) == 1

    @given(st.sets(st.integers(), min_size=1, max_size=10))
    def test_size_matches_values(self, values):
        d = EnumDomain(values)
        assert d.size() == len(values)
        assert set(d.values()) == values


class TestDomainEquality:
    def test_singletons_equal_fresh_instances(self):
        assert INT == IntDomain()
        assert STRING == StringDomain()
        assert BOOL == BoolDomain()

    def test_cross_type_inequality(self):
        assert INT != STRING
