"""SPCU query trees: schemas, evaluation, operator tracking."""

import pytest

from repro.errors import QueryError
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import eq
from repro.relational.query import (
    Base,
    Difference,
    Extend,
    Project,
    Product,
    Rename,
    Select,
    Union,
)
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema


@pytest.fixture
def db():
    schema = DatabaseSchema(
        [
            RelationSchema("R", [("a", INT), ("b", STRING)]),
            RelationSchema("S", [("c", INT), ("d", STRING)]),
            RelationSchema("R2", [("a", INT), ("b", STRING)]),
        ]
    )
    return DatabaseInstance(
        schema,
        {
            "R": [(1, "x"), (2, "y")],
            "S": [(1, "p")],
            "R2": [(3, "z")],
        },
    )


class TestEvaluation:
    def test_base(self, db):
        assert len(Base("R").evaluate(db)) == 2

    def test_select(self, db):
        q = Select(Base("R"), eq("@b", "x"))
        assert [t["a"] for t in q.evaluate(db)] == [1]

    def test_project(self, db):
        q = Project(Base("R"), ["b"])
        assert q.output_schema(db.schema).attribute_names == ("b",)
        assert len(q.evaluate(db)) == 2

    def test_product(self, db):
        q = Product(Base("R"), Base("S"))
        assert len(q.evaluate(db)) == 2
        assert q.output_schema(db.schema).attribute_names == ("a", "b", "c", "d")

    def test_union(self, db):
        q = Union(Base("R"), Base("R2"))
        assert len(q.evaluate(db)) == 3

    def test_difference(self, db):
        q = Difference(Union(Base("R"), Base("R2")), Base("R2"))
        assert len(q.evaluate(db)) == 2

    def test_rename(self, db):
        q = Rename(Base("R"), {"a": "alpha"})
        assert q.output_schema(db.schema).attribute_names == ("alpha", "b")

    def test_extend(self, db):
        q = Extend(Base("R"), Attribute("tag", INT), 44)
        result = q.evaluate(db)
        assert all(t["tag"] == 44 for t in result)
        assert q.output_schema(db.schema).attribute_names == ("a", "b", "tag")

    def test_nested_pipeline(self, db):
        q = Project(
            Select(Union(Base("R"), Base("R2")), eq("@b", "z")), ["a"]
        )
        assert [t["a"] for t in q.evaluate(db)] == [3]


class TestSchemaChecks:
    def test_select_unknown_attribute(self, db):
        q = Select(Base("R"), eq("@zzz", 1))
        with pytest.raises(QueryError):
            q.output_schema(db.schema)

    def test_product_attribute_clash(self, db):
        q = Product(Base("R"), Base("R2"))
        with pytest.raises(QueryError):
            q.output_schema(db.schema)

    def test_union_incompatible(self, db):
        q = Union(Base("R"), Base("S"))
        with pytest.raises(QueryError):
            q.output_schema(db.schema)

    def test_extend_existing_attribute(self, db):
        q = Extend(Base("R"), Attribute("a", INT), 1)
        with pytest.raises(QueryError):
            q.output_schema(db.schema)


class TestOperatorTracking:
    def test_letters(self, db):
        q = Project(Select(Base("R"), eq("@b", "x")), ["a"])
        assert q.operators() == {"S", "P"}
        assert q.uses_only("SPCU")

    def test_difference_not_spcu(self, db):
        q = Difference(Base("R"), Base("R2"))
        assert not q.uses_only("SPCU")

    def test_union_product(self, db):
        q = Union(Base("R"), Base("R2"))
        assert q.operators() == {"U"}
        q2 = Product(Base("R"), Base("S"))
        assert q2.operators() == {"C"}
