"""Columnar storage edge cases: the encoded backend under stress.

Covers the corners the differential corpus cannot reach by construction:
empty relations, fully-deleted bitmaps followed by re-insertion,
dictionary growth past 2**16 distinct values, cross-type equality
congruence (dict-key interning must agree with ``stable_shard``), and
``Tuple`` materialization round-trip identity.
"""

import pytest

from repro.engine.parallel import stable_shard
from repro.errors import DomainError
from repro.relational.columnar import ColumnStore
from repro.relational.domains import FLOAT, INT, STRING
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple


@pytest.fixture
def schema():
    return RelationSchema("R", [("a", INT), ("b", STRING)])


@pytest.fixture
def columnar(schema):
    return RelationInstance(schema, storage="columnar")


class TestEmptyRelation:
    def test_empty_basics(self, columnar):
        assert len(columnar) == 0
        assert list(columnar) == []
        assert columnar.tuples() == []
        assert columnar.to_rows() == []
        assert (1, "x") not in [t.values() for t in columnar]

    def test_empty_projection_and_domain(self, columnar):
        assert columnar.project_values(["a"]) == []
        assert columnar.active_domain("b") == []

    def test_empty_copy_independent(self, columnar):
        clone = columnar.copy()
        clone.add((1, "x"))
        assert len(clone) == 1
        assert len(columnar) == 0

    def test_empty_group_layout(self, columnar):
        layout = columnar.indexes.group_layout(("a",))
        if layout is not None:  # None only when numpy is unavailable
            assert layout.n_groups == 0
            assert layout.rank_of_key((1,)) is None


class TestAllDeletedThenReinsert:
    def test_delete_everything_then_reinsert(self, columnar):
        rows = [(i, f"s{i % 7}") for i in range(300)]
        columnar.extend_rows(rows)
        for t in columnar.tuples():
            columnar.remove(t)
        assert len(columnar) == 0
        assert list(columnar) == []
        # Deleting everything crosses the compaction threshold repeatedly:
        # at most the compaction floor of dead rows may linger physically,
        # and membership must stay consistent.
        store = columnar.column_store
        assert store.dead <= 64
        assert store.n_rows == store.dead
        columnar.extend_rows(rows)
        assert len(columnar) == 300
        assert columnar.to_rows() == rows

    def test_interleaved_delete_reinsert_membership(self, columnar):
        for i in range(200):
            columnar.add((i, "x"))
        victims = [t for t in columnar.tuples() if t["a"] % 2 == 0]
        for t in victims:
            columnar.remove(t)
        assert len(columnar) == 100
        # Re-inserting a deleted row must succeed (it is genuinely absent),
        # and duplicate-inserting a surviving row must stay a no-op.
        columnar.add((0, "x"))
        columnar.add((1, "x"))
        assert len(columnar) == 101
        values = {t.values() for t in columnar}
        assert (0, "x") in values and (1, "x") in values

    def test_remove_absent_raises(self, columnar):
        columnar.add((1, "x"))
        with pytest.raises(KeyError):
            columnar.remove(Tuple(columnar.schema, (2, "y")))
        columnar.discard(Tuple(columnar.schema, (2, "y")))  # no-op
        assert len(columnar) == 1


class TestDictionaryGrowth:
    def test_past_two_to_sixteen_distinct_values(self):
        schema = RelationSchema("wide", [("k", INT), ("tag", STRING)])
        instance = RelationInstance(schema, storage="columnar")
        n = (1 << 16) + 500
        instance.extend_rows((i, f"t{i % 3}") for i in range(n))
        assert len(instance) == n
        store = instance.column_store
        assert len(store.decode[0]) == n  # one code per distinct key
        assert len(store.decode[1]) == 3
        # Codes past 2**16 still round-trip and stay probeable.
        assert store.probe((n - 1, f"t{(n - 1) % 3}")) is not None
        past = (1 << 16) + 64  # a key whose code is beyond 2**16
        assert store.find_row(store.probe((past, f"t{past % 3}"))) is not None
        assert instance.add((past, f"t{past % 3}"))  # duplicate: no growth
        assert len(instance) == n

    def test_group_layout_survives_wide_dictionaries(self):
        schema = RelationSchema("wide", [("k", INT), ("tag", STRING)])
        instance = RelationInstance(schema, storage="columnar")
        n = (1 << 16) + 10
        instance.extend_rows((i, f"t{i % 5}") for i in range(n))
        layout = instance.indexes.group_layout(("tag",))
        if layout is not None:
            assert layout.n_groups == 5
            total = sum(int(layout.sizes[rank]) for rank in range(5))
            assert total == n


class TestEqualityCongruence:
    def test_one_code_for_cross_type_equal_values(self):
        schema = RelationSchema("S", [("v", FLOAT)])
        store = ColumnStore(schema)
        codes_int = store.intern_row((1,))
        assert store.probe((1.0,)) == codes_int
        assert store.probe((True,)) == codes_int
        assert store.probe((0.0,)) is None
        codes_zero = store.intern_row((0.0,))
        assert store.probe((-0.0,)) == codes_zero
        assert store.probe((False,)) == codes_zero

    def test_congruence_matches_stable_shard(self):
        # The interning dictionaries and the shard router must agree on
        # which values are "the same", or a columnar-sharded run would
        # split a partition that the object-mode run keeps whole.
        for shards in (2, 5, 8):
            assert (
                stable_shard((1,), shards)
                == stable_shard((1.0,), shards)
                == stable_shard((True,), shards)
            )
            assert stable_shard((0.0,), shards) == stable_shard((-0.0,), shards)

    def test_first_seen_representative_wins(self):
        schema = RelationSchema("S", [("v", FLOAT)])
        instance = RelationInstance(schema, storage="columnar")
        instance.add((1,))
        instance.add((1.0,))  # duplicate under ==; first-seen int survives
        assert len(instance) == 1
        (value,) = instance.to_rows()[0]
        assert value == 1 and isinstance(value, int)


class TestTupleRoundTrip:
    def test_materialization_identity(self, columnar):
        added = columnar.add((1, "x"))
        assert columnar.tuples()[0] is added
        assert columnar.tuples()[0] is columnar.tuples()[0]

    def test_added_tuple_object_is_preserved(self, columnar, schema):
        original = Tuple(schema, (7, "q"))
        returned = columnar.add(original)
        assert returned is original
        assert list(columnar)[0] is original

    def test_lazy_materialization_round_trips_values(self, columnar):
        rows = [(i, f"s{i}") for i in range(50)]
        columnar.extend_rows(rows)  # no Tuples built yet
        materialized = [t.values() for t in columnar]
        assert materialized == rows
        # A second pass hands back the identical cached objects.
        first_pass = columnar.tuples()
        second_pass = columnar.tuples()
        assert all(a is b for a, b in zip(first_pass, second_pass))

    def test_duplicate_insert_rejects_bad_domain_value(self, columnar):
        columnar.add((1, "x"))
        with pytest.raises(DomainError):
            columnar.add((True, "x"))  # equal under ==, but not in INT


class TestObjectParity:
    """The two backends must agree on every public observation."""

    def test_equality_across_backends(self, schema):
        rows = [(i % 13, f"s{i % 7}") for i in range(120)]
        col = RelationInstance(schema, storage="columnar")
        col.extend_rows(rows)
        obj = RelationInstance(schema, storage="object")
        obj.extend_rows(rows)
        assert col == obj
        assert len(col) == len(obj)
        assert col.to_rows() == obj.to_rows()
        assert col.project_values(["b"]) == obj.project_values(["b"])
        assert col.active_domain("a") == obj.active_domain("a")
