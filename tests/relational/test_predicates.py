"""Predicate terms and conditions."""

import pytest

from repro.errors import QueryError
from repro.relational.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    InSet,
    Not,
    Or,
    TrueCondition,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)


class TestTerms:
    def test_attr_evaluation(self):
        assert Attr("x").evaluate({"x": 5}) == 5

    def test_attr_unbound(self):
        with pytest.raises(QueryError):
            Attr("x").evaluate({})

    def test_const(self):
        assert Const(3).evaluate({}) == 3

    def test_at_shorthand(self):
        cond = eq("@x", 1)
        assert cond.left == Attr("x")
        assert cond.right == Const(1)

    def test_plain_string_is_constant(self):
        cond = eq("x", 1)
        assert cond.left == Const("x")


class TestComparison:
    @pytest.mark.parametrize(
        "builder, value, expected",
        [
            (eq, 5, True), (eq, 6, False),
            (ne, 6, True), (ne, 5, False),
            (lt, 4, True), (lt, 5, False),
            (le, 5, True), (le, 6, False),
            (gt, 6, True), (gt, 5, False),
            (ge, 5, True), (ge, 4, False),
        ],
    )
    def test_operators(self, builder, value, expected):
        cond = builder("@x", 5)
        assert cond.evaluate({"x": value}) is expected

    def test_attr_vs_attr(self):
        cond = eq("@x", "@y")
        assert cond.evaluate({"x": 1, "y": 1})
        assert not cond.evaluate({"x": 1, "y": 2})

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            Comparison("@x", "~", 1)

    def test_attributes_collected(self):
        assert eq("@x", "@y").attributes() == {"x", "y"}


class TestBooleanCombinators:
    def test_and(self):
        cond = eq("@x", 1) & gt("@y", 0)
        assert cond.evaluate({"x": 1, "y": 5})
        assert not cond.evaluate({"x": 1, "y": 0})

    def test_or(self):
        cond = eq("@x", 1) | eq("@x", 2)
        assert cond.evaluate({"x": 2})
        assert not cond.evaluate({"x": 3})

    def test_not(self):
        cond = ~eq("@x", 1)
        assert cond.evaluate({"x": 2})

    def test_true_condition(self):
        assert TrueCondition().evaluate({})

    def test_nested_attributes(self):
        cond = And([eq("@x", 1), Or([eq("@y", 2), Not(eq("@z", 3))])])
        assert cond.attributes() == {"x", "y", "z"}


class TestInSet:
    def test_membership(self):
        cond = InSet("@city", {"NYC", "LI"})
        assert cond.evaluate({"city": "NYC"})
        assert not cond.evaluate({"city": "EDI"})

    def test_negated(self):
        cond = InSet("@city", {"NYC", "LI"}, negated=True)
        assert cond.evaluate({"city": "EDI"})
        assert not cond.evaluate({"city": "LI"})

    def test_equality_value_semantics(self):
        assert InSet("@c", {1, 2}) == InSet("@c", {2, 1})
        assert InSet("@c", {1}) != InSet("@c", {1}, negated=True)
