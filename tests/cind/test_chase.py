"""The CIND chase: witnesses, fixpoints, termination bounds."""

import pytest

from repro.cind.chase import ChaseState, LabelledNull, chase
from repro.cind.model import CIND
from repro.errors import AnalysisBoundExceeded


SCHEMAS = {
    "R": ("a", "b"),
    "S": ("c", "d"),
    "T": ("e", "f"),
}


class TestLabelledNull:
    def test_equality_by_label(self):
        assert LabelledNull(1) == LabelledNull(1)
        assert LabelledNull(1) != LabelledNull(2)

    def test_never_equals_constants(self):
        assert LabelledNull(1) != 1
        assert LabelledNull(1) != "⊥1"


class TestChase:
    def test_adds_missing_witness(self):
        state = ChaseState()
        state.add_tuple("R", {"a": "v", "b": state.fresh_null()})
        cind = CIND("R", ["a"], "S", ["c"])
        chase(state, [cind], SCHEMAS)
        assert len(state.tuples("S")) == 1
        assert state.tuples("S")[0]["c"] == "v"

    def test_existing_witness_reused(self):
        state = ChaseState()
        state.add_tuple("R", {"a": "v", "b": state.fresh_null()})
        state.add_tuple("S", {"c": "v", "d": "x"})
        cind = CIND("R", ["a"], "S", ["c"])
        chase(state, [cind], SCHEMAS)
        assert len(state.tuples("S")) == 1

    def test_pattern_gated_application(self):
        state = ChaseState()
        state.add_tuple("R", {"a": "v", "b": "not-book"})
        cind = CIND(
            "R", ["a"], "S", ["c"],
            lhs_pattern_attrs=["b"], tableau=[{"b": "book"}],
        )
        chase(state, [cind], SCHEMAS)
        assert state.tuples("S") == []

    def test_null_does_not_match_pattern_constant(self):
        state = ChaseState()
        state.add_tuple("R", {"a": "v", "b": state.fresh_null()})
        cind = CIND(
            "R", ["a"], "S", ["c"],
            lhs_pattern_attrs=["b"], tableau=[{"b": "book"}],
        )
        chase(state, [cind], SCHEMAS)
        assert state.tuples("S") == []

    def test_rhs_pattern_applied_to_witness(self):
        state = ChaseState()
        state.add_tuple("R", {"a": "v", "b": "book"})
        cind = CIND(
            "R", ["a"], "S", ["c"],
            lhs_pattern_attrs=["b"],
            rhs_pattern_attrs=["d"],
            tableau=[{"b": "book", "d": "audio"}],
        )
        chase(state, [cind], SCHEMAS)
        assert state.tuples("S")[0]["d"] == "audio"

    def test_transitive_cascade(self):
        state = ChaseState()
        state.add_tuple("R", {"a": "v", "b": state.fresh_null()})
        cinds = [
            CIND("R", ["a"], "S", ["c"]),
            CIND("S", ["c"], "T", ["e"]),
        ]
        chase(state, cinds, SCHEMAS)
        assert len(state.tuples("T")) == 1
        assert state.tuples("T")[0]["e"] == "v"

    def test_cyclic_bounded(self):
        # R[a] ⊆ S[c] and S[d] ⊆ R[a]: each new witness gets a fresh d,
        # which spawns a fresh R tuple, forever — the bound must trip.
        state = ChaseState()
        state.add_tuple("R", {"a": "v", "b": "x"})
        cinds = [
            CIND("R", ["a"], "S", ["c"]),
            CIND("S", ["d"], "R", ["a"]),
        ]
        with pytest.raises(AnalysisBoundExceeded):
            chase(state, cinds, SCHEMAS, max_steps=50)

    def test_idempotent_at_fixpoint(self):
        state = ChaseState()
        state.add_tuple("R", {"a": "v", "b": "x"})
        cind = CIND("R", ["a"], "S", ["c"])
        chase(state, [cind], SCHEMAS)
        size = state.total_tuples()
        chase(state, [cind], SCHEMAS)
        assert state.total_tuples() == size
