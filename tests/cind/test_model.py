"""CIND model and the Figure 3/4 satisfaction pattern."""

import pytest

from repro.cind.model import CIND, ind_as_cind
from repro.deps.ind import IND
from repro.errors import DependencyError
from repro.paper import fig3_instance, fig3_naive_inds, fig4_cinds, source_target_schema


class TestConstruction:
    def test_arity_mismatch(self):
        with pytest.raises(DependencyError):
            CIND("order", ["title"], "book", ["title", "price"])

    def test_x_xp_overlap_rejected(self):
        with pytest.raises(DependencyError):
            CIND(
                "order", ["title"], "book", ["title"],
                lhs_pattern_attrs=["title"],
                tableau=[{"title": "x"}],
            )

    def test_y_yp_overlap_rejected(self):
        with pytest.raises(DependencyError):
            CIND(
                "order", ["title"], "book", ["title"],
                rhs_pattern_attrs=["title"],
                tableau=[{"title": "x"}],
            )

    def test_missing_pattern_cell_rejected(self):
        with pytest.raises(DependencyError):
            CIND(
                "order", ["title"], "book", ["title"],
                lhs_pattern_attrs=["type"],
                tableau=[{}],
            )

    def test_embedded_ind(self):
        phi4 = fig4_cinds()["phi4"]
        assert phi4.embedded_ind == IND("order", ["title", "price"], "book", ["title", "price"])

    def test_check_schema(self):
        schema = source_target_schema()
        for cind in fig4_cinds().values():
            cind.check_schema(schema)

    def test_equality(self):
        assert fig4_cinds()["phi4"] == fig4_cinds()["phi4"]
        assert fig4_cinds()["phi4"] != fig4_cinds()["phi5"]


class TestPaperSemantics:
    """The exact claims of §2.2 about D1."""

    def test_phi4_phi5_hold(self):
        db = fig3_instance()
        cinds = fig4_cinds()
        assert cinds["phi4"].holds_on(db)
        assert cinds["phi5"].holds_on(db)

    def test_phi6_violated_by_t9(self):
        db = fig3_instance()
        violations = list(fig4_cinds()["phi6"].violations(db))
        assert len(violations) == 1
        _, witness = violations[0].tuples[0]
        assert witness["id"] == "c58"  # t9

    def test_t7_not_a_match_for_t9(self):
        """t7 agrees on album/price but has paper-cover, not audio."""
        db = fig3_instance()
        # removing the format requirement makes the CIND hold
        relaxed = CIND(
            "CD", ["album", "price"], "book", ["title", "price"],
            lhs_pattern_attrs=["genre"],
            tableau=[{"genre": "a-book"}],
        )
        assert relaxed.holds_on(db)

    def test_naive_inds_do_not_make_sense(self):
        """The unconditioned INDs cannot both hold: a book order has no CD
        to match (order(title,price) ⊆ CD(album,price) fails on t5).  The
        book-side IND holds on the tiny D1 only coincidentally."""
        db = fig3_instance()
        ind_book, ind_cd = fig3_naive_inds()
        violations = list(ind_cd.violations(db))
        assert violations, "the CD-side IND must fail on the book order t5"
        assert any(t["type"] == "book" for _, t in violations[0].tuples)

    def test_ind_as_cind_equivalence(self):
        db = fig3_instance()
        for ind in fig3_naive_inds():
            assert ind_as_cind(ind).holds_on(db) == ind.holds_on(db)

    def test_pattern_restriction_only_selected_tuples(self):
        """Only type='book' order tuples are constrained by phi4."""
        db = fig3_instance()
        # empty the book table; phi4 must now flag only t5 (the book order)
        db.relation("book").discard(db.relation("book").tuples()[0])
        db.relation("book").discard(db.relation("book").tuples()[0])
        violations = list(fig4_cinds()["phi4"].violations(db))
        assert len(violations) == 1
        assert violations[0].tuples[0][1]["type"] == "book"
