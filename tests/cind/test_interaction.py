"""CFDs + CINDs taken together: the bounded three-valued checker."""

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.cind.interaction import Verdict, check_joint_consistency
from repro.cind.model import CIND
from repro.deps.base import holds
from repro.relational.domains import STRING
from repro.relational.schema import DatabaseSchema, RelationSchema


def _schema():
    return DatabaseSchema(
        [
            RelationSchema("R", [("a", STRING), ("b", STRING)]),
            RelationSchema("S", [("c", STRING), ("d", STRING)]),
        ]
    )


class TestJointConsistency:
    def test_trivially_consistent(self):
        result = check_joint_consistency(_schema(), [], [])
        assert result.verdict == Verdict.CONSISTENT

    def test_witness_is_returned_and_valid(self):
        cfds = [CFD("R", ["a"], ["b"], [{"a": UNNAMED, "b": "b1"}])]
        cinds = [CIND("R", ["a"], "S", ["c"])]
        result = check_joint_consistency(_schema(), cfds, cinds)
        assert result.verdict == Verdict.CONSISTENT
        assert result.witness is not None
        assert not result.witness.is_empty()
        assert holds(result.witness, list(cfds) + list(cinds))

    def test_cfd_only_inconsistency_detected(self):
        cfds = [
            CFD("R", ["a"], ["b"], [{"a": UNNAMED, "b": "b1"}]),
            CFD("R", ["a"], ["b"], [{"a": UNNAMED, "b": "b2"}]),
        ]
        result = check_joint_consistency(_schema(), cfds, [])
        assert result.verdict == Verdict.INCONSISTENT

    def test_cind_forces_cfd_conflict(self):
        """The undecidable-in-general interaction, on a decidable instance:
        the CIND copies R.a into S.c where CFDs pin S.d two ways."""
        cfds = [
            CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "x"}]),
            CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "y"}]),
        ]
        cinds = [CIND("R", ["a"], "S", ["c"])]
        result = check_joint_consistency(
            _schema(), cfds, cinds, nonempty_relation="R"
        )
        assert result.verdict == Verdict.INCONSISTENT

    def test_consistent_interaction(self):
        cfds = [
            CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "x"}]),
        ]
        cinds = [
            CIND(
                "R", ["a"], "S", ["c"],
                rhs_pattern_attrs=["d"], tableau=[{"d": "x"}],
            )
        ]
        result = check_joint_consistency(
            _schema(), cfds, cinds, nonempty_relation="R"
        )
        assert result.verdict == Verdict.CONSISTENT
        assert holds(result.witness, list(cfds) + list(cinds))

    def test_pattern_clash_with_copied_value(self):
        """The CIND wants S.d = 'x' but also copies R.b (= 'y') into S.d."""
        cfds = [CFD("R", ["a"], ["b"], [{"a": UNNAMED, "b": "y"}])]
        cinds = [
            CIND(
                "R", ["a", "b"], "S", ["c", "d"],
            ),
            CIND(
                "R", ["a"], "S", ["c"],
                rhs_pattern_attrs=["d"], tableau=[{"d": "x"}],
            ),
        ]
        # consistent: the two CINDs can be satisfied by two different S
        # tuples (one with d='y' copied, one with d='x')
        result = check_joint_consistency(
            _schema(), cfds, cinds, nonempty_relation="R", max_tuples=6
        )
        assert result.verdict == Verdict.CONSISTENT

    def test_unknown_on_tight_bounds(self):
        cfds = [
            CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "x"}]),
            CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "y"}]),
        ]
        cinds = [CIND("R", ["a"], "S", ["c"])]
        result = check_joint_consistency(
            _schema(), cfds, cinds, nonempty_relation="R", max_nodes=2
        )
        assert result.verdict in (Verdict.UNKNOWN, Verdict.INCONSISTENT)
        if result.verdict == Verdict.UNKNOWN:
            assert result.bound_hit
