"""CIND implication via the chase (Theorem 4.2)."""

import pytest

from repro.cind.implication import cind_implies, consistency_is_trivial, seed_realizable
from repro.cind.model import CIND
from repro.deps.ind import IND, ind_implies
from repro.errors import AnalysisBoundExceeded
from repro.paper import fig4_cinds, source_target_schema
from repro.relational.domains import STRING
from repro.relational.schema import DatabaseSchema, RelationSchema


def _three_relations():
    return DatabaseSchema(
        [
            RelationSchema("R", [("a", STRING), ("b", STRING)]),
            RelationSchema("S", [("c", STRING), ("d", STRING)]),
            RelationSchema("T", [("e", STRING), ("f", STRING)]),
        ]
    )


class TestBasics:
    def test_consistency_is_trivial(self):
        """Theorem 4.1: CIND consistency is O(1) — always yes."""
        assert consistency_is_trivial() is True

    def test_self_implication(self):
        schema = source_target_schema()
        phi4 = fig4_cinds()["phi4"]
        assert cind_implies(schema, [phi4], phi4)

    def test_unrelated_not_implied(self):
        schema = source_target_schema()
        cinds = fig4_cinds()
        assert not cind_implies(schema, [cinds["phi4"]], cinds["phi6"])

    def test_transitivity(self):
        schema = _three_relations()
        sigma = [
            CIND("R", ["a"], "S", ["c"]),
            CIND("S", ["c"], "T", ["e"]),
        ]
        target = CIND("R", ["a"], "T", ["e"])
        assert cind_implies(schema, sigma, target)

    def test_pattern_weakening_implied(self):
        schema = _three_relations()
        # unconditional R[a] ⊆ S[c] implies its restriction to b = 'book'
        general = CIND("R", ["a"], "S", ["c"])
        restricted = CIND(
            "R", ["a"], "S", ["c"],
            lhs_pattern_attrs=["b"], tableau=[{"b": "book"}],
        )
        assert cind_implies(schema, [general], restricted)
        assert not cind_implies(schema, [restricted], general)

    def test_rhs_pattern_strengthening_not_implied(self):
        schema = _three_relations()
        general = CIND("R", ["a"], "S", ["c"])
        stronger = CIND(
            "R", ["a"], "S", ["c"],
            rhs_pattern_attrs=["d"], tableau=[{"d": "audio"}],
        )
        assert cind_implies(schema, [stronger], general)
        assert not cind_implies(schema, [general], stronger)

    def test_pattern_chained_transitivity(self):
        schema = _three_relations()
        sigma = [
            CIND(
                "R", ["a"], "S", ["c"],
                lhs_pattern_attrs=["b"],
                rhs_pattern_attrs=["d"],
                tableau=[{"b": "x", "d": "y"}],
            ),
            CIND(
                "S", ["c"], "T", ["e"],
                lhs_pattern_attrs=["d"],
                tableau=[{"d": "y"}],
            ),
        ]
        target = CIND(
            "R", ["a"], "T", ["e"],
            lhs_pattern_attrs=["b"], tableau=[{"b": "x"}],
        )
        assert cind_implies(schema, sigma, target)

    def test_pattern_mismatch_blocks_transitivity(self):
        schema = _three_relations()
        sigma = [
            CIND(
                "R", ["a"], "S", ["c"],
                lhs_pattern_attrs=["b"],
                rhs_pattern_attrs=["d"],
                tableau=[{"b": "x", "d": "y"}],
            ),
            CIND(
                "S", ["c"], "T", ["e"],
                lhs_pattern_attrs=["d"],
                tableau=[{"d": "OTHER"}],
            ),
        ]
        target = CIND(
            "R", ["a"], "T", ["e"],
            lhs_pattern_attrs=["b"], tableau=[{"b": "x"}],
        )
        assert not cind_implies(schema, sigma, target)

    def test_cyclic_sigma_raises_bound(self):
        schema = _three_relations()
        sigma = [
            CIND("R", ["a"], "S", ["c"]),
            CIND("S", ["d"], "R", ["a"]),
        ]
        target = CIND("R", ["a"], "T", ["e"])
        with pytest.raises(AnalysisBoundExceeded):
            cind_implies(schema, sigma, target, max_steps=30)


class TestAgainstPlainINDs:
    """On empty-pattern CINDs the chase must agree with IND saturation."""

    def test_projection_case(self):
        schema = _three_relations()
        sigma_ind = [IND("R", ["a", "b"], "S", ["c", "d"])]
        target_ind = IND("R", ["a"], "S", ["c"])
        sigma_cind = [CIND("R", ["a", "b"], "S", ["c", "d"])]
        target_cind = CIND("R", ["a"], "S", ["c"])
        assert ind_implies(sigma_ind, target_ind) == cind_implies(
            schema, sigma_cind, target_cind
        )

    def test_negative_case(self):
        schema = _three_relations()
        assert not cind_implies(
            schema,
            [CIND("R", ["a"], "S", ["c"])],
            CIND("S", ["c"], "R", ["a"]),
        )

    def test_seed_realizable(self):
        schema = _three_relations()
        assert seed_realizable(schema, CIND("R", ["a"], "S", ["c"]))
