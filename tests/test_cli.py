"""CLI: detect / repair / discover over CSV files."""

import json

import pytest

from repro.cli import main
from repro.paper import fig1_instance, fig2_cfds
from repro.relational.csvio import dump_csv, load_csv
from repro.rules_json import rules_to_list, schema_to_dict


@pytest.fixture
def workspace(tmp_path):
    """Figure 1 data + Figure 2 rules on disk."""
    schema = fig1_instance().relation("customer").schema
    data_path = tmp_path / "customers.csv"
    dump_csv(fig1_instance().relation("customer"), data_path)
    schema_path = tmp_path / "schema.json"
    schema_path.write_text(json.dumps(schema_to_dict(schema)))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps(rules_to_list(list(fig2_cfds().values()))))
    return tmp_path, data_path, schema_path, rules_path, schema


class TestDetect:
    def test_dirty_data_nonzero_exit(self, workspace, capsys):
        _, data, schema_path, rules, _ = workspace
        code = main(
            ["detect", "--schema", str(schema_path), "--rules", str(rules), str(data)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "4 violations" in out

    def test_summary_only(self, workspace, capsys):
        _, data, schema_path, rules, _ = workspace
        main(
            [
                "detect", "--summary-only",
                "--schema", str(schema_path), "--rules", str(rules), str(data),
            ]
        )
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1


class TestDetectJson:
    def test_format_json_is_machine_readable(self, workspace, capsys):
        _, data, schema_path, rules, _ = workspace
        code = main(
            [
                "detect", "--format", "json",
                "--schema", str(schema_path), "--rules", str(rules), str(data),
            ]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["total"] == 4
        assert document["single_tuple"] == 3 and document["pairs"] == 1
        assert len(document["violations"]) == 4
        witness = document["violations"][0]["tuples"][0]
        assert witness["relation"] == "customer" and "values" in witness


class TestRepair:
    def test_repair_writes_clean_csv(self, workspace, capsys):
        tmp, data, schema_path, rules, schema = workspace
        out_path = tmp / "clean.csv"
        code = main(
            [
                "repair",
                "--schema", str(schema_path),
                "--rules", str(rules),
                "--output", str(out_path),
                str(data),
            ]
        )
        assert code == 0
        repaired = load_csv(schema, out_path)
        cities = {t["city"] for t in repaired}
        assert cities == {"EDI", "MH"}
        # re-detect on the repaired file: clean exit
        clean_code = main(
            [
                "detect", "--summary-only",
                "--schema", str(schema_path), "--rules", str(rules), str(out_path),
            ]
        )
        assert clean_code == 0


class TestDiscover:
    def test_discover_emits_rules_json(self, workspace, capsys):
        _, data, schema_path, _, _ = workspace
        code = main(
            [
                "discover",
                "--schema", str(schema_path),
                "--max-lhs", "1",
                "--min-support", "2",
                str(data),
            ]
        )
        assert code == 0
        documents = json.loads(capsys.readouterr().out)
        assert documents
        assert all(doc["type"] == "cfd" for doc in documents)
        assert all("support" in doc for doc in documents)


class TestStream:
    def test_stream_prints_one_line_per_batch(self, workspace, capsys):
        _, data, schema_path, rules, _ = workspace
        code = main(
            [
                "stream",
                "--schema", str(schema_path),
                "--rules", str(rules),
                "--batches", "4",
                "--batch-size", "3",
                "--seed", "1",
                "--verify",
                str(data),
            ]
        )
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 4
        assert all(line.startswith("batch ") for line in lines)
        assert "verified against full re-detection" in captured.err
        # exit code must mirror whether the final batch left violations live
        final_total = int(lines[-1].split(" total,")[0].rsplit(" ", 1)[-1])
        assert code == (1 if final_total else 0)

    def test_stream_format_json(self, workspace, capsys):
        _, data, schema_path, rules, _ = workspace
        code = main(
            [
                "stream", "--format", "json",
                "--schema", str(schema_path),
                "--rules", str(rules),
                "--batches", "4",
                "--batch-size", "3",
                "--seed", "1",
                "--verify",
                str(data),
            ]
        )
        document = json.loads(capsys.readouterr().out)
        assert len(document["batches"]) == 4
        assert document["verified"] is True
        assert all(
            {"batch", "edits", "added", "removed", "violations"} <= set(b)
            for b in document["batches"]
        )
        assert code == (1 if document["final_violations"] else 0)

    def test_stream_deterministic_given_seed(self, workspace, capsys):
        _, data, schema_path, rules, _ = workspace
        args = [
            "stream",
            "--schema", str(schema_path),
            "--rules", str(rules),
            "--batches", "3",
            "--batch-size", "5",
            "--seed", "42",
            str(data),
        ]
        def stable(output):
            # drop the per-batch timing, the only nondeterministic field
            return [line.rsplit(",", 1)[0] for line in output.strip().splitlines()]

        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert stable(first) == stable(second)
