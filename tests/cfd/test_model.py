"""CFD model: pattern matching, semantics on the paper's Figure 1/2."""

import pytest

from repro.cfd.model import CFD, UNNAMED, PatternTableau, PatternTuple, fd_as_cfd, matches
from repro.deps.fd import FD
from repro.errors import DependencyError
from repro.paper import customer_schema, fig1_instance, fig2_cfds
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


class TestMatchOperator:
    def test_constant_vs_constant(self):
        assert matches("a", "a")
        assert not matches("a", "b")

    def test_wildcard_matches_anything(self):
        assert matches("a", UNNAMED)
        assert matches(UNNAMED, "a")
        assert matches(UNNAMED, UNNAMED)

    def test_unnamed_is_singleton(self):
        from repro.cfd.model import _Unnamed

        assert _Unnamed() is UNNAMED


class TestPatternTuple:
    def test_projection_and_constants(self):
        tp = PatternTuple({"A": "a", "B": UNNAMED})
        assert tp["A"] == "a"
        assert tp.constants_on(["A", "B"]) == {"A": "a"}
        assert not tp.is_constant_on(["A", "B"])
        assert tp.is_constant_on(["A"])

    def test_unknown_attribute(self):
        with pytest.raises(DependencyError):
            PatternTuple({})["missing"]

    def test_equality(self):
        assert PatternTuple({"A": 1}) == PatternTuple({"A": 1})
        assert PatternTuple({"A": 1}) != PatternTuple({"A": 2})


class TestPatternTableau:
    def test_rows_normalized_with_wildcards(self):
        tab = PatternTableau(("A", "B"), [{"A": "a"}])
        assert tab.rows[0]["B"] is UNNAMED

    def test_extra_attribute_rejected(self):
        with pytest.raises(DependencyError):
            PatternTableau(("A",), [{"B": 1}])

    def test_empty_tableau_rejected(self):
        with pytest.raises(DependencyError):
            PatternTableau(("A",), [])

    def test_pretty_renders_wildcards(self):
        tab = PatternTableau(("A", "B"), [{"A": 44, "B": UNNAMED}])
        rendered = tab.pretty()
        assert "44" in rendered and "_" in rendered


class TestCFDSemantics:
    def _db(self, rows):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})

    def test_constant_pattern_single_tuple_violation(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "uk", "B": "x"}])
        db = self._db([("uk", "y")])
        violations = list(cfd.violations(db))
        assert len(violations) == 1
        assert len(violations[0].tuples) == 1

    def test_non_matching_tuple_exempt(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "uk", "B": "x"}])
        db = self._db([("us", "anything")])
        assert cfd.holds_on(db)

    def test_pair_violation_within_pattern(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "uk", "B": UNNAMED}])
        db = self._db([("uk", "x"), ("uk", "y")])
        violations = list(cfd.violations(db))
        assert any(len(v.tuples) == 2 for v in violations)

    def test_pairs_outside_pattern_ignored(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "uk", "B": UNNAMED}])
        db = self._db([("us", "x"), ("us", "y")])
        assert cfd.holds_on(db)

    def test_fd_as_cfd_equivalence(self):
        fd = FD("R", ["A"], ["B"])
        cfd = fd_as_cfd(fd)
        good = self._db([("a", "x"), ("b", "y")])
        bad = self._db([("a", "x"), ("a", "y")])
        assert cfd.holds_on(good) and fd.holds_on(good)
        assert not cfd.holds_on(bad) and not fd.holds_on(bad)

    def test_pattern_split(self):
        cfd = CFD(
            "R", ["A"], ["B"], [{"A": "u", "B": "x"}, {"A": "v", "B": "y"}]
        )
        rows = cfd.pattern_cfds()
        assert len(rows) == 2
        assert all(len(r.tableau) == 1 for r in rows)

    def test_constant_and_variable_classification(self):
        constant = CFD("R", ["A"], ["B"], [{"A": "u", "B": "x"}])
        variable = CFD("R", ["A"], ["B"], [{"A": "u", "B": UNNAMED}])
        assert constant.is_constant() and not constant.is_variable()
        assert variable.is_variable() and not variable.is_constant()

    def test_empty_rhs_rejected(self):
        with pytest.raises(DependencyError):
            CFD("R", ["A"], [], [{}])


class TestPaperFigure2:
    """The exact satisfaction pattern the paper states for D0."""

    def test_phi1_violated_by_t1_t2(self):
        db = fig1_instance()
        phi1 = fig2_cfds()["phi1"]
        violations = list(phi1.violations(db))
        assert len(violations) == 1
        streets = {t["street"] for _, t in violations[0].tuples}
        assert streets == {"Mayfield", "Crichton"}

    def test_phi2_single_tuple_violations(self):
        db = fig1_instance()
        phi2 = fig2_cfds()["phi2"]
        singles = [v for v in phi2.violations(db) if len(v.tuples) == 1]
        # t1 and t2 (city != EDI) and t3 (city != MH)
        assert len(singles) == 3

    def test_phi3_satisfied(self):
        assert fig2_cfds()["phi3"].holds_on(fig1_instance())

    def test_check_schema_accepts_figure(self):
        for cfd in fig2_cfds().values():
            cfd.check_schema(customer_schema())
