"""CFD implication (Theorem 4.2): exact two-tuple counterexample search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.implication import cfd_implies, find_counterexample, minimal_cover_cfds
from repro.cfd.model import CFD, UNNAMED, fd_as_cfd
from repro.deps.fd import FD, implies as fd_implies
from repro.paper import customer_schema, fig2_cfds
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema

ATTRS = ["A", "B", "C"]


def _schema():
    return RelationSchema("R", [(a, STRING) for a in ATTRS])


class TestBasicImplication:
    def test_self_implication(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "a", "B": UNNAMED}])
        assert cfd_implies(_schema(), [cfd], cfd)

    def test_unconditional_implies_conditional(self):
        # FD A → B implies the same FD restricted to A = 'a'
        general = CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": UNNAMED}])
        restricted = CFD("R", ["A"], ["B"], [{"A": "a", "B": UNNAMED}])
        assert cfd_implies(_schema(), [general], restricted)

    def test_conditional_does_not_imply_unconditional(self):
        general = CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": UNNAMED}])
        restricted = CFD("R", ["A"], ["B"], [{"A": "a", "B": UNNAMED}])
        assert not cfd_implies(_schema(), [restricted], general)

    def test_transitivity(self):
        ab = CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": UNNAMED}])
        bc = CFD("R", ["B"], ["C"], [{"B": UNNAMED, "C": UNNAMED}])
        ac = CFD("R", ["A"], ["C"], [{"A": UNNAMED, "C": UNNAMED}])
        assert cfd_implies(_schema(), [ab, bc], ac)

    def test_constant_strengthening(self):
        # (A='a' → B='b') implies (A='a' → B) with wildcard RHS
        strong = CFD("R", ["A"], ["B"], [{"A": "a", "B": "b"}])
        weak = CFD("R", ["A"], ["B"], [{"A": "a", "B": UNNAMED}])
        assert cfd_implies(_schema(), [strong], weak)
        assert not cfd_implies(_schema(), [weak], strong)

    def test_counterexample_is_genuine(self):
        sigma = [CFD("R", ["A"], ["B"], [{"A": "a", "B": UNNAMED}])]
        target = CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": UNNAMED}])
        counter = find_counterexample(_schema(), sigma, target)
        assert counter is not None
        db = DatabaseInstance(DatabaseSchema([_schema()]))
        for t in counter:
            db.relation("R").add(t)
        assert all(c.holds_on(db) for c in sigma)
        assert not target.holds_on(db)

    def test_inconsistent_sigma_implies_everything(self):
        sigma = [
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": "b1"}]),
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": "b2"}]),
        ]
        anything = CFD("R", ["C"], ["A"], [{"C": UNNAMED, "A": UNNAMED}])
        assert cfd_implies(_schema(), sigma, anything)


class TestAgainstFDImplication:
    """On all-wildcard CFDs, CFD implication must coincide with Armstrong."""

    @st.composite
    @staticmethod
    def fd_cases(draw):
        n = draw(st.integers(1, 3))
        sigma = [
            FD(
                "R",
                draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2)),
                [draw(st.sampled_from(ATTRS))],
            )
            for _ in range(n)
        ]
        target = FD(
            "R",
            draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2)),
            [draw(st.sampled_from(ATTRS))],
        )
        return sigma, target

    @given(fd_cases())
    @settings(max_examples=40, deadline=None)
    def test_agreement(self, case):
        sigma, target = case
        expected = fd_implies(sigma, target)
        got = cfd_implies(
            _schema(), [fd_as_cfd(f) for f in sigma], fd_as_cfd(target)
        )
        assert got == expected


class TestPaperCFDs:
    def test_phi2_rows_imply_weaker_city_rule(self):
        schema = customer_schema()
        phi2 = fig2_cfds()["phi2"]
        # the 44/131 row of phi2 forces city=EDI given CC,AC,phn;
        # so Σ={phi2} implies ([CC,AC,phn] → [city], (44,131,_||EDI))
        weaker = CFD(
            "customer",
            ["CC", "AC", "phn"],
            ["city"],
            [{"CC": 44, "AC": 131, "phn": UNNAMED, "city": "EDI"}],
        )
        assert cfd_implies(schema, [phi2], weaker)

    def test_phi1_does_not_imply_us_variant(self):
        schema = customer_schema()
        phi1 = fig2_cfds()["phi1"]
        us_variant = CFD(
            "customer",
            ["CC", "zip"],
            ["street"],
            [{"CC": 1, "zip": UNNAMED, "street": UNNAMED}],
        )
        assert not cfd_implies(schema, [phi1], us_variant)


class TestMinimalCover:
    def test_redundant_row_removed(self):
        schema = _schema()
        general = CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": UNNAMED}])
        redundant = CFD("R", ["A"], ["B"], [{"A": "a", "B": UNNAMED}])
        cover = minimal_cover_cfds(schema, [general, redundant])
        assert len(cover) == 1
        assert cover[0].tableau.rows[0]["A"] is UNNAMED

    def test_cover_equivalent(self):
        schema = _schema()
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": UNNAMED}]),
            CFD("R", ["B"], ["C"], [{"B": UNNAMED, "C": UNNAMED}]),
            CFD("R", ["A"], ["C"], [{"A": UNNAMED, "C": UNNAMED}]),  # implied
        ]
        cover = minimal_cover_cfds(schema, cfds)
        assert len(cover) == 2
        for original in cfds:
            assert cfd_implies(schema, cover, original)
