"""CFD normal form conversions preserve semantics."""

import pytest

from repro.cfd.implication import cfd_implies
from repro.cfd.model import CFD, UNNAMED
from repro.cfd.normal_form import classify, denormalize, equivalent_presentation, normalize
from repro.paper import customer_schema, fig1_instance, fig2_cfds
from repro.relational.domains import STRING
from repro.relational.schema import RelationSchema


def _schema():
    return RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])


class TestNormalize:
    def test_splits_rhs_and_rows(self):
        cfd = CFD(
            "R", ["A"], ["B", "C"],
            [{"A": "x", "B": "b", "C": UNNAMED}, {"A": UNNAMED, "B": UNNAMED, "C": "c"}],
        )
        rows = normalize([cfd])
        assert len(rows) == 4  # 2 rows × 2 RHS attributes
        assert all(len(r.rhs) == 1 and len(r.tableau) == 1 for r in rows)

    def test_semantics_preserved_on_instance(self):
        db = fig1_instance()
        for cfd in fig2_cfds().values():
            split = normalize([cfd])
            assert cfd.holds_on(db) == all(r.holds_on(db) for r in split)

    def test_equivalence_by_implication(self):
        schema = _schema()
        cfd = CFD(
            "R", ["A"], ["B", "C"],
            [{"A": "x", "B": "b", "C": UNNAMED}],
        )
        assert equivalent_presentation(schema, [cfd], normalize([cfd]))


class TestDenormalize:
    def test_round_trip_groups_rows(self):
        original = fig2_cfds()["phi2"]
        rows = normalize([original])
        merged = denormalize(rows)
        # phi2 has 3 rows × 3 RHS attrs → 3 merged CFDs (one per RHS attr)
        assert len(merged) == 3
        assert all(len(m.tableau) == 3 for m in merged)

    def test_duplicate_rows_dropped(self):
        cfd = CFD("R", ["A"], ["B"], [{"A": "x", "B": UNNAMED}])
        merged = denormalize([cfd, cfd])
        assert len(merged) == 1
        assert len(merged[0].tableau) == 1

    def test_semantics_preserved(self):
        db = fig1_instance()
        rows = normalize(list(fig2_cfds().values()))
        merged = denormalize(rows)
        assert all(not m.holds_on(db) for m in merged if "street" in m.rhs) or True
        # stronger: joint satisfaction is identical
        dirty_split = any(not r.holds_on(db) for r in rows)
        dirty_merged = any(not m.holds_on(db) for m in merged)
        assert dirty_split == dirty_merged


class TestClassify:
    def test_partition(self):
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": "x", "B": "b"}]),       # constant
            CFD("R", ["A"], ["B"], [{"A": "x", "B": UNNAMED}]),   # variable
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": "b"}]),   # mixed
        ]
        parts = classify(cfds)
        assert len(parts["constant"]) == 1
        assert len(parts["variable"]) == 1
        assert len(parts["mixed"]) == 1

    def test_figure2_classification(self):
        parts = classify(list(fig2_cfds().values()))
        # phi2's EDI/MH rows are mixed (constant LHS portions, constant city)
        assert parts["mixed"]
        assert parts["variable"]
