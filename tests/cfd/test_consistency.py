"""CFD consistency (Theorems 4.1/4.3): exactness on both regimes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.consistency import (
    attribute_constants,
    candidate_values,
    consistency_by_relation,
    find_witness_tuple,
    is_consistent,
)
from repro.cfd.model import CFD, UNNAMED
from repro.paper import example41_cfds, example41_schema
from repro.relational.domains import BOOL, EnumDomain, INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


def _schema(a_domain=STRING, b_domain=STRING):
    return RelationSchema("R", [("A", a_domain), ("B", b_domain)])


class TestExample41:
    def test_bool_domain_inconsistent(self):
        assert not is_consistent(example41_schema(True), example41_cfds(True))

    def test_infinite_domain_consistent(self):
        assert is_consistent(example41_schema(False), example41_cfds(False))

    def test_witness_satisfies(self):
        schema = example41_schema(False)
        cfds = example41_cfds(False)
        witness = find_witness_tuple(schema, cfds)
        db = DatabaseInstance(DatabaseSchema([schema]))
        db.relation("R").add(witness)
        assert all(cfd.holds_on(db) for cfd in cfds)


class TestInfiniteDomainPropagation:
    def test_empty_set_consistent(self):
        assert is_consistent(_schema(), [])

    def test_clashing_forced_constants(self):
        # tp with all-wildcard LHS forces B = b1 and B = b2: inconsistent
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": "b1"}]),
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": "b2"}]),
        ]
        assert not is_consistent(_schema(), cfds)

    def test_chained_forcing_consistent(self):
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": "b1"}]),
            CFD("R", ["B"], ["A"], [{"B": "b1", "A": "a1"}]),
        ]
        witness = find_witness_tuple(_schema(), cfds)
        assert witness is not None
        assert witness["B"] == "b1"
        assert witness["A"] == "a1"

    def test_chained_forcing_inconsistent(self):
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": "b1"}]),
            CFD("R", ["B"], ["A"], [{"B": "b1", "A": "a1"}]),
            CFD("R", ["A"], ["B"], [{"A": "a1", "B": "b2"}]),
        ]
        assert not is_consistent(_schema(), cfds)

    def test_constant_lhs_avoidable(self):
        # LHS constant patterns never fire on the fresh witness
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": "a1", "B": "b1"}]),
            CFD("R", ["A"], ["B"], [{"A": "a1", "B": "b2"}]),
        ]
        # conflicting only for tuples with A = a1; a fresh A avoids both
        assert is_consistent(_schema(), cfds)


class TestFiniteDomainSearch:
    def test_small_enum_exhaustion(self):
        domain = EnumDomain(["x", "y"])
        schema = _schema(a_domain=domain)
        # every A value forces a different B, and B's forced values feed
        # back incompatibly (mirrors Example 4.1 on a 2-value enum)
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": "x", "B": "b1"}, {"A": "y", "B": "b2"}]),
            CFD("R", ["B"], ["A"], [{"B": "b1", "A": "y"}, {"B": "b2", "A": "x"}]),
        ]
        assert not is_consistent(schema, cfds)

    def test_three_valued_enum_escapes(self):
        domain = EnumDomain(["x", "y", "z"])
        schema = _schema(a_domain=domain)
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": "x", "B": "b1"}, {"A": "y", "B": "b2"}]),
            CFD("R", ["B"], ["A"], [{"B": "b1", "A": "y"}, {"B": "b2", "A": "x"}]),
        ]
        witness = find_witness_tuple(schema, cfds)
        assert witness is not None
        assert witness["A"] == "z"


class TestHelpers:
    def test_attribute_constants(self):
        cfds = [CFD("R", ["A"], ["B"], [{"A": "a1", "B": "b1"}])]
        constants = attribute_constants(cfds)
        assert constants == {"A": {"a1"}, "B": {"b1"}}

    def test_candidate_values_include_fresh(self):
        schema = _schema()
        values = candidate_values(schema, "A", {"a1"}, fresh_count=2)
        assert "a1" in values
        assert len(values) == 3

    def test_candidate_values_finite_exhausted(self):
        schema = _schema(a_domain=BOOL)
        values = candidate_values(schema, "A", {True, False}, fresh_count=2)
        assert set(values) == {True, False}

    def test_by_relation(self):
        schema_r = _schema()
        schema_s = RelationSchema("S", [("A", STRING), ("B", STRING)])
        db_schema = DatabaseSchema([schema_r, schema_s])
        cfds = [
            CFD("R", ["A"], ["B"], [{"A": UNNAMED, "B": "b1"}]),
            CFD("S", ["A"], ["B"], [{"A": UNNAMED, "B": "b1"}]),
            CFD("S", ["A"], ["B"], [{"A": UNNAMED, "B": "b2"}]),
        ]
        result = consistency_by_relation(db_schema, cfds)
        assert result["R"] is not None
        assert result["S"] is None

    def test_mismatched_relation_rejected(self):
        with pytest.raises(ValueError):
            find_witness_tuple(
                _schema(), [CFD("S", ["A"], ["B"], [{"A": UNNAMED, "B": "b"}])]
            )


class TestWitnessProperty:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a1", "a2", None]),
                st.sampled_from(["b1", "b2", None]),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_witness_always_satisfies(self, rows):
        """Whenever a witness is returned it genuinely satisfies Σ."""
        schema = _schema()
        cfds = [
            CFD(
                "R",
                ["A"],
                ["B"],
                [
                    {
                        "A": a if a is not None else UNNAMED,
                        "B": b if b is not None else UNNAMED,
                    }
                ],
            )
            for a, b in rows
        ]
        witness = find_witness_tuple(schema, cfds)
        if witness is not None:
            db = DatabaseInstance(DatabaseSchema([schema]))
            db.relation("R").add(witness)
            assert all(cfd.holds_on(db) for cfd in cfds)
