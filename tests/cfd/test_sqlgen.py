"""Generated SQL is executable and agrees with the in-memory detector.

Runs the two-query detection of [36] against sqlite3 and cross-checks the
set of flagged tuples/groups with :mod:`repro.cfd.detect`.
"""

import sqlite3

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.cfd.sqlgen import pair_sql, single_tuple_sql, tableau_values_sql, violation_sql
from repro.paper import fig1_instance, fig2_cfds


@pytest.fixture
def connection():
    conn = sqlite3.connect(":memory:")
    conn.execute(
        "CREATE TABLE customer (CC INT, AC INT, phn INT, name TEXT, "
        "street TEXT, city TEXT, zip TEXT)"
    )
    for t in fig1_instance().relation("customer"):
        conn.execute("INSERT INTO customer VALUES (?,?,?,?,?,?,?)", t.values())
    yield conn
    conn.close()


class TestSQLText:
    def test_tableau_values_encode_wildcards_as_null(self):
        phi1 = fig2_cfds()["phi1"]
        sql = tableau_values_sql(phi1)
        assert "NULL" in sql and "44" in sql

    def test_both_queries_generated(self):
        q1, q2 = violation_sql(fig2_cfds()["phi2"])
        assert "SELECT" in q1 and "GROUP BY" in q2

    def test_string_constants_escaped(self):
        cfd = CFD("customer", ["city"], ["street"], [{"city": "O'Hare", "street": UNNAMED}])
        sql = pair_sql(cfd)
        assert "O''Hare" in sql


class TestAgainstSqlite:
    def test_phi2_single_tuple_violations(self, connection):
        phi2 = fig2_cfds()["phi2"]
        rows = connection.execute(single_tuple_sql(phi2)).fetchall()
        # t1, t2 (city != EDI) and t3 (city != MH) — but each may join
        # multiple pattern rows; count distinct phn values
        phones = {row[2] for row in rows}
        assert phones == {1234567, 3456789}
        assert len(rows) >= 3

    def test_phi1_pair_violations(self, connection):
        phi1 = fig2_cfds()["phi1"]
        groups = connection.execute(pair_sql(phi1)).fetchall()
        assert len(groups) == 1
        assert groups[0] == (44, "EH4 8LE")

    def test_phi3_clean(self, connection):
        phi3 = fig2_cfds()["phi3"]
        q1, q2 = violation_sql(phi3)
        assert connection.execute(q1).fetchall() == []
        assert connection.execute(q2).fetchall() == []

    def test_agreement_with_memory_detector(self, connection):
        for cfd in fig2_cfds().values():
            q1, q2 = violation_sql(cfd)
            sql_dirty = bool(connection.execute(q1).fetchall()) or bool(
                connection.execute(q2).fetchall()
            )
            memory_dirty = not cfd.holds_on(fig1_instance())
            assert sql_dirty == memory_dirty
