"""CFD discovery (profiling)."""

import pytest

from repro.cfd.discovery import discover_cfds
from repro.cfd.model import UNNAMED
from repro.relational.domains import INT, STRING
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.workloads.customer import CustomerConfig, generate_customers


@pytest.fixture
def uk_us_instance():
    """zip determines street in the UK rows only."""
    schema = RelationSchema(
        "cust", [("CC", INT), ("zip", STRING), ("street", STRING)]
    )
    rows = [
        (44, "z1", "s1"), (44, "z1", "s1"), (44, "z2", "s2"),
        (1, "z9", "a"), (1, "z9", "b"), (1, "z8", "c"),
    ]
    return RelationInstance(schema, rows)


class TestDiscovery:
    def test_variable_cfd_found(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        inst = RelationInstance(schema, [("a", "x"), ("b", "y"), ("c", "x")])
        found = discover_cfds(inst, max_lhs=1)
        variable = [d for d in found if d.kind == "variable"]
        assert any(
            d.cfd.lhs == ("A",) and d.cfd.rhs == ("B",) for d in variable
        )

    def test_conditioned_cfd_found(self, uk_us_instance):
        found = discover_cfds(uk_us_instance, max_lhs=2, min_support=2)
        conditioned = [d for d in found if d.kind == "conditioned"]
        # zip → street holds conditionally on CC = 44 but not globally
        uk_rules = [
            d
            for d in conditioned
            if d.cfd.lhs == ("CC", "zip")
            and d.cfd.rhs == ("street",)
            and d.cfd.tableau.rows[0]["CC"] == 44
        ]
        assert uk_rules

    def test_global_fd_not_reported_when_violated(self, uk_us_instance):
        found = discover_cfds(uk_us_instance, max_lhs=2, min_support=2)
        assert not any(
            d.kind == "variable"
            and set(d.cfd.lhs) == {"CC", "zip"}
            and d.cfd.rhs == ("street",)
            for d in found
        )

    def test_constant_rules_have_support(self, uk_us_instance):
        found = discover_cfds(uk_us_instance, max_lhs=1, min_support=2)
        constants = [d for d in found if d.kind == "constant"]
        assert all(d.support >= 2 for d in constants)

    def test_discovered_rules_hold_on_input(self, uk_us_instance):
        from repro.relational.instance import DatabaseInstance
        from repro.relational.schema import DatabaseSchema

        db = DatabaseInstance(
            DatabaseSchema([uk_us_instance.schema]),
            {"cust": uk_us_instance.tuples()},
        )
        for discovered in discover_cfds(uk_us_instance, max_lhs=2, min_support=2):
            assert discovered.cfd.holds_on(db), discovered

    def test_rhs_restriction(self, uk_us_instance):
        found = discover_cfds(
            uk_us_instance, max_lhs=2, min_support=2, rhs_attributes=["street"]
        )
        assert all(d.cfd.rhs == ("street",) for d in found)

    def test_rediscovers_workload_rules(self):
        workload = generate_customers(CustomerConfig(n_tuples=150, error_rate=0.0))
        instance = workload.clean_db.relation("customer")
        found = discover_cfds(
            instance, max_lhs=2, min_support=5, rhs_attributes=["city"]
        )
        # the generator's area codes are globally unique, so the minimal
        # discovered rule is AC → city (it subsumes (CC, AC) → city, which
        # is correctly pruned as a superset)
        assert any(
            d.kind == "variable" and set(d.cfd.lhs) <= {"CC", "AC"}
            for d in found
        )
