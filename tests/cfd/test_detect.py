"""Batch detection reports."""

from repro.cfd.detect import DetectionReport, detect_violations, violating_tuples
from repro.paper import fig1_fds, fig1_instance, fig2_cfds


class TestDetectionReport:
    def test_fds_see_nothing_on_d0(self):
        report = detect_violations(fig1_instance(), fig1_fds())
        assert report.is_clean()
        assert report.total == 0

    def test_cfds_see_everything_on_d0(self):
        """The paper: "none of the tuples in D0 is error-free"."""
        report = detect_violations(fig1_instance(), fig2_cfds().values())
        assert not report.is_clean()
        assert len(report.violating_tuples()) == 3  # all of t1, t2, t3

    def test_split_by_kind(self):
        report = detect_violations(fig1_instance(), fig2_cfds().values())
        assert len(report.single_tuple()) == 3  # city constants
        assert len(report.pairs()) == 1  # phi1 on t1, t2

    def test_by_dependency(self):
        cfds = fig2_cfds()
        report = detect_violations(fig1_instance(), cfds.values())
        per_dep = report.by_dependency()
        assert len(per_dep[cfds["phi1"]]) == 1
        assert len(per_dep[cfds["phi2"]]) == 3
        assert cfds["phi3"] not in per_dep

    def test_summary_is_informative(self):
        report = detect_violations(fig1_instance(), fig2_cfds().values())
        text = report.summary()
        assert "4 violations" in text
        assert "phi1" in text

    def test_violating_tuples_helper(self):
        cells = violating_tuples(fig1_instance(), fig2_cfds().values())
        assert all(rel == "customer" for rel, _ in cells)

    def test_empty_report(self):
        report = DetectionReport([])
        assert report.is_clean()
        assert report.violating_tuples() == set()
