"""eCFDs (§2.3, Theorem 4.4): set/negated-set patterns, NY-state example."""

import pytest

from repro.cfd.ecfd import ANY, ECFD, SetPattern, ecfd_implies, ecfd_is_consistent
from repro.errors import DependencyError
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


def _schema():
    return RelationSchema("NY", [("CT", STRING), ("AC", INT)])


def _db(rows):
    return DatabaseInstance(DatabaseSchema([_schema()]), {"NY": rows})


NYC_CODES = {212, 718, 646, 347, 917}


def ecfd1():
    """CT ∉ {NYC, LI} → AC (the FD holds off the two listed cities)."""
    return ECFD(
        "NY", ["CT"], ["AC"],
        {"CT": SetPattern({"NYC", "LI"}, negated=True)},
        name="ecfd1",
    )


def ecfd2():
    """CT ∈ {NYC} → AC ∈ {212, 718, 646, 347, 917}."""
    return ECFD(
        "NY", ["CT"], ["AC"],
        {"CT": SetPattern({"NYC"}), "AC": SetPattern(NYC_CODES)},
        name="ecfd2",
    )


class TestSetPattern:
    def test_positive(self):
        assert SetPattern({1, 2}).matches(1)
        assert not SetPattern({1, 2}).matches(3)

    def test_negated(self):
        assert SetPattern({1, 2}, negated=True).matches(3)
        assert not SetPattern({1, 2}, negated=True).matches(1)

    def test_empty_rejected(self):
        with pytest.raises(DependencyError):
            SetPattern([])


class TestPaperExamples:
    def test_ecfd1_satisfied_off_list(self):
        db = _db([("Albany", 518), ("Buffalo", 716)])
        assert ecfd1().holds_on(db)

    def test_ecfd1_nyc_exempt_from_fd(self):
        # NYC has many area codes; ecfd1 does not constrain it
        db = _db([("NYC", 212), ("NYC", 718)])
        assert ecfd1().holds_on(db)

    def test_ecfd1_violated_by_other_city(self):
        db = _db([("Albany", 518), ("Albany", 212)])
        violations = list(ecfd1().violations(db))
        assert len(violations) == 1
        assert len(violations[0].tuples) == 2

    def test_ecfd2_constrains_nyc_codes(self):
        assert ecfd2().holds_on(_db([("NYC", 212)]))
        bad = _db([("NYC", 518)])
        violations = list(ecfd2().violations(bad))
        assert len(violations) == 1
        assert len(violations[0].tuples) == 1

    def test_ecfd2_ignores_other_cities(self):
        assert ecfd2().holds_on(_db([("Albany", 518)]))


class TestConsistency:
    def test_paper_pair_consistent(self):
        assert ecfd_is_consistent(_schema(), [ecfd1(), ecfd2()])

    def test_empty_set_consistent(self):
        assert ecfd_is_consistent(_schema(), [])

    def test_forced_membership_clash(self):
        # every tuple must have AC ∈ {1} and AC ∉ {1}: inconsistent
        e1 = ECFD("NY", ["CT"], ["AC"], {"AC": SetPattern({1})})
        e2 = ECFD("NY", ["CT"], ["AC"], {"AC": SetPattern({1}, negated=True)})
        assert not ecfd_is_consistent(_schema(), [e1, e2])

    def test_finiteness_via_sets_no_finite_domain_needed(self):
        """Theorem 4.4: eCFDs can force finite behaviour on infinite domains."""
        # CT forced into {a, b}; CT = a forces AC ∈ {1}; CT = b forces
        # AC ∈ {2}; and another rule forces AC ∉ {1, 2}: inconsistent,
        # although every attribute has an infinite domain.
        e_a = ECFD("NY", ["CT"], ["AC"], {"CT": SetPattern({"a"}), "AC": SetPattern({1})})
        e_b = ECFD("NY", ["CT"], ["AC"], {"CT": SetPattern({"b"}), "AC": SetPattern({2})})
        e_ct = ECFD("NY", ["AC"], ["CT"], {"CT": SetPattern({"a", "b"})})
        e_not = ECFD("NY", ["CT"], ["AC"], {"AC": SetPattern({1, 2}, negated=True)})
        assert not ecfd_is_consistent(_schema(), [e_a, e_b, e_ct, e_not])


class TestImplication:
    def test_self_implication(self):
        assert ecfd_implies(_schema(), [ecfd1()], ecfd1())

    def test_superset_weakening(self):
        strong = ECFD("NY", ["CT"], ["AC"], {"CT": SetPattern({"NYC"}), "AC": SetPattern({212})})
        weak = ECFD("NY", ["CT"], ["AC"], {"CT": SetPattern({"NYC"}), "AC": SetPattern(NYC_CODES)})
        assert ecfd_implies(_schema(), [strong], weak)
        assert not ecfd_implies(_schema(), [weak], strong)

    def test_narrower_lhs_implied(self):
        broad = ecfd1()  # CT ∉ {NYC, LI} → AC
        narrow = ECFD(
            "NY", ["CT"], ["AC"],
            {"CT": SetPattern({"NYC", "LI", "Albany"}, negated=True)},
        )
        assert ecfd_implies(_schema(), [broad], narrow)
        assert not ecfd_implies(_schema(), [narrow], broad)
