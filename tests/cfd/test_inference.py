"""CFD inference rules: soundness against the semantic decision procedure
(Theorem 4.6's finite axiomatizability, operationally)."""

import pytest

from repro.cfd.implication import cfd_implies
from repro.cfd.inference import (
    augmentation,
    derive_cfd,
    finite_domain_case,
    instantiation,
    reflexivity,
    rhs_weakening,
    transitivity,
)
from repro.cfd.model import CFD, UNNAMED
from repro.errors import DependencyError
from repro.relational.domains import BOOL, STRING
from repro.relational.schema import RelationSchema


def _schema():
    return RelationSchema(
        "R", [("A", STRING), ("B", STRING), ("C", STRING), ("F", BOOL)]
    )


def _cfd(lhs, rhs, row):
    return CFD("R", lhs, rhs, [row])


class TestRuleSoundness:
    def test_reflexivity(self):
        cfd = reflexivity("R", ["A", "B"], "A")
        assert cfd_implies(_schema(), [], cfd)

    def test_augmentation(self):
        base = _cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})
        augmented = augmentation(base, "C")
        assert cfd_implies(_schema(), [base], augmented)

    def test_augmentation_idempotent_on_existing(self):
        base = _cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})
        assert augmentation(base, "A") == base

    def test_instantiation(self):
        base = _cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})
        special = instantiation(base, "A", "a1")
        assert cfd_implies(_schema(), [base], special)
        assert not cfd_implies(_schema(), [special], base)

    def test_instantiation_requires_wildcard(self):
        base = _cfd(["A"], ["B"], {"A": "a1", "B": UNNAMED})
        with pytest.raises(DependencyError):
            instantiation(base, "A", "a2")

    def test_rhs_weakening(self):
        base = _cfd(["A"], ["B"], {"A": "a1", "B": "b1"})
        weak = rhs_weakening(base, "B")
        assert cfd_implies(_schema(), [base], weak)

    def test_transitivity_sound(self):
        ab = _cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})
        bc = _cfd(["B"], ["C"], {"B": UNNAMED, "C": UNNAMED})
        chained = transitivity(ab, bc)
        assert chained is not None
        assert cfd_implies(_schema(), [ab, bc], chained)

    def test_transitivity_with_constants_sound(self):
        ab = _cfd(["A"], ["B"], {"A": "a1", "B": "b1"})
        bc = _cfd(["B"], ["C"], {"B": "b1", "C": "c1"})
        chained = transitivity(ab, bc)
        assert chained is not None
        assert cfd_implies(_schema(), [ab, bc], chained)

    def test_transitivity_clash_refused(self):
        ab = _cfd(["A"], ["B"], {"A": UNNAMED, "B": "b1"})
        bc = _cfd(["B"], ["C"], {"B": "b2", "C": "c1"})
        assert transitivity(ab, bc) is None

    def test_transitivity_unguaranteed_constant_refused(self):
        # first only guarantees B = '_' but second demands B = 'b1'
        ab = _cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})
        bc = _cfd(["B"], ["C"], {"B": "b1", "C": "c1"})
        result = transitivity(ab, bc)
        if result is not None:
            assert cfd_implies(_schema(), [ab, bc], result)

    def test_finite_domain_case(self):
        schema = _schema()
        rows = [
            _cfd(["F", "A"], ["B"], {"F": True, "A": UNNAMED, "B": UNNAMED}),
            _cfd(["F", "A"], ["B"], {"F": False, "A": UNNAMED, "B": UNNAMED}),
        ]
        merged = finite_domain_case(schema, rows, "F")
        assert merged is not None
        assert merged.tableau.rows[0]["F"] is UNNAMED
        assert cfd_implies(schema, rows, merged)

    def test_finite_domain_case_incomplete_coverage(self):
        schema = _schema()
        rows = [_cfd(["F", "A"], ["B"], {"F": True, "A": UNNAMED, "B": UNNAMED})]
        assert finite_domain_case(schema, rows, "F") is None

    def test_finite_domain_case_infinite_attribute(self):
        schema = _schema()
        rows = [_cfd(["A"], ["B"], {"A": "x", "B": UNNAMED})]
        assert finite_domain_case(schema, rows, "A") is None


class TestDerivationEngine:
    def test_derives_transitivity(self):
        sigma = [
            _cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED}),
            _cfd(["B"], ["C"], {"B": UNNAMED, "C": UNNAMED}),
        ]
        target = _cfd(["A"], ["C"], {"A": UNNAMED, "C": UNNAMED})
        derivation = derive_cfd(_schema(), sigma, target)
        assert derivation is not None

    def test_derives_instantiated_target(self):
        sigma = [_cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})]
        target = _cfd(["A"], ["B"], {"A": "a1", "B": UNNAMED})
        assert derive_cfd(_schema(), sigma, target) is not None

    def test_derivation_steps_all_sound(self):
        sigma = [
            _cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED}),
            _cfd(["B"], ["C"], {"B": UNNAMED, "C": UNNAMED}),
        ]
        target = _cfd(["A"], ["C"], {"A": UNNAMED, "C": UNNAMED})
        derivation = derive_cfd(_schema(), sigma, target)
        for step in derivation:
            assert cfd_implies(_schema(), sigma, step.cfd), step

    def test_returns_none_when_underivable(self):
        sigma = [_cfd(["A"], ["B"], {"A": UNNAMED, "B": UNNAMED})]
        target = _cfd(["B"], ["A"], {"B": UNNAMED, "A": UNNAMED})
        assert derive_cfd(_schema(), sigma, target, max_steps=200) is None
