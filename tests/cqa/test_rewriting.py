"""PTIME rewriting vs exhaustive repair enumeration — the Theorem 5.2
tractable cases, validated against ground truth on random instances."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cqa.certain import certain_answers
from repro.cqa.rewriting import certain_sp, certain_spj
from repro.deps.fd import FD
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import eq
from repro.relational.query import Base, Project, Select
from repro.relational.schema import DatabaseSchema, RelationSchema


def _db(rows):
    schema = RelationSchema("R", [("K", STRING), ("V", STRING), ("W", STRING)])
    return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})


class TestSelectProject:
    def test_basic(self):
        db = _db([("k1", "x", "p"), ("k1", "y", "p"), ("k2", "z", "q")])
        answers = certain_sp(db, "R", key=["K"], projection=["V"])
        assert answers == {("z",)}

    def test_with_condition(self):
        db = _db([("k1", "x", "p"), ("k2", "x", "q")])
        answers = certain_sp(
            db, "R", key=["K"], projection=["K"], condition=eq("@W", "p")
        )
        assert answers == {("k1",)}

    def test_condition_must_hold_in_every_repair(self):
        # group k1: one tuple passes the filter, one does not ⟹ not certain
        db = _db([("k1", "x", "p"), ("k1", "x", "q")])
        answers = certain_sp(
            db, "R", key=["K"], projection=["K"], condition=eq("@W", "p")
        )
        assert answers == set()

    rows_strategy = st.lists(
        st.tuples(
            st.sampled_from(["k1", "k2", "k3"]),
            st.sampled_from(["x", "y"]),
            st.sampled_from(["p", "q"]),
        ),
        min_size=1,
        max_size=7,
    )

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_enumeration(self, rows):
        db = _db(rows)
        fd = FD("R", ["K"], ["V", "W"])  # K is the primary key
        rewriting = certain_sp(db, "R", key=["K"], projection=["V"])
        reference = certain_answers(db, [fd], Project(Base("R"), ["V"]))
        assert rewriting == reference

    @given(rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_enumeration_under_selection(self, rows):
        db = _db(rows)
        fd = FD("R", ["K"], ["V", "W"])
        rewriting = certain_sp(
            db, "R", key=["K"], projection=["V"], condition=eq("@W", "p")
        )
        reference = certain_answers(
            db, [fd], Project(Select(Base("R"), eq("@W", "p")), ["V"])
        )
        assert rewriting == reference


class TestSelectProjectJoin:
    def _two_rel_db(self, r_rows, s_rows):
        schema = DatabaseSchema(
            [
                RelationSchema("R1", [("K", STRING), ("FK", STRING), ("V", STRING)]),
                RelationSchema("R2", [("K2", STRING), ("W", STRING)]),
            ]
        )
        return DatabaseInstance(schema, {"R1": r_rows, "R2": s_rows})

    def test_join_must_cover_right_key(self):
        db = self._two_rel_db([], [])
        with pytest.raises(ValueError):
            certain_spj(
                db, "R1", ["K"], "R2", ["K2"],
                join=[("V", "W")],  # W is not R2's key
                projection=[("L", "V")],
            )

    def test_simple_certain_join(self):
        db = self._two_rel_db(
            [("a", "f1", "v1")],
            [("f1", "w1")],
        )
        answers = certain_spj(
            db, "R1", ["K"], "R2", ["K2"],
            join=[("FK", "K2")],
            projection=[("L", "V"), ("R", "W")],
        )
        assert answers == {("v1", "w1")}

    def test_right_side_conflict_blocks_certainty(self):
        db = self._two_rel_db(
            [("a", "f1", "v1")],
            [("f1", "w1"), ("f1", "w2")],  # key conflict on R2
        )
        answers = certain_spj(
            db, "R1", ["K"], "R2", ["K2"],
            join=[("FK", "K2")],
            projection=[("L", "V"), ("R", "W")],
        )
        assert answers == set()

    def test_dangling_foreign_key_blocks_group(self):
        db = self._two_rel_db(
            [("a", "f1", "v1"), ("a", "f9", "v1")],  # f9 has no partner
            [("f1", "w1")],
        )
        answers = certain_spj(
            db, "R1", ["K"], "R2", ["K2"],
            join=[("FK", "K2")],
            projection=[("L", "V")],
        )
        assert answers == set()

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b"]),
                st.sampled_from(["f1", "f2"]),
                st.sampled_from(["v1", "v2"]),
            ),
            min_size=1,
            max_size=5,
        ),
        st.lists(
            st.tuples(st.sampled_from(["f1", "f2"]), st.sampled_from(["w1", "w2"])),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_join_agrees_with_enumeration(self, r_rows, s_rows):
        db = self._two_rel_db(r_rows, s_rows)
        fds = [FD("R1", ["K"], ["FK", "V"]), FD("R2", ["K2"], ["W"])]

        def join_query(d):
            from repro.relational import algebra

            joined = algebra.natural_join(
                algebra.rename(d.relation("R1"), {"FK": "K2"}),
                d.relation("R2"),
            )
            return algebra.project(joined, ["V", "W"])

        reference = certain_answers(db, fds, join_query)
        rewriting = certain_spj(
            db, "R1", ["K"], "R2", ["K2"],
            join=[("FK", "K2")],
            projection=[("L", "V"), ("R", "W")],
        )
        assert rewriting == reference
