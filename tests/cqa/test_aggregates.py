"""Range-consistent aggregate answers vs repair enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cqa.aggregates import (
    AggregateRange,
    range_count,
    range_max,
    range_min,
    range_sum,
)
from repro.deps.fd import FD
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.xrepair import all_x_repairs


def _db(rows):
    schema = RelationSchema("R", [("K", STRING), ("V", INT)])
    return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})


def _enumerated_range(db, aggregate, predicate=None):
    predicate = predicate or (lambda t: True)
    fd = FD("R", ["K"], ["V"])
    values = []
    for repair in all_x_repairs(db, [fd]):
        selected = [t["V"] for t in repair.relation("R") if predicate(t)]
        values.append(aggregate(selected))
    return min(values), max(values)


class TestSum:
    def test_simple_range(self):
        db = _db([("a", 1), ("a", 5), ("b", 10)])
        assert range_sum(db, "R", ["K"], "V") == AggregateRange(11, 15)

    def test_consistent_when_no_conflict(self):
        db = _db([("a", 1), ("b", 2)])
        result = range_sum(db, "R", ["K"], "V")
        assert result.is_consistent
        assert result.glb == 3

    def test_with_predicate(self):
        db = _db([("a", 1), ("a", 100), ("b", 7)])
        result = range_sum(db, "R", ["K"], "V", predicate=lambda t: t["V"] < 50)
        # group a: contributes 1 or 0 (the 100 fails the filter)
        assert result == AggregateRange(7 + 0, 7 + 1)

    rows = st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(-5, 10)),
        min_size=1,
        max_size=7,
    )

    @given(rows)
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_enumeration(self, rows):
        db = _db(rows)
        got = range_sum(db, "R", ["K"], "V")
        expected = _enumerated_range(db, sum)
        assert (got.glb, got.lub) == expected

    @given(rows)
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_enumeration_under_filter(self, rows):
        predicate = lambda t: t["V"] >= 0
        db = _db(rows)
        got = range_sum(db, "R", ["K"], "V", predicate=predicate)
        expected = _enumerated_range(
            db, lambda vs: sum(vs), predicate=predicate
        )
        assert (got.glb, got.lub) == expected


class TestCount:
    def test_count_constant_without_filter(self):
        db = _db([("a", 1), ("a", 5), ("b", 10)])
        result = range_count(db, "R", ["K"])
        assert result.is_consistent
        assert result.glb == 2  # one tuple per key group in every repair

    def test_count_with_filter(self):
        db = _db([("a", 1), ("a", 100), ("b", 7)])
        result = range_count(db, "R", ["K"], predicate=lambda t: t["V"] < 50)
        assert result == AggregateRange(1, 2)

    @given(TestSum.rows)
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_enumeration(self, rows):
        predicate = lambda t: t["V"] % 2 == 0
        db = _db(rows)
        got = range_count(db, "R", ["K"], predicate=predicate)
        expected = _enumerated_range(db, len, predicate=predicate)
        assert (got.glb, got.lub) == expected


class TestMinMax:
    def test_max_range(self):
        db = _db([("a", 1), ("a", 5), ("b", 3)])
        assert range_max(db, "R", ["K"], "V") == AggregateRange(3, 5)

    def test_min_range(self):
        db = _db([("a", 1), ("a", 5), ("b", 3)])
        assert range_min(db, "R", ["K"], "V") == AggregateRange(1, 3)

    def test_empty_after_filter(self):
        db = _db([("a", 1)])
        result = range_max(db, "R", ["K"], "V", predicate=lambda t: t["V"] > 99)
        assert result == AggregateRange(None, None)

    @given(TestSum.rows)
    @settings(max_examples=60, deadline=None)
    def test_max_agrees_with_enumeration(self, rows):
        db = _db(rows)
        got = range_max(db, "R", ["K"], "V")
        expected = _enumerated_range(db, max)
        assert (got.glb, got.lub) == expected

    @given(TestSum.rows)
    @settings(max_examples=60, deadline=None)
    def test_min_agrees_with_enumeration(self, rows):
        db = _db(rows)
        got = range_min(db, "R", ["K"], "V")
        expected = _enumerated_range(db, min)
        assert (got.glb, got.lub) == expected
