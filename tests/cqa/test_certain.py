"""Certain answers via repair enumeration (the reference semantics)."""

import pytest

from repro.cqa.certain import certain_answers, possible_answers
from repro.deps.fd import FD
from repro.paper import example51_instance, example51_key
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import eq
from repro.relational.query import Base, Project, Select
from repro.relational.schema import DatabaseSchema, RelationSchema


def _db(rows):
    schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
    return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})


class TestCertainAnswers:
    def test_conflicting_values_not_certain(self):
        db = _db([("a", "x"), ("a", "y")])
        query = Project(Base("R"), ["B"])
        answers = certain_answers(db, [FD("R", ["A"], ["B"])], query)
        assert answers == set()  # each repair keeps a different B

    def test_key_attribute_certain(self):
        db = _db([("a", "x"), ("a", "y")])
        query = Project(Base("R"), ["A"])
        answers = certain_answers(db, [FD("R", ["A"], ["B"])], query)
        assert answers == {("a",)}  # 'a' survives in every repair

    def test_conflict_free_tuples_certain(self):
        db = _db([("a", "x"), ("a", "y"), ("b", "z")])
        query = Project(Base("R"), ["B"])
        answers = certain_answers(db, [FD("R", ["A"], ["B"])], query)
        assert answers == {("z",)}

    def test_selection_query(self):
        db = _db([("a", "x"), ("a", "y"), ("b", "x")])
        query = Project(Select(Base("R"), eq("@B", "x")), ["A"])
        answers = certain_answers(db, [FD("R", ["A"], ["B"])], query)
        assert answers == {("b",)}

    def test_callable_query(self):
        db = _db([("a", "x"), ("b", "y")])
        answers = certain_answers(
            db, [FD("R", ["A"], ["B"])], lambda d: d.relation("R")
        )
        assert answers == {("a", "x"), ("b", "y")}

    def test_clean_database_query_unchanged(self):
        db = _db([("a", "x"), ("b", "y")])
        query = Project(Base("R"), ["B"])
        answers = certain_answers(db, [FD("R", ["A"], ["B"])], query)
        assert answers == {("x",), ("y",)}


class TestPossibleAnswers:
    def test_union_of_repairs(self):
        db = _db([("a", "x"), ("a", "y")])
        query = Project(Base("R"), ["B"])
        fd = FD("R", ["A"], ["B"])
        assert possible_answers(db, [fd], query) == {("x",), ("y",)}

    def test_certain_subset_of_possible(self):
        db = example51_instance(3)
        query = Project(Base("R"), ["A"])
        fd = example51_key()
        certain = certain_answers(db, [fd], query)
        possible = possible_answers(db, [fd], query)
        assert certain <= possible
