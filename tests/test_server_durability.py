"""Crash-safe session durability: WAL + snapshot recovery for ``serve``.

The acceptance bar is the ISSUE's: kill the server at *any* WAL byte
boundary — including mid-record — restart it on the same ``--state-dir``,
and every session (resident or evicted) must answer ``detect``
byte-identically to an uninterrupted twin, with its undo tokens intact.

Crashes are simulated in-process by shutting the socket loop down
*without* the flush that a graceful ``ReproHTTPServer.shutdown`` runs
(``manager.close_all``) — valid because the WAL is fsync'd inside each
request, so whatever a client saw acknowledged is on disk the moment the
response commits.  One subprocess test does the real thing with SIGKILL.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import struct
import subprocess
import sys
import tempfile
from http.server import ThreadingHTTPServer
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.client import ServerClient, ServerError
from repro.errors import ReproError
from repro.registry import wal_record_to_bytes, wal_records_from_bytes
from repro.server import SessionStore, make_server

REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA_DOC = {
    "name": "emp",
    "attributes": [
        {"name": "dept", "type": "string"},
        {"name": "floor", "type": "int"},
    ],
}
RULES_DOC = [{"type": "fd", "relation": "emp", "lhs": ["dept"], "rhs": ["floor"]}]
ROWS = [
    {"dept": "eng", "floor": 1},
    {"dept": "eng", "floor": 2},  # violates dept -> floor
    {"dept": "ops", "floor": 3},
]


def _boot(state_dir: Path, **kwargs):
    server = make_server(port=0, state_dir=state_dir, **kwargs)
    server.start_background()
    client = ServerClient(base_url=server.base_url)
    client.wait_ready()
    return server, client


def _crash(server) -> None:
    """Kill the server without the graceful-shutdown flush."""
    ThreadingHTTPServer.shutdown(server)
    server.server_close()


def _create(client: ServerClient, session_id: str, rows=ROWS):
    return client.create_session(
        schema=SCHEMA_DOC,
        rules=RULES_DOC,
        data={"emp": list(rows)},
        session_id=session_id,
    )


def _insert(dept: str, floor: int):
    return {"ops": [{"op": "insert", "relation": "emp",
                     "row": {"dept": dept, "floor": floor}}]}


def _delete(dept: str, floor: int):
    return {"ops": [{"op": "delete", "relation": "emp",
                     "row": {"dept": dept, "floor": floor}}]}


def _dump(doc) -> str:
    return json.dumps(doc, sort_keys=True, default=str)


def _session_files(state_dir: Path, session_id: str):
    directory = state_dir / "sessions" / session_id
    return sorted(p.name for p in directory.iterdir())


def _bare_session():
    """A Session built off-server, for store-level tests."""
    from repro.relational.instance import DatabaseInstance
    from repro.rules_json import database_schema_from_dict
    from repro.session import Session

    db = DatabaseInstance(database_schema_from_dict(SCHEMA_DOC))
    for row in ROWS:
        db.relation("emp").add(row)
    return Session.from_instance(db, [])


def _raw_status(base_url: str, method: str, path: str) -> int:
    """Issue a request with the path sent verbatim (no '..' normalization —
    the equivalent of ``curl --path-as-is``)."""
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(base_url)
    conn = http.client.HTTPConnection(parts.hostname, parts.port, timeout=10)
    try:
        conn.putrequest(method, path)
        conn.putheader("Content-Length", "0")
        conn.endheaders()
        response = conn.getresponse()
        response.read()
        return response.status
    finally:
        conn.close()


def _current_wal(state_dir: Path, session_id: str) -> Path:
    directory = state_dir / "sessions" / session_id
    snapshots = sorted(directory.glob("snapshot-*.json"))
    assert snapshots, f"no snapshot for {session_id} under {directory}"
    generation = snapshots[-1].stem.split("-")[1]
    return directory / f"wal-{generation}.log"


class TestDurableLifecycle:
    def test_create_writes_gen0_snapshot(self, tmp_path):
        server, client = _boot(tmp_path)
        try:
            _create(client, "a")
            assert _session_files(tmp_path, "a") == ["snapshot-00000000.json"]
            info = client.session_info("a")
            assert info["durability"] == {
                "enabled": True,
                "generation": 0,
                "wal_records": 0,
                "snapshot_every": 64,
                "dirty": False,
            }
        finally:
            server.shutdown()

    def test_non_durable_server_reports_disabled(self, tmp_path):
        server = make_server(port=0)
        server.start_background()
        try:
            client = ServerClient(base_url=server.base_url)
            client.wait_ready()
            _create(client, "a")
            assert client.session_info("a")["durability"] == {"enabled": False}
            assert client.metrics()["durability"] == {"enabled": False}
            assert client.cold_sessions() == []
        finally:
            server.shutdown()

    def test_restart_recovers_byte_identical_detect(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        client.apply("a", _insert("qa", 9))
        client.apply("a", _delete("ops", 3))
        before = client.detect("a")
        _crash(server)

        server2, client2 = _boot(tmp_path)
        try:
            assert client2.cold_sessions() == ["a"]
            assert _dump(client2.detect("a")) == _dump(before)
            assert client2.metrics()["durability"]["rehydrated_total"] == 1
        finally:
            server2.shutdown()

    def test_undo_tokens_survive_restart(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        tokens = [
            client.apply("a", _insert(f"d{i}", 100 + i))["undo_token"]
            for i in range(3)
        ]
        baseline = client.detect("a")
        _crash(server)

        server2, client2 = _boot(tmp_path)
        try:
            info = client2.session_info("a")
            assert info["undo_tokens"] == tokens  # ids *and* LRU order
            # replay the middle token: the d1 insert comes back out
            replay = client2.undo("a", tokens[1])
            assert len(replay["removed"]) + len(replay["added"]) >= 0
            assert client2.session_info("a")["relations"] == {"emp": 5}
            with pytest.raises(ServerError) as err:
                client2.undo("a", tokens[1])  # still single-use
            assert err.value.status == 400
            del baseline
        finally:
            server2.shutdown()

    def test_rules_changes_survive_restart(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        extra = {
            "type": "cfd",
            "relation": "emp",
            "name": "eng-first-floor",
            "lhs": ["dept"],
            "rhs": ["floor"],
            "tableau": [{"dept": "eng", "floor": 1}],
        }
        client.add_rules("a", [extra])
        before = client.detect("a")
        assert "eng-first-floor" in before["per_dependency"]
        _crash(server)

        server2, client2 = _boot(tmp_path)
        try:
            assert _dump(client2.detect("a")) == _dump(before)
            assert client2.get_rules("a") == RULES_DOC + [extra]
        finally:
            server2.shutdown()

    def test_rules_replace_survives_restart(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        client.set_rules("a", [])
        before = client.detect("a")
        assert before["total"] == 0
        _crash(server)

        server2, client2 = _boot(tmp_path)
        try:
            assert client2.get_rules("a") == []
            assert _dump(client2.detect("a")) == _dump(before)
        finally:
            server2.shutdown()

    def test_repair_adopt_survives_restart(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        client.repair("a", strategy="x", adopt=True)
        before = client.detect("a")
        assert before["total"] == 0
        _crash(server)

        server2, client2 = _boot(tmp_path)
        try:
            assert _dump(client2.detect("a")) == _dump(before)
            assert client2.session_info("a")["undo_tokens"] == []
        finally:
            server2.shutdown()

    def test_snapshot_cycle_retires_old_generation(self, tmp_path):
        server, client = _boot(tmp_path, snapshot_every=2)
        try:
            _create(client, "a")
            for i in range(5):
                client.apply("a", _insert(f"g{i}", 500 + i))
            info = client.session_info("a")["durability"]
            # 5 records at snapshot_every=2: two cycles, one tail record
            assert info["generation"] == 2
            assert info["wal_records"] == 1
            files = _session_files(tmp_path, "a")
            assert files == ["snapshot-00000002.json", "wal-00000002.log"]
        finally:
            server.shutdown()

    def test_graceful_shutdown_flushes_to_snapshot(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        client.apply("a", _insert("qa", 9))
        before = client.detect("a")
        server.shutdown()  # graceful: close_all flushes the WAL tail
        files = _session_files(tmp_path, "a")
        assert files == ["snapshot-00000001.json"]

        server2, client2 = _boot(tmp_path)
        try:
            assert _dump(client2.detect("a")) == _dump(before)
        finally:
            server2.shutdown()


class TestEvictionAndColdSessions:
    def test_eviction_flushes_then_drops(self, tmp_path):
        server, client = _boot(tmp_path, max_sessions=1)
        try:
            _create(client, "a")
            client.apply("a", _insert("qa", 9))
            before = client.detect("a")
            _create(client, "b")  # evicts "a" (flush-then-drop)
            assert {s["session"] for s in client.list_sessions()} == {"b"}
            assert client.cold_sessions() == ["a"]
            # first touch rehydrates "a" transparently (and evicts "b")
            assert _dump(client.detect("a")) == _dump(before)
            assert client.cold_sessions() == ["b"]
            metrics = client.metrics()["durability"]
            assert metrics["flushed_total"] >= 1
            assert metrics["rehydrated_total"] == 1
        finally:
            server.shutdown()

    def test_delete_purges_cold_session(self, tmp_path):
        server, client = _boot(tmp_path, max_sessions=1)
        try:
            _create(client, "a")
            _create(client, "b")  # "a" now cold
            assert client.cold_sessions() == ["a"]
            assert client.delete_session("a") == {"session": "a", "closed": True}
            assert client.cold_sessions() == []
            with pytest.raises(ServerError) as err:
                client.detect("a")
            assert err.value.status == 404
            assert not (tmp_path / "sessions" / "a").exists()
        finally:
            server.shutdown()

    def test_duplicate_id_vs_cold_state_conflicts(self, tmp_path):
        server, client = _boot(tmp_path, max_sessions=1)
        try:
            _create(client, "a")
            _create(client, "b")  # "a" cold, but its id is still taken
            with pytest.raises(ServerError) as err:
                _create(client, "a")
            assert err.value.status == 409
            assert "durable state" in str(err.value)
        finally:
            server.shutdown()

    def test_auto_ids_skip_cold_sessions(self, tmp_path):
        server, client = _boot(tmp_path, max_sessions=1)
        auto = client.create_session(schema=SCHEMA_DOC, data={"emp": ROWS})
        _crash(server)
        server2, client2 = _boot(tmp_path, max_sessions=1)
        try:
            fresh = client2.create_session(schema=SCHEMA_DOC, data={"emp": ROWS})
            assert fresh["session"] != auto["session"]
        finally:
            server2.shutdown()


class TestTornTail:
    """A crash mid-write leaves at worst a torn final WAL record; recovery
    must truncate it and land on the last fully-acknowledged state."""

    def _framed(self, wal: Path):
        data = wal.read_bytes()
        records, clean = wal_records_from_bytes(data)
        assert clean == len(data)  # an acknowledged WAL is never torn
        return data, records

    def test_half_written_record_is_dropped(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        checkpoints = [client.detect("a")]
        for i in range(3):
            client.apply("a", _insert(f"t{i}", 700 + i))
            checkpoints.append(client.detect("a"))
        _crash(server)

        wal = _current_wal(tmp_path, "a")
        data, records = self._framed(wal)
        last_frame = wal_record_to_bytes(records[-1])
        # cut into the final record's payload: a torn write
        wal.write_bytes(data[: len(data) - len(last_frame) // 2])

        server2, client2 = _boot(tmp_path)
        try:
            assert _dump(client2.detect("a")) == _dump(checkpoints[-2])
            # the torn bytes were truncated away on disk too
            kept, clean = wal_records_from_bytes(wal.read_bytes())
            assert len(kept) == len(records) - 1
            assert clean == wal.stat().st_size
        finally:
            server2.shutdown()

    def test_torn_header_is_dropped(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        client.apply("a", _insert("x", 1))
        before = client.detect("a")
        _crash(server)

        wal = _current_wal(tmp_path, "a")
        with open(wal, "ab") as handle:
            handle.write(struct.pack(">I", 12345)[:3])  # 3 of 8 header bytes

        server2, client2 = _boot(tmp_path)
        try:
            assert _dump(client2.detect("a")) == _dump(before)
        finally:
            server2.shutdown()

    def test_corrupt_crc_stops_replay_at_the_tear(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        client.apply("a", _insert("x", 1))
        good = client.detect("a")
        client.apply("a", _insert("y", 2))
        _crash(server)

        wal = _current_wal(tmp_path, "a")
        data = wal.read_bytes()
        # flip a payload byte inside the *last* record: CRC mismatch
        wal.write_bytes(data[:-1] + bytes([data[-1] ^ 0xFF]))

        server2, client2 = _boot(tmp_path)
        try:
            assert _dump(client2.detect("a")) == _dump(good)
        finally:
            server2.shutdown()

    def test_append_after_truncated_tail_stays_clean(self, tmp_path):
        """New WAL appends after a torn-tail recovery must start at the
        truncation point — frame-aligned, fully replayable."""
        server, client = _boot(tmp_path)
        _create(client, "a")
        client.apply("a", _insert("x", 1))
        client.apply("a", _insert("y", 2))
        _crash(server)

        wal = _current_wal(tmp_path, "a")
        data = wal.read_bytes()
        wal.write_bytes(data[:-4])  # tear the last record

        server2, client2 = _boot(tmp_path)
        client2.detect("a")  # rehydrate (truncates the tail)
        client2.apply("a", _insert("z", 3))
        after_append = client2.detect("a")
        _crash(server2)

        server3, client3 = _boot(tmp_path)
        try:
            assert _dump(client3.detect("a")) == _dump(after_append)
        finally:
            server3.shutdown()


class TestCrashRecoveryProperties:
    """Hypothesis-seeded edit streams with a crash at a random point.

    Each example drives a durable server over HTTP with a random
    insert/delete/undo stream (recording the acknowledged detect document
    after every successful write — the 'uninterrupted twin'), crashes it
    without flushing, optionally tears the final WAL record, restarts,
    and requires detect to be byte-identical to the twin's document for
    the surviving prefix.
    """

    ACTIONS = st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "undo"]),
            st.sampled_from(["eng", "ops", "qa", "hr"]),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=12,
    )

    @given(actions=ACTIONS, tear=st.booleans(), data=st.data())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_detect_matches_uninterrupted_twin(self, actions, tear, data):
        state_dir = Path(tempfile.mkdtemp(prefix="repro-durability-"))
        server = None
        server2 = None
        try:
            server, client = _boot(state_dir, snapshot_every=3)
            _create(client, "p")
            checkpoints = [client.detect("p")]
            tokens: list = []
            for op, dept, floor in actions:
                try:
                    if op == "insert":
                        delta = client.apply("p", _insert(dept, floor))
                    elif op == "delete":
                        delta = client.apply("p", _delete(dept, floor))
                    elif tokens:
                        delta = client.undo("p", tokens.pop(0))
                    else:
                        continue
                except ServerError:
                    continue  # rejected edits write no WAL record
                tokens.append(delta["undo_token"])
                checkpoints.append(client.detect("p"))
            _crash(server)
            server = None

            expected = checkpoints[-1]
            wal = _current_wal(state_dir, "p")
            if tear and wal.exists() and wal.stat().st_size > 0:
                raw = wal.read_bytes()
                records, clean = wal_records_from_bytes(raw)
                assert clean == len(raw)
                last_frame = wal_record_to_bytes(records[-1])
                cut = data.draw(
                    st.integers(min_value=1, max_value=len(last_frame) - 1),
                    label="bytes cut off the final record",
                )
                wal.write_bytes(raw[: len(raw) - cut])
                # dropping the final record rewinds exactly one checkpoint
                expected = checkpoints[-1 - 1]

            server2, client2 = _boot(state_dir, snapshot_every=3)
            assert _dump(client2.detect("p")) == _dump(expected)
        finally:
            for srv in (server, server2):
                if srv is not None:
                    srv.shutdown()
            shutil.rmtree(state_dir, ignore_errors=True)


class TestSigkillSubprocess:
    """The real thing: SIGKILL a ``repro serve --state-dir`` subprocess
    mid-flight and recover on a fresh process."""

    def _spawn(self, state_dir: Path) -> tuple:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--state-dir", str(state_dir), "--quiet",
            ],
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        banner = proc.stderr.readline()
        assert "listening on" in banner, banner
        base_url = next(
            word for word in banner.split() if word.startswith("http://")
        )
        client = ServerClient(base_url=base_url)
        client.wait_ready()
        return proc, client

    def test_sigkill_then_restart_recovers(self, tmp_path):
        proc, client = self._spawn(tmp_path)
        try:
            _create(client, "k")
            client.apply("k", _insert("qa", 9))
            token = client.apply("k", _insert("hr", 4))["undo_token"]
            before = client.detect("k")
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            proc.stderr.close()

        proc2, client2 = self._spawn(tmp_path)
        try:
            assert client2.cold_sessions() == ["k"]
            assert _dump(client2.detect("k")) == _dump(before)
            replay = client2.undo("k", token)
            assert "undo_token" in replay
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)
            proc2.stderr.close()


class TestSessionIdConfinement:
    """'.'/'..' are directory syntax, not session names: they must map to
    ordinary directories (or 404), never to the sessions dir / state root
    — ``DELETE /sessions/..`` used to rmtree the entire ``--state-dir``."""

    def test_store_maps_dot_ids_to_safe_directories(self, tmp_path):
        store = SessionStore(tmp_path)
        for session_id in (".", "..", "..."):
            directory = store._session_dir(session_id)
            assert directory.parent == store.sessions_dir
            assert directory.name not in ("", ".", "..")
            assert not store.exists(session_id)
        with pytest.raises(ReproError):
            store._session_dir("")

    def test_dot_id_round_trips_without_escaping(self, tmp_path):
        store = SessionStore(tmp_path)
        journal = store.create("..", _bare_session())
        journal.close()
        assert store.session_ids() == [".."]
        store.purge("..")
        assert store.session_ids() == []
        # the purge removed one session directory, not the state root
        assert store.sessions_dir.is_dir()
        assert tmp_path.is_dir()

    def test_dot_ids_over_http_are_404_and_destroy_nothing(self, tmp_path):
        server, client = _boot(tmp_path)
        try:
            _create(client, "a")
            for session_id in (".", ".."):
                for method in ("DELETE", "GET"):
                    status = _raw_status(
                        server.base_url, method, f"/v1/sessions/{session_id}"
                    )
                    assert status == 404, (method, session_id, status)
                status = _raw_status(
                    server.base_url,
                    "POST",
                    f"/v1/sessions/{session_id}/detect",
                )
                assert status == 404, session_id
            # every session's durable state survived the probes
            assert _session_files(tmp_path, "a") == ["snapshot-00000000.json"]
            assert client.detect("a")["total"] >= 1
        finally:
            server.shutdown()

    def test_empty_session_id_create_is_rejected(self, tmp_path):
        server, client = _boot(tmp_path)
        try:
            with pytest.raises(ServerError) as err:
                _create(client, "")
            assert err.value.status == 400
            assert (tmp_path / "sessions").is_dir()
        finally:
            server.shutdown()


class TestJournalFailure:
    """A write verb whose WAL append (or forced snapshot) fails must leave
    the session exactly as before the request: memory rolled back, token
    table untouched, nothing extra on disk — the client's 5xx and the
    recovered state agree the write never happened."""

    def test_wal_append_failure_rolls_back_apply(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        client.apply("a", _insert("qa", 9))
        before = client.detect("a")
        tokens_before = client.session_info("a")["undo_tokens"]

        hosted = server.manager.get("a")
        original = hosted.journal.log_apply
        def boom(*args, **kwargs):
            raise OSError(28, "injected: no space left on device")
        hosted.journal.log_apply = boom
        with pytest.raises(ServerError) as err:
            client.apply("a", _insert("hr", 4))
        assert err.value.status == 500
        hosted.journal.log_apply = original

        assert _dump(client.detect("a")) == _dump(before)
        assert client.session_info("a")["undo_tokens"] == tokens_before
        _crash(server)

        server2, client2 = _boot(tmp_path)
        try:
            # disk agrees with the rolled-back memory state
            assert _dump(client2.detect("a")) == _dump(before)
        finally:
            server2.shutdown()

    def test_wal_append_failure_rolls_back_undo_in_place(self, tmp_path):
        server, client = _boot(tmp_path)
        try:
            _create(client, "a")
            tokens = [
                client.apply("a", _insert(f"d{i}", 100 + i))["undo_token"]
                for i in range(3)
            ]
            before = client.detect("a")

            hosted = server.manager.get("a")
            original = hosted.journal.log_undo
            def boom(*args, **kwargs):
                raise OSError(28, "injected: no space left on device")
            hosted.journal.log_undo = boom
            with pytest.raises(ServerError) as err:
                client.undo("a", tokens[1])
            assert err.value.status == 500
            hosted.journal.log_undo = original

            # database reverted, token still valid *and* in its old slot
            assert _dump(client.detect("a")) == _dump(before)
            assert client.session_info("a")["undo_tokens"] == tokens
            replay = client.undo("a", tokens[1])
            assert "undo_token" in replay
        finally:
            server.shutdown()

    def test_wal_append_failure_rolls_back_rules(self, tmp_path):
        server, client = _boot(tmp_path)
        try:
            _create(client, "a")
            hosted = server.manager.get("a")
            original = hosted.journal.log_rules
            def boom(*args, **kwargs):
                raise OSError(28, "injected: no space left on device")
            hosted.journal.log_rules = boom
            with pytest.raises(ServerError) as err:
                client.set_rules("a", [])
            assert err.value.status == 500
            hosted.journal.log_rules = original
            assert client.get_rules("a") == RULES_DOC
        finally:
            server.shutdown()

    def test_failed_fsync_truncates_partial_record(self, tmp_path, monkeypatch):
        store = SessionStore(tmp_path)
        journal = store.create("j", _bare_session())
        journal.log_apply({"ops": []}, "undo-1")
        wal = journal._wal_path(journal.generation)
        size_before = wal.stat().st_size

        def boom(fd):
            raise OSError(5, "injected I/O error")
        monkeypatch.setattr(os, "fdatasync", boom, raising=False)
        with pytest.raises(OSError):
            journal.log_apply({"ops": []}, "undo-2")
        monkeypatch.undo()

        # the partial record was cut back out; the next append lands
        # frame-aligned and the log replays fully
        assert wal.stat().st_size == size_before
        assert journal.wal_records == 1
        journal.log_apply({"ops": []}, "undo-2")
        records, clean = wal_records_from_bytes(wal.read_bytes())
        assert len(records) == 2
        assert clean == wal.stat().st_size
        journal.close()

    def test_blocked_journal_snapshots_instead_of_appending(self, tmp_path):
        server, client = _boot(tmp_path)
        _create(client, "a")
        hosted = server.manager.get("a")
        hosted.journal.blocked = "simulated earlier WAL failure"
        client.apply("a", _insert("qa", 9))  # still succeeds, durably
        info = client.session_info("a")["durability"]
        assert info["generation"] == 1
        assert info["wal_records"] == 0
        assert hosted.journal.blocked is None
        before = client.detect("a")
        _crash(server)

        server2, client2 = _boot(tmp_path)
        try:
            assert _dump(client2.detect("a")) == _dump(before)
        finally:
            server2.shutdown()

    def test_corrupt_newest_snapshot_fails_loudly(self, tmp_path):
        server, client = _boot(tmp_path, snapshot_every=2)
        _create(client, "a")
        client.apply("a", _insert("x", 1))
        client.apply("a", _insert("y", 2))  # cadence snapshot: generation 1
        _crash(server)

        directory = tmp_path / "sessions" / "a"
        newest = sorted(directory.glob("snapshot-*.json"))[-1]
        generation = int(newest.stem.split("-")[1])
        corrupt = directory / f"snapshot-{generation + 1:08d}.json"
        corrupt.write_text("{ this is not a snapshot", encoding="utf-8")

        server2, client2 = _boot(tmp_path, snapshot_every=2)
        try:
            # recovery must refuse to silently rewind to generation 1
            # (its predecessor's WAL is gone) — corruption is loud
            with pytest.raises(ServerError) as err:
                client2.detect("a")
            assert err.value.status == 400
            assert "snapshot" in str(err.value)
        finally:
            server2.shutdown()
