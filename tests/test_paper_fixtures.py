"""Sanity of the paper-fixture layer itself (repro.paper)."""

import pytest

from repro.deps.base import holds
from repro.paper import (
    YB,
    YC,
    card_billing_schema,
    customer_schema,
    example31_mds,
    example32_rcks,
    example41_cfds,
    example41_schema,
    example42_sources,
    example51_instance,
    example51_key,
    fig1_fds,
    fig1_instance,
    fig2_cfds,
    fig3_instance,
    fig3_naive_inds,
    fig4_cinds,
    source_target_schema,
)


class TestCustomerFixtures:
    def test_schema_matches_paper(self):
        schema = customer_schema()
        assert schema.attribute_names == (
            "CC", "AC", "phn", "name", "street", "city", "zip"
        )

    def test_instance_has_three_tuples(self):
        assert len(fig1_instance().relation("customer")) == 3

    def test_tuples_match_figure1(self):
        rows = {t["name"]: t for t in fig1_instance().relation("customer")}
        assert rows["Mike"]["street"] == "Mayfield"
        assert rows["Rick"]["zip"] == "EH4 8LE"
        assert rows["Joe"]["AC"] == 908

    def test_cfds_validate_against_schema(self):
        schema = customer_schema()
        for cfd in fig2_cfds().values():
            cfd.check_schema(schema)

    def test_fds_validate(self):
        schema = customer_schema()
        for fd in fig1_fds():
            fd.check_schema(schema)

    def test_fixtures_are_fresh_objects(self):
        """Mutating one fixture instance must not leak into the next."""
        first = fig1_instance()
        first.relation("customer").add(
            (99, 99, 99, "X", "Y", "Z", "W")
        )
        assert len(fig1_instance().relation("customer")) == 3


class TestSourceTargetFixtures:
    def test_schema_relations(self):
        assert set(source_target_schema().relation_names) == {"order", "book", "CD"}

    def test_instance_counts(self):
        db = fig3_instance()
        assert len(db.relation("order")) == 2
        assert len(db.relation("book")) == 2
        assert len(db.relation("CD")) == 2

    def test_cind_fixtures_validate(self):
        schema = source_target_schema()
        for cind in fig4_cinds().values():
            cind.check_schema(schema)

    def test_naive_inds_shape(self):
        inds = fig3_naive_inds()
        assert len(inds) == 2
        assert inds[0].rhs_relation == "book"
        assert inds[1].rhs_relation == "CD"


class TestExampleFixtures:
    def test_example41_domains(self):
        assert example41_schema(True).domain("A").is_finite
        assert not example41_schema(False).domain("A").is_finite

    def test_example41_cfds_have_two_rows_each(self):
        for cfd in example41_cfds(True):
            assert len(cfd.tableau) == 2

    def test_example42_three_sources(self):
        assert len(example42_sources()) == 3

    def test_example51_shape(self):
        db = example51_instance(4)
        assert len(db.relation("R")) == 8
        assert not example51_key().holds_on(db)

    def test_example51_zero(self):
        db = example51_instance(0)
        assert db.is_empty()
        assert example51_key().holds_on(db)


class TestCardBillingFixtures:
    def test_schema(self):
        schema = card_billing_schema()
        assert "card" in schema and "billing" in schema
        assert set(YC) <= set(schema.relation("card").attribute_names)
        assert set(YB) <= set(schema.relation("billing").attribute_names)

    def test_mds_and_rcks_align(self):
        mds = example31_mds()
        assert set(mds) == {"phi1", "phi2", "phi3", "phi4"}
        rcks = example32_rcks()
        assert set(rcks) == {"rck1", "rck2", "rck3"}
        for rck in rcks.values():
            assert rck.is_relative_key()

    def test_phi3_phi4_differ_only_in_fn_operator(self):
        mds = example31_mds()
        ops3 = {p.operator.name for p in mds["phi3"].premises}
        ops4 = {p.operator.name for p in mds["phi4"].premises}
        assert ops3 == {"⇋"}
        assert "edit≤2" in ops4
