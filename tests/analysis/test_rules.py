"""Per-rule fixture corpus: one triggering and one clean snippet each."""

from __future__ import annotations


# -- REP001 determinism ----------------------------------------------------


def test_rep001_flags_set_iteration_in_engine(tree):
    tree.write(
        "repro/engine/bad.py",
        """
        def emit(rows):
            out = []
            for row in {r for r in rows}:
                out.append(row)
            return out
        """,
    )
    assert "REP001" in tree.codes()


def test_rep001_sorted_set_iteration_is_clean(tree):
    tree.write(
        "repro/engine/good.py",
        """
        def emit(rows):
            out = []
            for row in sorted({r for r in rows}):
                out.append(row)
            return out
        """,
    )
    assert tree.codes() == []


def test_rep001_flags_dict_keys_iteration(tree):
    tree.write(
        "repro/relational/bad.py",
        """
        def names(columns):
            return [k for k in columns.keys()]
        """,
    )
    assert "REP001" in tree.codes()


def test_rep001_flags_unsorted_glob(tree):
    tree.write(
        "repro/engine/loader.py",
        """
        def load(directory):
            return [p.name for p in directory.glob("*.csv")]
        """,
    )
    findings = tree.by_code()["REP001"]
    assert any("glob" in f.message for f in findings)


def test_rep001_sorted_glob_is_clean(tree):
    tree.write(
        "repro/engine/loader.py",
        """
        def load(directory):
            return [p.name for p in sorted(directory.glob("*.csv"))]
        """,
    )
    assert tree.codes() == []


def test_rep001_flags_membership_against_rebuilt_set(tree):
    tree.write(
        "repro/deps/bad.py",
        """
        def shared(left, right):
            return [a for a in left if a in set(right)]
        """,
    )
    findings = tree.by_code()["REP001"]
    assert any("rebuilt" in f.message for f in findings)


def test_rep001_hoisted_membership_set_is_clean(tree):
    tree.write(
        "repro/deps/good.py",
        """
        def shared(left, right):
            members = set(right)
            return [a for a in left if a in members]
        """,
    )
    assert tree.codes() == []


def test_rep001_flags_clock_and_hash_in_engine(tree):
    tree.write(
        "repro/engine/clocky.py",
        """
        import time


        def stamp(name):
            return (time.time(), hash(name))
        """,
    )
    findings = tree.by_code()["REP001"]
    assert any("time.time" in f.message for f in findings)
    assert any("hash()" in f.message for f in findings)


def test_rep001_hash_inside_dunder_hash_is_clean(tree):
    tree.write(
        "repro/relational/hashy.py",
        """
        class Key:
            def __init__(self, parts):
                self._parts = parts

            def __hash__(self):
                return hash(self._parts)
        """,
    )
    assert tree.codes() == []


def test_rep001_workloads_are_exempt(tree):
    tree.write(
        "repro/workloads/gen.py",
        """
        import random


        def noise(rows):
            for row in {r for r in rows}:
                yield random.random()
        """,
    )
    assert tree.codes() == []


# -- REP002 lock discipline ------------------------------------------------


def test_rep002_flags_unlocked_mutation(tree):
    tree.write(
        "repro/server/manager.py",
        """
        class SessionManager:
            def evict(self, session_id):
                self._sessions.pop(session_id, None)
                self.evicted_total += 1
        """,
    )
    assert tree.codes().count("REP002") == 2


def test_rep002_with_lock_scope_is_clean(tree):
    tree.write(
        "repro/server/manager.py",
        """
        class SessionManager:
            def evict(self, session_id):
                with self._lock:
                    self._sessions.pop(session_id, None)
                    self.evicted_total += 1
        """,
    )
    assert tree.codes() == []


def test_rep002_lock_held_marker_is_clean(tree):
    tree.write(
        "repro/server/manager.py",
        """
        class SessionManager:
            # repro: lock-held — callers own self._lock
            def evict_locked(self, session_id):
                self._sessions.pop(session_id, None)
        """,
    )
    assert tree.codes() == []


def test_rep002_init_is_exempt(tree):
    tree.write(
        "repro/server/manager.py",
        """
        class SessionManager:
            def __init__(self):
                self._sessions = {}
                self.evicted_total = 0
        """,
    )
    assert tree.codes() == []


# -- REP003 durability ordering --------------------------------------------


def test_rep003_flags_handler_without_persist(tree):
    tree.write(
        "repro/server/handlers.py",
        """
        def _handle_apply(hosted, body):
            delta = hosted.session.apply(body)
            token = hosted.remember_undo(delta.undo)
            return 200, {"undo_token": token}
        """,
    )
    findings = tree.by_code()["REP003"]
    assert any("never calls a persist_*" in f.message for f in findings)


def test_rep003_flags_mutation_after_last_persist(tree):
    tree.write(
        "repro/server/handlers.py",
        """
        def _handle_apply(hosted, body):
            delta = hosted.session.apply(body)
            try:
                hosted.persist_apply(delta, "t")
            except BaseException:
                raise
            token = hosted.remember_undo(delta.undo)
            return 200, {"undo_token": token}
        """,
    )
    findings = tree.by_code()["REP003"]
    assert any("after the last persist_*" in f.message for f in findings)


def test_rep003_flags_unguarded_persist(tree):
    tree.write(
        "repro/server/handlers.py",
        """
        def _handle_apply(hosted, body):
            delta = hosted.session.apply(body)
            hosted.persist_apply(delta, "t")
            return 200, {}
        """,
    )
    findings = tree.by_code()["REP003"]
    assert any("re-raises" in f.message for f in findings)


def test_rep003_canonical_handler_shape_is_clean(tree):
    tree.write(
        "repro/server/handlers.py",
        """
        def _handle_apply(hosted, body):
            delta = hosted.session.apply(body)
            token = hosted.remember_undo(delta.undo)
            try:
                hosted.persist_apply(delta, token)
            except BaseException:
                hosted.session.apply(delta.undo)
                raise
            return 200, {"undo_token": token}
        """,
    )
    assert "REP003" not in tree.codes()


def test_rep003_flags_raw_write_bypassing_journal(tree):
    tree.write(
        "repro/server/sneaky.py",
        """
        import os
        import shutil


        def stash(path, payload, root):
            path.write_text(payload)
            shutil.rmtree(root)
            os.remove(path)
            with open(path, "w") as handle:
                handle.write(payload)
        """,
    )
    assert tree.codes().count("REP003") == 4


def test_rep003_durability_module_itself_may_write(tree):
    tree.write(
        "repro/server/durability.py",
        """
        def write_snapshot(path, payload):
            path.write_text(payload)
        """,
    )
    assert "REP003" not in tree.codes()


def test_rep003_non_fs_remove_and_read_open_are_clean(tree):
    tree.write(
        "repro/server/ok.py",
        """
        def close(manager, session_id, path):
            manager.remove(session_id)
            with open(path) as handle:
                return handle.read()
        """,
    )
    assert "REP003" not in tree.codes()


# -- REP004 registry completeness ------------------------------------------


def test_rep004_flags_unregistered_concrete_dependency(tree):
    tree.write(
        "repro/deps/base.py",
        """
        from abc import ABC, abstractmethod


        class Dependency(ABC):
            @abstractmethod
            def violations(self):
                ...
        """,
    )
    tree.write(
        "repro/deps/orphan.py",
        """
        from repro.deps.base import Dependency


        class OrphanConstraint(Dependency):
            def violations(self):
                return []
        """,
    )
    findings = tree.by_code()["REP004"]
    assert any("OrphanConstraint" in f.message for f in findings)


def test_rep004_registered_subclass_is_clean(tree):
    tree.write(
        "repro/deps/base.py",
        """
        from abc import ABC, abstractmethod


        class Dependency(ABC):
            @abstractmethod
            def violations(self):
                ...


        class FD(Dependency):
            def violations(self):
                return []
        """,
    )
    tree.write(
        "repro/registry.py",
        """
        from repro.deps.base import FD


        class ConstraintCodec:
            def __init__(self, tag, cls, to_dict, from_dict):
                self.tag = tag
                self.cls = cls


        CODEC = ConstraintCodec("fd", FD, None, None)
        """,
    )
    assert "REP004" not in tree.codes()


def test_rep004_abstract_intermediate_is_exempt(tree):
    tree.write(
        "repro/deps/base.py",
        """
        from abc import ABC, abstractmethod


        class Dependency(ABC):
            @abstractmethod
            def violations(self):
                ...


        class Conditional(Dependency):
            @abstractmethod
            def tableau(self):
                ...
        """,
    )
    assert "REP004" not in tree.codes()


# -- REP005 fork safety ----------------------------------------------------


def test_rep005_flags_import_time_lock_in_worker_closure(tree):
    tree.write(
        "repro/engine/parallel.py",
        """
        from repro.engine import shared
        """,
    )
    tree.write(
        "repro/engine/shared.py",
        """
        import threading

        _LOCK = threading.Lock()
        """,
    )
    findings = tree.by_code()["REP005"]
    assert any("threading.Lock" in f.message for f in findings)


def test_rep005_class_body_socket_is_flagged(tree):
    tree.write(
        "repro/engine/parallel.py",
        """
        import socket


        class Worker:
            channel = socket.socket()
        """,
    )
    assert "REP005" in tree.codes()


def test_rep005_lazy_creation_is_clean(tree):
    tree.write(
        "repro/engine/parallel.py",
        """
        import threading
        from repro.engine import shared


        def make_lock():
            return threading.Lock()
        """,
    )
    tree.write(
        "repro/engine/shared.py",
        """
        import threading


        def helper():
            return threading.RLock()
        """,
    )
    assert tree.codes() == []


def test_rep005_module_outside_closure_is_exempt(tree):
    tree.write(
        "repro/engine/parallel.py",
        """
        def run():
            return None
        """,
    )
    tree.write(
        "repro/server/standalone.py",
        """
        import threading

        _LOCK = threading.Lock()
        """,
    )
    assert "REP005" not in tree.codes()


# -- REP006 exception hygiene ----------------------------------------------


def test_rep006_flags_bare_except(tree):
    tree.write(
        "repro/engine/swallow.py",
        """
        def run(step):
            try:
                step()
            except:
                return None
        """,
    )
    findings = tree.by_code()["REP006"]
    assert any("bare" in f.message for f in findings)


def test_rep006_flags_swallowed_blanket_except(tree):
    tree.write(
        "repro/server/swallow.py",
        """
        def run(step):
            try:
                step()
            except Exception:
                pass
        """,
    )
    assert "REP006" in tree.codes()


def test_rep006_reraising_blanket_except_is_clean(tree):
    tree.write(
        "repro/engine/ok.py",
        """
        def run(step, engine):
            try:
                step()
            except Exception:
                engine.refresh()
                raise
        """,
    )
    assert tree.codes() == []


def test_rep006_typed_except_is_clean(tree):
    tree.write(
        "repro/engine/ok.py",
        """
        def run(step):
            try:
                step()
            except ValueError:
                pass
        """,
    )
    assert tree.codes() == []
