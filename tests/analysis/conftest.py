"""Helpers for the analyzer fixture corpus.

Fixture trees are materialised under ``tmp_path`` with a ``repro/...``
layout so the analyzer's module-name scoping (``repro.engine`` etc.)
resolves exactly as it does against ``src/repro``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis.core import Analyzer, Finding
from repro.analysis.rules import default_rules


class FixtureTree:
    """Builds a throwaway ``repro``-shaped source tree and analyzes it."""

    def __init__(self, root: Path):
        self.root = root

    def write(self, relative: str, source: str) -> Path:
        path = self.root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(self.root).parents:
            package_init = self.root / parent / "__init__.py"
            if str(parent) != "." and not package_init.exists():
                package_init.write_text("", encoding="utf-8")
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def run(self) -> List[Finding]:
        analyzer = Analyzer(default_rules())
        return analyzer.run([self.root])

    def codes(self) -> List[str]:
        return [finding.code for finding in self.run()]

    def by_code(self) -> Dict[str, List[Finding]]:
        grouped: Dict[str, List[Finding]] = {}
        for finding in self.run():
            grouped.setdefault(finding.code, []).append(finding)
        return grouped


@pytest.fixture
def tree(tmp_path: Path) -> FixtureTree:
    # nested one level down: a bare ``repro/`` in the CLI's working
    # directory would shadow the real package on ``python -m`` runs
    root = tmp_path / "fixture_src"
    root.mkdir()
    return FixtureTree(root)
