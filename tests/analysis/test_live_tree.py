"""Regression: the shipped ``src/repro`` tree stays clean modulo the
committed baseline, and reintroducing a known-bad pattern fails."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.analysis.core import Analyzer, Baseline
from repro.analysis.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "analysis_baseline.json"


def _run(paths):
    analyzer = Analyzer(default_rules())
    return analyzer.run(paths)


def test_live_tree_clean_modulo_baseline():
    findings = _run([SRC])
    baseline = Baseline.load(BASELINE)
    new, _stale = baseline.diff(findings)
    assert new == [], "new analyzer findings in src/repro:\n" + "\n".join(
        f.render() for f in new
    )


def test_live_tree_covers_all_modules():
    analyzer = Analyzer(default_rules())
    analyzer.run([SRC])
    # the whole package is scanned, not a subset
    assert analyzer.files_scanned >= 80


def _copy_live_module(tmp_path: Path, relative: str) -> Path:
    """Copy one live module into a repro-shaped tree for mutation."""
    target = tmp_path / "repro" / relative
    target.parent.mkdir(parents=True, exist_ok=True)
    current = target.parent
    while current != tmp_path:
        init = current / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
        current = current.parent
    shutil.copy(SRC / relative, target)
    return target


def test_reintroducing_raw_write_bypass_fails(tmp_path):
    """The PR-7-era pattern: server code writing state files directly."""
    target = _copy_live_module(tmp_path, "server/__init__.py")
    source = target.read_text(encoding="utf-8")
    needle = "def make_server("
    assert needle in source
    patched = source.replace(
        needle,
        "def _stash_state(path, payload):\n"
        '    path.write_text(payload, encoding="utf-8")\n'
        "\n\n" + needle,
        1,
    )
    target.write_text(patched, encoding="utf-8")
    findings = _run([tmp_path / "repro"])
    assert any(
        f.code == "REP003" and "write_text" in f.message for f in findings
    )


def test_reintroducing_unsorted_set_iteration_fails(tmp_path):
    """An unsorted set iteration in a report path must be flagged."""
    target = _copy_live_module(tmp_path, "engine/indexes.py")
    source = target.read_text(encoding="utf-8")
    patched = source + (
        "\n\ndef _emit_unsorted(keys):\n"
        "    return [k for k in set(keys)]\n"
    )
    target.write_text(patched, encoding="utf-8")
    findings = _run([tmp_path / "repro"])
    assert any(
        f.code == "REP001" and "set" in f.message for f in findings
    )


def test_reintroducing_unlocked_mutation_fails(tmp_path):
    target = _copy_live_module(tmp_path, "server/hosting.py")
    source = target.read_text(encoding="utf-8")
    needle = "    def touch(self) -> None:"
    assert needle in source
    patched = source.replace(
        needle,
        "    def bump_unlocked(self) -> None:\n"
        "        self.closed_total += 1\n\n" + needle,
        1,
    )
    target.write_text(patched, encoding="utf-8")
    findings = _run([tmp_path / "repro"])
    assert any(
        f.code == "REP002" and "closed_total" in f.message for f in findings
    )
