"""Framework behavior: pragmas, baseline ratchet semantics, CLI driver."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.core import Analyzer, Baseline, Finding
from repro.analysis.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


# -- pragma suppression ----------------------------------------------------


def test_pragma_on_same_line_suppresses(tree):
    tree.write(
        "repro/engine/allowed.py",
        """
        def emit(rows):
            return [r for r in {x for x in rows}]  # repro: allow[REP001]
        """,
    )
    assert tree.codes() == []


def test_pragma_on_line_above_suppresses(tree):
    tree.write(
        "repro/engine/allowed.py",
        """
        def emit(rows):
            # repro: allow[REP001] — order is re-sorted by the caller
            return [r for r in {x for x in rows}]
        """,
    )
    assert tree.codes() == []


def test_pragma_heading_comment_block_suppresses(tree):
    tree.write(
        "repro/engine/allowed.py",
        """
        def emit(rows):
            # repro: allow[REP001] — the set feeds a frozenset, so
            # iteration order cannot reach any output
            return frozenset(r for r in {x for x in rows})
        """,
    )
    assert tree.codes() == []


def test_pragma_only_suppresses_named_code(tree):
    tree.write(
        "repro/engine/partial.py",
        """
        def emit(rows):
            # repro: allow[REP006] — wrong code on purpose
            return [r for r in {x for x in rows}]
        """,
    )
    assert tree.codes() == ["REP001"]


def test_pragma_with_multiple_codes(tree):
    tree.write(
        "repro/engine/multi.py",
        """
        def emit(rows):
            try:
                return [r for r in {x for x in rows}]  # repro: allow[REP001, REP006]
            except Exception:  # repro: allow[REP006] — fixture
                pass
        """,
    )
    assert tree.codes() == []


def test_pragma_does_not_leak_past_code_lines(tree):
    tree.write(
        "repro/engine/leak.py",
        """
        def emit(rows):
            # repro: allow[REP001]
            first = [r for r in {x for x in rows}]
            second = [r for r in {x for x in rows}]
            return first + second
        """,
    )
    assert tree.codes() == ["REP001"]


# -- baseline semantics ----------------------------------------------------


def _finding(code="REP001", path="repro/engine/x.py", line=3, message="m"):
    return Finding(code, path, line, 1, message)


def test_baseline_roundtrip(tmp_path):
    findings = [_finding(), _finding(line=9), _finding(code="REP006")]
    baseline = Baseline.from_findings(findings)
    target = tmp_path / "baseline.json"
    baseline.dump(target)
    loaded = Baseline.load(target)
    assert loaded.counts == baseline.counts
    document = json.loads(target.read_text())
    assert document["version"] == 1
    # identical (path, code, message) findings aggregate by count
    assert {e["count"] for e in document["findings"]} == {1, 2}


def test_baseline_masks_known_findings_and_reports_new():
    known = [_finding(), _finding(code="REP006")]
    baseline = Baseline.from_findings(known)
    new_finding = _finding(message="something else")
    new, stale = baseline.diff([known[0], new_finding])
    assert new == [new_finding]
    assert stale == [("repro/engine/x.py", "REP006", "m")]


def test_baseline_count_ratchet():
    # two identical findings baselined; a third occurrence is new
    baseline = Baseline.from_findings([_finding(), _finding()])
    new, stale = baseline.diff([_finding(), _finding(), _finding()])
    assert len(new) == 1
    assert stale == []


def test_baseline_line_moves_do_not_churn():
    baseline = Baseline.from_findings([_finding(line=3)])
    new, stale = baseline.diff([_finding(line=300)])
    assert new == []
    assert stale == []


# -- CLI driver ------------------------------------------------------------


def _run_cli(*argv, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_exit_codes_and_json(tree, tmp_path):
    tree.write(
        "repro/engine/bad.py",
        """
        def emit(rows):
            return [r for r in {x for x in rows}]
        """,
    )
    result = _run_cli(
        "fixture_src/repro", "--no-baseline", "--format", "json", cwd=tmp_path
    )
    assert result.returncode == 1
    findings = json.loads(result.stdout)
    assert findings and findings[0]["code"] == "REP001"

    # write a baseline, then the same tree checks out clean against it
    result = _run_cli(
        "fixture_src/repro", "--write-baseline", "base.json", cwd=tmp_path
    )
    assert result.returncode == 0
    result = _run_cli(
        "fixture_src/repro", "--baseline", "base.json", cwd=tmp_path
    )
    assert result.returncode == 0

    # a fresh finding fails the baseline check
    tree.write(
        "repro/engine/worse.py",
        """
        def emit(rows):
            return [r for r in {x for x in rows}]
        """,
    )
    result = _run_cli(
        "fixture_src/repro", "--baseline", "base.json", cwd=tmp_path
    )
    assert result.returncode == 1
    assert "new finding" in result.stderr


def test_cli_stats_output(tree, tmp_path):
    tree.write(
        "repro/engine/bad.py",
        """
        def emit(rows):
            try:
                return [r for r in {x for x in rows}]
            except Exception:
                pass
        """,
    )
    stats_file = tmp_path / "stats.json"
    result = _run_cli(
        "fixture_src/repro",
        "--no-baseline",
        "--stats",
        str(stats_file),
        cwd=tmp_path,
    )
    assert result.returncode == 1
    stats = json.loads(stats_file.read_text())
    assert stats["rule_hits"]["REP001"] == 1
    assert stats["rule_hits"]["REP006"] == 1
    assert stats["total"] == 2
    assert stats["files_scanned"] >= 1


def test_cli_missing_path_is_usage_error(tmp_path):
    result = _run_cli("no/such/dir", cwd=tmp_path)
    assert result.returncode == 2


def test_analyzer_stats_exclude_pragma_suppressed(tree):
    tree.write(
        "repro/engine/allowed.py",
        """
        def emit(rows):
            return [r for r in {x for x in rows}]  # repro: allow[REP001]
        """,
    )
    analyzer = Analyzer(default_rules())
    assert analyzer.run([tree.root]) == []
    assert analyzer.stats["REP001"] == 0
