"""The HTTP/JSON constraint service: wire protocol, locking, eviction.

The acceptance bar mirrors the packaging job: a served detect must be
*byte-identical* to the offline CLI detect on the shipped fixtures, the
changeset wire format must ride the delta engine exactly as a local
``Session.apply`` does, and concurrent clients must never tear a
session's maintained state — one session serializes, distinct sessions
run in parallel.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.client import ServerClient, ServerError
from repro.engine.delta import Changeset
from repro.registry import changeset_from_dict, changeset_to_dict
from repro.server import make_server
from repro.session import Session

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "examples" / "fixtures"

#: a small single-relation session document used by most tests
SCHEMA_DOC = {
    "name": "emp",
    "attributes": [
        {"name": "dept", "type": "string"},
        {"name": "floor", "type": "int"},
    ],
}
RULES_DOC = [{"type": "fd", "relation": "emp", "lhs": ["dept"], "rhs": ["floor"]}]
ROWS = [
    {"dept": "eng", "floor": 1},
    {"dept": "eng", "floor": 2},  # violates dept -> floor
    {"dept": "ops", "floor": 3},
]


@pytest.fixture(scope="module")
def server():
    server = make_server(port=0, data_root=REPO_ROOT)
    server.start_background()
    yield server
    server.shutdown()


@pytest.fixture(scope="module")
def client(server):
    client = ServerClient(base_url=server.base_url)
    client.wait_ready()
    return client


def _fresh(client: ServerClient, session_id: str, rows=ROWS, **kwargs):
    """Create (or recreate) the small emp session under ``session_id``."""
    try:
        client.delete_session(session_id)
    except ServerError:
        pass
    return client.create_session(
        schema=SCHEMA_DOC,
        rules=RULES_DOC,
        data={"emp": list(rows)},
        session_id=session_id,
        **kwargs,
    )


class TestLifecycle:
    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["max_sessions"] == 64
        assert doc["uptime_seconds"] >= 0

    def test_create_info_list_delete(self, client):
        info = _fresh(client, "life")
        assert info["session"] == "life"
        assert info["relations"] == {"emp": 3}
        assert info["rules"] == 1
        assert info["executor"] == "indexed"
        assert not info["warm_engine"]
        assert "life" in {s["session"] for s in client.list_sessions()}
        assert client.session_info("life")["relations"] == {"emp": 3}
        assert client.delete_session("life") == {
            "session": "life",
            "closed": True,
        }
        with pytest.raises(ServerError) as err:
            client.session_info("life")
        assert err.value.status == 404

    def test_auto_ids_are_fresh(self, client):
        a = client.create_session(schema=SCHEMA_DOC, data={"emp": ROWS})
        b = client.create_session(schema=SCHEMA_DOC, data={"emp": ROWS})
        assert a["session"] != b["session"]
        client.delete_session(a["session"])
        client.delete_session(b["session"])

    def test_duplicate_id_conflicts(self, client):
        _fresh(client, "dup")
        with pytest.raises(ServerError) as err:
            client.create_session(schema=SCHEMA_DOC, session_id="dup")
        assert err.value.status == 409
        assert "already exists" in str(err.value)
        client.delete_session("dup")

    def test_server_side_paths(self, client):
        info = client.create_session(
            schema="examples/fixtures/schema.json",
            rules="examples/fixtures/rules.json",
            data={
                "customer": "examples/fixtures/customer.csv",
                "orders": "examples/fixtures/orders.csv",
            },
            session_id="paths",
        )
        assert info["relations"] == {"customer": 7, "orders": 5}
        assert info["rules"] == 6
        client.delete_session("paths")


class TestDetect:
    def test_detect_matches_offline_byte_for_byte(self, client):
        """The packaging-job invariant: served detect == CLI detect JSON."""
        data = {
            "customer": "examples/fixtures/customer.csv",
            "orders": "examples/fixtures/orders.csv",
        }
        client.create_session(
            schema="examples/fixtures/schema.json",
            rules="examples/fixtures/rules.json",
            data=data,
            session_id="bytes",
        )
        served = client.detect("bytes")
        offline = Session.from_files(
            FIXTURES / "schema.json",
            FIXTURES / "rules.json",
            {name: FIXTURES / Path(path).name for name, path in data.items()},
        ).detect().to_dict()
        dump = lambda doc: json.dumps(doc, indent=2, default=str)  # noqa: E731
        assert dump(served) == dump(offline)
        client.delete_session("bytes")

    def test_detect_summary_only(self, client):
        _fresh(client, "sum")
        doc = client.detect("sum", include_violations=False)
        assert doc["total"] == 1
        assert "violations" not in doc
        assert list(doc["per_dependency"].values()) == [1]

    def test_detect_warm_repeats_agree(self, client):
        _fresh(client, "warm")
        first = client.detect("warm")
        for _ in range(3):
            assert client.detect("warm") == first

    def test_detect_executor_override(self, client):
        _fresh(client, "exec")
        indexed = client.detect("exec")
        naive = client.detect("exec", executor="naive")
        parallel = client.detect("exec", shards=2)
        assert naive["total"] == indexed["total"]
        assert parallel["total"] == indexed["total"]
        with pytest.raises(ServerError) as err:
            client.detect("exec", executor="warp-drive")
        assert err.value.status == 400


class TestApplyUndo:
    def test_apply_matches_local_session(self, client):
        _fresh(client, "app")
        changeset = {
            "ops": [
                {
                    "op": "insert",
                    "relation": "emp",
                    "row": {"dept": "ops", "floor": 9},
                },
                {
                    "op": "update",
                    "relation": "emp",
                    "row": {"dept": "eng", "floor": 2},
                    "cells": {"floor": 1},
                },
            ]
        }
        served = client.apply("app", changeset)

        local = Session.from_instance(_local_db(), _local_rules())
        delta = local.apply(Changeset.from_dict(changeset))
        assert len(served["added"]) == len(delta.added)
        assert len(served["removed"]) == len(delta.removed)
        assert served["remaining"] == delta.remaining
        assert served["clean"] == delta.clean_after

    def test_undo_restores_and_tokens_are_single_use(self, client):
        _fresh(client, "undo")
        before = client.detect("undo")
        delta = client.apply(
            "undo",
            {
                "ops": [
                    {
                        "op": "delete",
                        "relation": "emp",
                        "row": {"dept": "eng", "floor": 2},
                    }
                ]
            },
        )
        assert delta["remaining"] == 0 and delta["clean"]
        restored = client.undo("undo", delta["undo_token"])
        assert restored["remaining"] == before["total"]
        assert client.detect("undo") == before
        with pytest.raises(ServerError) as err:
            client.undo("undo", delta["undo_token"])
        assert err.value.status == 400
        assert "already-used" in str(err.value)

    def test_adopt_invalidates_stored_undo_tokens(self, client):
        """repair(adopt=True) swaps the instance; replaying a pre-repair
        undo against the repaired data must be refused, not applied."""
        _fresh(client, "adopt-undo")
        delta = client.apply(
            "adopt-undo",
            {"ops": [
                {
                    "op": "insert",
                    "relation": "emp",
                    "row": {"dept": "qa", "floor": 5},
                }
            ]},
        )
        client.repair("adopt-undo", strategy="x", adopt=True)
        with pytest.raises(ServerError) as err:
            client.undo("adopt-undo", delta["undo_token"])
        assert err.value.status == 400
        assert "unknown or already-used" in str(err.value)

    def test_apply_failure_is_atomic(self, client):
        """An update on an absent tuple 400s and leaves the session intact."""
        _fresh(client, "atomic")
        before = client.detect("atomic")
        with pytest.raises(ServerError) as err:
            client.apply(
                "atomic",
                {
                    "ops": [
                        {
                            "op": "insert",
                            "relation": "emp",
                            "row": {"dept": "qa", "floor": 4},
                        },
                        {
                            "op": "update",
                            "relation": "emp",
                            "row": {"dept": "ghost", "floor": 0},
                            "cells": {"floor": 1},
                        },
                    ]
                },
            )
        assert err.value.status == 400
        assert client.detect("atomic") == before
        assert client.session_info("atomic")["relations"] == {"emp": 3}


class TestErrorPaths:
    def test_error_metrics_use_route_templates(self, client, server):
        """404s/400s against arbitrary session ids must aggregate under the
        '{id}' template, not mint one metrics entry per probed path."""
        for probe in ("probe-a", "probe-b", "probe-c"):
            with pytest.raises(ServerError):
                client.detect(probe)
        endpoints = client.metrics()["endpoints"]
        assert "POST /sessions/{id}/detect" in endpoints
        assert not any("probe-" in key for key in endpoints)

    def test_unknown_session_404_on_every_verb(self, client):
        for call in (
            lambda: client.detect("ghost"),
            lambda: client.apply("ghost", {"ops": []}),
            lambda: client.repair("ghost"),
            lambda: client.get_rules("ghost"),
            lambda: client.session_info("ghost"),
            lambda: client.delete_session("ghost"),
        ):
            with pytest.raises(ServerError) as err:
                call()
            assert err.value.status == 404
            assert err.value.kind == "UnknownSessionError"
            assert "no session 'ghost'" in str(err.value)

    def test_malformed_changeset_400_with_registry_text(self, client):
        _fresh(client, "bad")
        cases = [
            ({"ops": [{"op": "frobnicate", "relation": "emp", "row": {}}]},
             "unknown op"),
            ({"ops": [{"op": "insert", "row": {}}]}, "'relation'"),
            ({"ops": [{"op": "update", "relation": "emp",
                       "row": {"dept": "eng", "floor": 1}}]}, "'cells'"),
            ({"ops": "nope"}, "'ops' list"),
        ]
        for body, fragment in cases:
            with pytest.raises(ServerError) as err:
                client.apply("bad", body)
            assert err.value.status == 400, body
            assert err.value.kind == "DependencyError"
            assert fragment in str(err.value)

    def test_unknown_rule_type_400_lists_registered_tags(self, client):
        _fresh(client, "tags")
        with pytest.raises(ServerError) as err:
            client.set_rules("tags", [{"type": "mystery"}])
        assert err.value.status == 400
        assert "registered types" in str(err.value)
        assert "cfd" in str(err.value)

    def test_invalid_json_body_400(self, client, server):
        import urllib.request

        request = urllib.request.Request(
            f"{server.base_url}/sessions/whatever/detect",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        assert json.loads(err.value.read())["type"] == "BadRequest"

    def test_keep_alive_survives_unrouted_request_with_body(self, server):
        """A body POSTed to an unroutable path must be drained before the
        400, or the next request on the kept-alive socket reads garbage."""
        import http.client

        host, port = server.server_address[0], server.server_address[1]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            # /teapot never reaches _read_body, so without the drain the
            # body bytes would be parsed as the next request line
            body = json.dumps({"ops": [{"op": "insert"}] * 50})
            conn.request(
                "POST",
                "/v1/teapot",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 400
            first.read()
            # same socket: the follow-up must parse cleanly
            conn.request("GET", "/v1/healthz")
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["status"] == "ok"
        finally:
            conn.close()

    def test_unrouted_paths_400(self, client):
        with pytest.raises(ServerError) as err:
            client._request("GET", "/teapot")
        assert err.value.status == 400
        with pytest.raises(ServerError) as err:
            client._request("POST", "/sessions/x/brew")
        assert err.value.status in (400, 404)  # 404: session checked first

    def test_bad_session_document_400(self, client):
        with pytest.raises(ServerError) as err:
            client._request("POST", "/sessions", {"rules": []})
        assert err.value.status == 400
        assert "schema" in str(err.value)


class TestRulesRoundTrip:
    def test_get_put_post(self, client):
        _fresh(client, "rules")
        docs = client.get_rules("rules")
        assert docs == [
            {
                "type": "fd",
                "relation": "emp",
                "lhs": ["dept"],
                "rhs": ["floor"],
            }
        ]
        extra = {
            "type": "cfd",
            "relation": "emp",
            "name": "eng-first-floor",
            "lhs": ["dept"],
            "rhs": ["floor"],
            "tableau": [{"dept": "eng", "floor": 1}],
        }
        assert client.add_rules("rules", [extra])["rules"] == 2
        assert client.get_rules("rules")[1]["name"] == "eng-first-floor"
        # served detection now includes the CFD's violations
        assert client.detect("rules")["per_dependency"]["eng-first-floor"] >= 1
        assert client.set_rules("rules", docs)["rules"] == 1
        assert client.get_rules("rules") == docs


class TestRepair:
    def test_repair_x_and_adopt(self, client):
        _fresh(client, "fix")
        report = client.repair("fix", strategy="x")
        assert report["strategy"] == "x"
        assert report["resolved"] is True
        # adopt=False: the hosted session is untouched
        assert client.detect("fix")["total"] == 1
        adopted = client.repair("fix", strategy="x", adopt=True)
        assert adopted["resolved"] is True
        assert client.detect("fix")["total"] == 0

    def test_repair_u_reports_passes(self, client):
        _fresh(client, "upass")
        report = client.repair("upass", strategy="u")
        assert report["strategy"] == "u"
        assert report["passes"] >= 1

    def test_unknown_strategy_400(self, client):
        _fresh(client, "strat")
        with pytest.raises(ServerError) as err:
            client.repair("strat", strategy="q")
        assert err.value.status == 400
        assert err.value.kind == "RepairError"


class TestConcurrency:
    N_THREADS = 8
    N_ROUNDS = 6

    def test_one_session_serializes_no_torn_state(self, client):
        """Threads hammer one session with apply+undo; the maintained
        violation set must land exactly where it started."""
        _fresh(client, "hammer")
        before = client.detect("hammer")
        failures: list = []

        def worker(thread_id: int) -> None:
            # insert-then-delete rather than insert-then-undo: with 8
            # threads interleaving, the 32-token LRU undo cache may evict
            # a token before its owner replays it (documented capacity
            # behavior) — explicit inverse edits keep the hammer about
            # delta-state integrity, not token retention
            try:
                for round_no in range(self.N_ROUNDS):
                    row = {
                        "dept": f"t{thread_id}",
                        "floor": 100 + thread_id * self.N_ROUNDS + round_no,
                    }
                    delta = client.apply(
                        "hammer",
                        {"ops": [
                            {"op": "insert", "relation": "emp", "row": row}
                        ]},
                    )
                    assert delta["remaining"] >= before["total"]
                    back = client.apply(
                        "hammer",
                        {"ops": [
                            {"op": "delete", "relation": "emp", "row": row}
                        ]},
                    )
                    assert back["remaining"] >= before["total"]
            except Exception as exc:  # surfaced after join
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures
        after = client.detect("hammer")
        assert after == before
        assert client.session_info("hammer")["relations"] == {"emp": 3}
        assert (
            client.session_info("hammer")["requests"]
            >= self.N_THREADS * self.N_ROUNDS * 2
        )

    def test_distinct_sessions_run_in_parallel(self, client):
        """Concurrent traffic against distinct sessions stays isolated:
        every session's detect sees only its own edits."""
        ids = [f"iso-{i}" for i in range(self.N_THREADS)]
        for i, session_id in enumerate(ids):
            rows = ROWS + [
                {"dept": f"only-{i}", "floor": 50 + i},
            ]
            _fresh(client, session_id, rows=rows)
        results: dict = {}
        failures: list = []

        def worker(i: int) -> None:
            try:
                session_id = ids[i]
                for _ in range(self.N_ROUNDS):
                    client.apply(
                        session_id,
                        {"ops": [
                            {
                                "op": "insert",
                                "relation": "emp",
                                "row": {"dept": f"only-{i}", "floor": 999},
                            }
                        ]},
                    )
                    client.apply(
                        session_id,
                        {"ops": [
                            {
                                "op": "delete",
                                "relation": "emp",
                                "row": {"dept": f"only-{i}", "floor": 999},
                            }
                        ]},
                    )
                results[i] = client.detect(ids[i])
            except Exception as exc:
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures
        for i in range(self.N_THREADS):
            # each session still has exactly its own FD violation; the
            # per-session "only-i" dept never leaked anywhere else
            assert results[i]["total"] == 1
            info = client.session_info(ids[i])
            assert info["relations"] == {"emp": 4}
        for session_id in ids:
            client.delete_session(session_id)


class TestEvictionAndMetrics:
    def test_lru_eviction_closes_oldest(self):
        server = make_server(port=0, max_sessions=2)
        server.start_background()
        try:
            client = ServerClient(base_url=server.base_url)
            client.wait_ready()
            for session_id in ("a", "b", "c"):
                client.create_session(
                    schema=SCHEMA_DOC,
                    rules=RULES_DOC,
                    data={"emp": ROWS},
                    session_id=session_id,
                )
            open_ids = {s["session"] for s in client.list_sessions()}
            assert open_ids == {"b", "c"}
            with pytest.raises(ServerError) as err:
                client.detect("a")
            assert err.value.status == 404
            # touching "b" makes "c" the LRU victim of the next create
            client.detect("b")
            client.create_session(
                schema=SCHEMA_DOC, rules=RULES_DOC,
                data={"emp": ROWS}, session_id="d",
            )
            open_ids = {s["session"] for s in client.list_sessions()}
            assert open_ids == {"b", "d"}
            assert client.metrics()["sessions"]["evicted_total"] == 2
        finally:
            server.shutdown()

    def test_metrics_track_requests_and_warm_engines(self):
        server = make_server(port=0)
        server.start_background()
        try:
            client = ServerClient(base_url=server.base_url)
            client.wait_ready()
            client.create_session(
                schema=SCHEMA_DOC, rules=RULES_DOC,
                data={"emp": ROWS}, session_id="m",
            )
            client.detect("m")
            client.apply(
                "m",
                {"ops": [
                    {
                        "op": "insert",
                        "relation": "emp",
                        "row": {"dept": "qa", "floor": 7},
                    }
                ]},
            )
            # the /metrics request itself is recorded only after it responds
            metrics = client.metrics()
            assert metrics["requests_total"] >= 3
            detect_stats = metrics["endpoints"]["POST /sessions/{id}/detect"]
            assert detect_stats["count"] == 1
            assert detect_stats["seconds_total"] > 0
            assert detect_stats["seconds_max"] >= detect_stats["seconds_avg"]
            assert metrics["responses"]["200"] >= 2
            assert metrics["responses"]["201"] == 1
            engines = metrics["engines"]
            assert engines["warm_delta_engines"] == 1
            assert engines["delta_stats"]["batches"] == 1
            assert engines["delta_stats"]["ops_applied"] == 1
            assert metrics["sessions"]["open"] == 1
        finally:
            server.shutdown()

    def test_eviction_drops_warm_engine_state(self, client):
        """DELETE closes the session: Session.close() released the engine."""
        _fresh(client, "evict")
        client.apply(
            "evict",
            {"ops": [
                {
                    "op": "insert",
                    "relation": "emp",
                    "row": {"dept": "qa", "floor": 8},
                }
            ]},
        )
        assert client.session_info("evict")["warm_engine"] is True
        client.delete_session("evict")
        with pytest.raises(ServerError):
            client.session_info("evict")


class TestChangesetWireFormat:
    def test_round_trip_through_registry(self):
        changeset = (
            Changeset()
            .insert("emp", {"dept": "a", "floor": 1})
            .delete("emp", {"dept": "b", "floor": 2})
            .update("emp", {"dept": "c", "floor": 3}, floor=4)
        )
        document = changeset_to_dict(changeset)
        assert [op["op"] for op in document["ops"]] == [
            "insert",
            "delete",
            "update",
        ]
        assert document["ops"][2]["cells"] == {"floor": 4}
        rebuilt = changeset_from_dict(json.loads(json.dumps(document)))
        assert changeset_to_dict(rebuilt) == document

    def test_update_cells_may_shadow_parameter_names(self):
        """Attributes literally named 'relation' or 't' must survive the
        wire format (no **kwargs collision with Changeset.update)."""
        document = {
            "ops": [
                {
                    "op": "update",
                    "relation": "r",
                    "row": {"relation": "a", "t": 1},
                    "cells": {"relation": "b", "t": 2},
                }
            ]
        }
        rebuilt = changeset_from_dict(document)
        assert changeset_to_dict(rebuilt) == document

    def test_undo_changesets_serialize_from_tuples(self):
        db = _local_db()
        session = Session.from_instance(db, _local_rules())
        delta = session.apply(
            Changeset().insert("emp", {"dept": "qa", "floor": 9})
        )
        document = changeset_to_dict(delta.undo)
        assert document == {
            "ops": [
                {
                    "op": "delete",
                    "relation": "emp",
                    "row": {"dept": "qa", "floor": 9},
                }
            ]
        }


class TestDataRootConfinement:
    """Server-side paths (schema/rules/CSV) must stay inside --data-root:
    neither `..` traversal, absolute paths, nor symlinks may escape it."""

    @pytest.fixture()
    def confined(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        (root / "schema.json").write_text(json.dumps(SCHEMA_DOC))
        (root / "rules.json").write_text(json.dumps(RULES_DOC))
        (root / "emp.csv").write_text(
            "dept,floor\n" + "\n".join(f"{r['dept']},{r['floor']}" for r in ROWS)
        )
        # a perfectly readable file one level above the root — the attack
        # target; any test that manages to load it has found the bug
        (tmp_path / "outside.json").write_text(json.dumps(SCHEMA_DOC))
        server = make_server(port=0, data_root=root)
        server.start_background()
        client = ServerClient(base_url=server.base_url)
        client.wait_ready()
        yield client, root, tmp_path
        server.shutdown()

    def test_inside_paths_resolve(self, confined):
        client, _, _ = confined
        info = client.create_session(
            schema="schema.json",
            rules="rules.json",
            data={"emp": "emp.csv"},
            session_id="inside",
        )
        assert info["relations"] == {"emp": 3}

    def test_relative_traversal_rejected(self, confined):
        client, _, _ = confined
        with pytest.raises(ServerError) as err:
            client.create_session(schema="../outside.json", session_id="esc")
        assert err.value.status == 400
        assert "../outside.json" in str(err.value)
        assert "escapes the data root" in str(err.value)

    def test_deep_traversal_in_data_rejected(self, confined):
        client, _, _ = confined
        with pytest.raises(ServerError) as err:
            client.create_session(
                schema="schema.json",
                data={"emp": "sub/../../outside.json"},
                session_id="esc2",
            )
        assert err.value.status == 400
        assert "escapes the data root" in str(err.value)

    def test_absolute_path_rejected(self, confined):
        client, _, tmp_path = confined
        for target in ("/etc/passwd", str(tmp_path / "outside.json")):
            with pytest.raises(ServerError) as err:
                client.create_session(schema=target, session_id="abs")
            assert err.value.status == 400
            assert "escapes the data root" in str(err.value)

    def test_symlink_escape_rejected(self, confined):
        client, root, tmp_path = confined
        link = root / "innocent.json"
        try:
            link.symlink_to(tmp_path / "outside.json")
        except OSError:
            pytest.skip("filesystem does not support symlinks")
        with pytest.raises(ServerError) as err:
            client.create_session(schema="innocent.json", session_id="sym")
        assert err.value.status == 400
        assert "escapes the data root" in str(err.value)

    def test_absolute_path_inside_root_still_works(self, confined):
        client, root, _ = confined
        info = client.create_session(
            schema=str(root / "schema.json"), session_id="absin"
        )
        assert info["relations"] == {"emp": 0}


class TestUndoTokenTable:
    """The undo-token OrderedDict is an LRU keyed by *creation* order; a
    failed replay must not promote its token to the MRU end (that would
    silently change which token the capacity bound evicts next)."""

    def _hosted(self, n_tokens: int = 3):
        from repro.server import HostedSession

        session = Session.from_instance(_local_db(), _local_rules())
        hosted = HostedSession("t", session)
        tokens = []
        for i in range(n_tokens):
            delta = session.apply(
                Changeset().insert("emp", {"dept": f"u{i}", "floor": 300 + i})
            )
            tokens.append(hosted.remember_undo(delta.undo))
        return hosted, tokens

    def test_peek_does_not_reorder(self):
        hosted, tokens = self._hosted()
        hosted.peek_undo(tokens[0])
        hosted.peek_undo(tokens[1])
        assert list(hosted._undo) == tokens

    def test_consume_retires_token(self):
        from repro.errors import ReproError

        hosted, tokens = self._hosted()
        hosted.peek_undo(tokens[1])
        hosted.consume_undo(tokens[1])
        with pytest.raises(ReproError):
            hosted.peek_undo(tokens[1])
        assert list(hosted._undo) == [tokens[0], tokens[2]]

    def test_capacity_evicts_in_creation_order_after_peek(self):
        """Regression: peeking (a failed replay) must leave the oldest
        token as the next capacity victim."""
        from repro.server import MAX_UNDO_TOKENS

        hosted, tokens = self._hosted(MAX_UNDO_TOKENS)
        hosted.peek_undo(tokens[0])  # pre-fix this promoted tokens[0]
        delta = hosted.session.apply(
            Changeset().insert("emp", {"dept": "over", "floor": 999})
        )
        hosted.remember_undo(delta.undo)
        assert tokens[0] not in hosted._undo  # oldest evicted, not tokens[1]
        assert tokens[1] in hosted._undo

    def test_failed_undo_over_http_keeps_token_and_order(
        self, client, server, monkeypatch
    ):
        from repro.errors import ReproError

        _fresh(client, "ord")
        tokens = []
        for i in range(3):
            delta = client.apply(
                "ord",
                {"ops": [
                    {
                        "op": "insert",
                        "relation": "emp",
                        "row": {"dept": f"o{i}", "floor": 200 + i},
                    }
                ]},
            )
            tokens.append(delta["undo_token"])

        def boom(self, changeset):
            raise ReproError("induced replay failure")

        with monkeypatch.context() as patch:
            patch.setattr(Session, "apply", boom)
            with pytest.raises(ServerError) as err:
                client.undo("ord", tokens[0])
            assert err.value.status == 400
            assert "induced replay failure" in str(err.value)
        # the failed replay burned nothing and reordered nothing
        assert client.session_info("ord")["undo_tokens"] == tokens
        # and the token is still replayable once the failure clears
        replay = client.undo("ord", tokens[0])
        assert "undo_token" in replay


def _local_db():
    from repro.relational.instance import DatabaseInstance
    from repro.rules_json import database_schema_from_dict

    db = DatabaseInstance(database_schema_from_dict(SCHEMA_DOC))
    for row in ROWS:
        db.relation("emp").add(row)
    return db


def _local_rules():
    from repro.rules_json import rules_from_list

    return rules_from_list(RULES_DOC)
