"""The shipped examples/fixtures: every registered class, file-driven.

These fixtures are what the CI packaging job smoke-runs the ``repro``
console script against; here the same invocations go through ``main()``
directly, plus the acceptance check that a rules document containing at
least one of each dependency class loads, detects, and round-trips
byte-stably.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.rules_json import (
    database_schema_from_dict,
    load_database_schema,
    rules_from_list,
    rules_to_list,
)
from repro.session import Session

FIXTURES = Path(__file__).resolve().parent.parent / "examples" / "fixtures"
DATA_ARGS = [
    f"customer={FIXTURES / 'customer.csv'}",
    f"orders={FIXTURES / 'orders.csv'}",
]


@pytest.fixture
def schema():
    return load_database_schema(FIXTURES / "schema.json")


@pytest.fixture
def rule_documents():
    return json.loads((FIXTURES / "rules.json").read_text())


class TestFixtureRules:
    def test_one_rule_of_each_class(self, rule_documents):
        tags = {doc["type"] for doc in rule_documents}
        assert {"fd", "cfd", "ecfd", "ind", "cind", "denial"} <= tags

    def test_round_trip_is_byte_stable(self, schema, rule_documents):
        rules = rules_from_list(rule_documents, schema)
        assert json.dumps(rules_to_list(rules), indent=2) == json.dumps(
            rule_documents, indent=2
        )

    def test_session_loads_and_detects(self):
        session = Session.from_files(
            FIXTURES / "schema.json",
            FIXTURES / "rules.json",
            {
                "customer": FIXTURES / "customer.csv",
                "orders": FIXTURES / "orders.csv",
            },
        )
        report = session.detect()
        assert report.total > 0
        per_dep = report.to_dict()["per_dependency"]
        # the planted errors: one FD clash, eCFD area-code misses, one
        # dangling order, two orders failing the CIND's EDI pattern
        assert per_dep["nyc-area-codes"] >= 1
        assert per_dep["uk-orders-need-edi-customers"] == 2


class TestFixtureCli:
    def _base(self, command):
        return [
            command,
            "--schema", str(FIXTURES / "schema.json"),
            "--rules", str(FIXTURES / "rules.json"),
        ]

    def test_detect_flags_the_fixture_errors(self, capsys):
        code = main(self._base("detect") + DATA_ARGS)
        assert code == 1
        assert "violations" in capsys.readouterr().out

    def test_detect_json_format(self, capsys):
        code = main(self._base("detect") + ["--format", "json"] + DATA_ARGS)
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["total"] >= 5
        assert document["per_dependency"]["uk-orders-need-edi-customers"] == 2

    def test_stream_verify_over_multi_relation_fixtures(self, capsys):
        code = main(
            self._base("stream")
            + ["--verify", "--batches", "3", "--batch-size", "5", "--seed", "3"]
            + DATA_ARGS
        )
        captured = capsys.readouterr()
        assert "verified against full re-detection" in captured.err
        assert code in (0, 1)

    def test_stream_json_format(self, capsys):
        code = main(
            self._base("stream")
            + ["--format", "json", "--batches", "2", "--batch-size", "4"]
            + DATA_ARGS
        )
        document = json.loads(capsys.readouterr().out)
        assert len(document["batches"]) == 2
        assert code == (1 if document["final_violations"] else 0)

    def test_single_path_with_multi_relation_schema_fails_clearly(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError, match="relation: path"):
            main(self._base("detect") + [str(FIXTURES / "customer.csv")])


def test_schema_document_round_trip(schema):
    from repro.rules_json import database_schema_to_dict

    assert database_schema_from_dict(database_schema_to_dict(schema)) == schema
