"""Public-API smoke tests: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.relational",
    "repro.deps",
    "repro.cfd",
    "repro.cind",
    "repro.md",
    "repro.repair",
    "repro.cqa",
    "repro.propagation",
    "repro.condensed",
    "repro.workloads",
]

MODULES = PACKAGES + [
    "repro.paper",
    "repro.errors",
    "repro.cli",
    "repro.rules_json",
    "repro.registry",
    "repro.session",
    "repro.relational.algebra",
    "repro.relational.csvio",
    "repro.relational.predicates",
    "repro.relational.query",
    "repro.deps.armstrong",
    "repro.deps.normalize",
    "repro.cfd.normal_form",
    "repro.cfd.inference",
    "repro.md.dedup",
    "repro.md.blocking",
    "repro.repair.master",
    "repro.cqa.aggregates",
    "repro.propagation.derive",
    "repro.condensed.wsd",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    """Every public class/function reachable from a package __all__ has a
    docstring — the deliverable's 'doc comments on every public item'."""
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if callable(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"
