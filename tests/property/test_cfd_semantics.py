"""Property tests: CFD machinery against brute-force definitions.

These tests pin the semantics: the optimized detectors, the consistency
witnesses and the implication procedure must agree with the literal
paper definitions evaluated naively on random small instances.
"""

from typing import Any, Dict, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.consistency import find_witness_tuple
from repro.cfd.implication import cfd_implies
from repro.cfd.model import CFD, UNNAMED, PatternTableau
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema

ATTRS = ("A", "B", "C")
VALUES = ("u", "v", "w")


def _schema() -> RelationSchema:
    return RelationSchema("R", [(a, STRING) for a in ATTRS])


@st.composite
def instances(draw):
    rows = draw(
        st.lists(
            st.tuples(*[st.sampled_from(VALUES) for _ in ATTRS]),
            min_size=0,
            max_size=6,
        )
    )
    db = DatabaseInstance(DatabaseSchema([_schema()]))
    for row in rows:
        db.relation("R").add(row)
    return db


@st.composite
def cfds(draw):
    lhs = draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2, unique=True))
    rhs_pool = [a for a in ATTRS if a not in lhs]
    if not rhs_pool:
        rhs_pool = list(ATTRS)
    rhs = [draw(st.sampled_from(rhs_pool))]
    n_rows = draw(st.integers(1, 2))
    rows = []
    for _ in range(n_rows):
        row: Dict[str, Any] = {}
        for a in list(lhs) + rhs:
            cell = draw(st.sampled_from(VALUES + ("_",)))
            row[a] = UNNAMED if cell == "_" else cell
        rows.append(row)
    attrs = tuple(lhs) + tuple(a for a in rhs if a not in lhs)
    return CFD("R", lhs, rhs, PatternTableau(attrs, rows))


def _brute_force_satisfies(db: DatabaseInstance, cfd: CFD) -> bool:
    """The literal §2.1 definition: quantify over rows and tuple pairs."""
    tuples = db.relation("R").tuples()
    lhs, rhs = list(cfd.lhs), list(cfd.rhs)
    for tp in cfd.tableau:
        for t1 in tuples:
            for t2 in tuples:
                lhs_eq = t1[lhs] == t2[lhs]
                lhs_match = tp.matches_tuple(t1, lhs)
                if lhs_eq and lhs_match:
                    if t1[rhs] != t2[rhs]:
                        return False
                    if not tp.matches_tuple(t1, rhs):
                        return False
    return True


class TestDetectorAgreesWithDefinition:
    @given(instances(), cfds())
    @settings(max_examples=150, deadline=None)
    def test_holds_on_matches_brute_force(self, db, cfd):
        assert cfd.holds_on(db) == _brute_force_satisfies(db, cfd)

    @given(instances(), cfds())
    @settings(max_examples=80, deadline=None)
    def test_violation_witnesses_are_genuine(self, db, cfd):
        for violation in cfd.violations(db):
            witness_db = DatabaseInstance(DatabaseSchema([_schema()]))
            for _, t in violation.tuples:
                witness_db.relation("R").add(t)
            assert not _brute_force_satisfies(witness_db, cfd)


class TestConsistencyWitness:
    @given(st.lists(cfds(), min_size=1, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_witness_satisfies_sigma(self, sigma):
        witness = find_witness_tuple(_schema(), sigma)
        if witness is None:
            return
        db = DatabaseInstance(DatabaseSchema([_schema()]))
        db.relation("R").add(witness)
        for cfd in sigma:
            assert _brute_force_satisfies(db, cfd)

    @given(st.lists(cfds(), min_size=1, max_size=3), instances())
    @settings(max_examples=80, deadline=None)
    def test_inconsistent_sigma_has_no_model(self, sigma, db):
        """If the checker says inconsistent, no nonempty random instance
        can satisfy all of Σ."""
        if find_witness_tuple(_schema(), sigma) is not None:
            return
        if db.is_empty():
            return
        assert not all(_brute_force_satisfies(db, cfd) for cfd in sigma)


class TestImplicationSemantics:
    @given(st.lists(cfds(), min_size=1, max_size=2), cfds(), instances())
    @settings(max_examples=100, deadline=None)
    def test_implication_transfers_to_instances(self, sigma, target, db):
        """Σ ⊨ φ means every random instance satisfying Σ satisfies φ."""
        if not cfd_implies(_schema(), sigma, target):
            return
        if all(_brute_force_satisfies(db, c) for c in sigma):
            assert _brute_force_satisfies(db, target)

    @given(st.lists(cfds(), min_size=1, max_size=2), cfds())
    @settings(max_examples=60, deadline=None)
    def test_counterexample_is_sound(self, sigma, target):
        from repro.cfd.implication import find_counterexample

        counter = find_counterexample(_schema(), sigma, target)
        if counter is None:
            return
        db = DatabaseInstance(DatabaseSchema([_schema()]))
        for t in counter:
            db.relation("R").add(t)
        assert all(_brute_force_satisfies(db, c) for c in sigma)
        assert not _brute_force_satisfies(db, target)
