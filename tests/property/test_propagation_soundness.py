"""Property tests: propagation answers are sound on concrete data.

If the symbolic procedure says Σ ⊨σ φ, then for every random source
database satisfying Σ the materialized view must satisfy φ — the
semantic definition of §4.1, checked end-to-end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.model import CFD, UNNAMED, PatternTableau
from repro.deps.base import holds
from repro.deps.fd import FD
from repro.propagation.derive import derive_view_cfds
from repro.propagation.propagate import propagates
from repro.propagation.views import tagged_union_view
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

VALUES = ("p", "q", "r")


def _sources():
    attrs = [("X", STRING), ("Y", STRING)]
    return DatabaseSchema(
        [RelationSchema("S1", attrs), RelationSchema("S2", attrs)]
    )


@st.composite
def satisfying_sources(draw):
    """Random instances repaired on the fly to satisfy X → Y per source."""
    schema = _sources()
    db = DatabaseInstance(schema)
    for relation in ("S1", "S2"):
        mapping = {}
        rows = draw(
            st.lists(st.sampled_from(VALUES), min_size=0, max_size=5)
        )
        for x in rows:
            y = mapping.setdefault(x, draw(st.sampled_from(VALUES)))
            db.relation(relation).add((x, y))
    return db


class TestSoundnessOnConcreteData:
    @given(satisfying_sources())
    @settings(max_examples=80, deadline=None)
    def test_derived_cfds_hold_on_materialized_view(self, db):
        schema = _sources()
        view = tagged_union_view(
            [("S1", 1), ("S2", 2)], Attribute("T", INT)
        )
        sigma = [FD("S1", ["X"], ["Y"]), FD("S2", ["X"], ["Y"])]
        assert holds(db, sigma)
        derived = derive_view_cfds(schema, sigma, view)
        materialized = view.evaluate(db)
        view_db = DatabaseInstance(
            DatabaseSchema([materialized.schema]),
            {materialized.schema.name: materialized.tuples()},
        )
        for cfd in derived:
            assert cfd.holds_on(view_db), cfd

    @given(satisfying_sources())
    @settings(max_examples=60, deadline=None)
    def test_propagates_transfers_to_instances(self, db):
        """Any candidate declared propagated holds on any Σ-satisfying
        source database's view."""
        schema = _sources()
        view = tagged_union_view(
            [("S1", 1), ("S2", 2)], Attribute("T", INT)
        )
        sigma = [FD("S1", ["X"], ["Y"]), FD("S2", ["X"], ["Y"])]
        name = view.output_schema(schema).name
        candidates = [
            CFD(name, ["X"], ["Y"], PatternTableau(("X", "Y"), [{"X": UNNAMED, "Y": UNNAMED}])),
            CFD(name, ["X", "T"], ["Y"], PatternTableau(("X", "T", "Y"), [{"X": UNNAMED, "T": 1, "Y": UNNAMED}])),
            CFD(name, ["T"], ["Y"], PatternTableau(("T", "Y"), [{"T": 2, "Y": UNNAMED}])),
        ]
        materialized = view.evaluate(db)
        view_db = DatabaseInstance(
            DatabaseSchema([materialized.schema]),
            {materialized.schema.name: materialized.tuples()},
        )
        for candidate in candidates:
            if propagates(schema, sigma, view, candidate):
                assert candidate.holds_on(view_db), candidate

    def test_exactness_witness_for_unpropagated(self):
        """The unconditional X → Y genuinely fails on some view: the two
        branches can map the same X to different Y."""
        schema = _sources()
        view = tagged_union_view(
            [("S1", 1), ("S2", 2)], Attribute("T", INT)
        )
        sigma = [FD("S1", ["X"], ["Y"]), FD("S2", ["X"], ["Y"])]
        name = view.output_schema(schema).name
        unconditional = CFD(
            name, ["X"], ["Y"],
            PatternTableau(("X", "Y"), [{"X": UNNAMED, "Y": UNNAMED}]),
        )
        assert not propagates(schema, sigma, view, unconditional)
        db = DatabaseInstance(schema)
        db.relation("S1").add(("p", "q"))
        db.relation("S2").add(("p", "r"))
        assert holds(db, sigma)
        materialized = view.evaluate(db)
        view_db = DatabaseInstance(
            DatabaseSchema([materialized.schema]),
            {materialized.schema.name: materialized.tuples()},
        )
        assert not unconditional.holds_on(view_db)
