"""Property tests: every CFD inference rule application is sound.

The inference system of Theorem 4.6 must never derive something the
semantics rejects; these tests fuzz the rule constructors against the
exact decision procedure.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.implication import cfd_implies
from repro.cfd.inference import (
    augmentation,
    derive_cfd,
    instantiation,
    rhs_weakening,
    transitivity,
)
from repro.cfd.model import CFD, UNNAMED, PatternTableau
from repro.relational.domains import STRING
from repro.relational.schema import RelationSchema

ATTRS = ("A", "B", "C")
VALUES = ("u", "v")


def _schema():
    return RelationSchema("R", [(a, STRING) for a in ATTRS])


@st.composite
def single_row_cfds(draw):
    lhs = draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2, unique=True))
    rhs_pool = [a for a in ATTRS if a not in lhs] or list(ATTRS)
    rhs = [draw(st.sampled_from(rhs_pool))]
    row = {}
    for a in list(lhs) + rhs:
        cell = draw(st.sampled_from(VALUES + ("_",)))
        row[a] = UNNAMED if cell == "_" else cell
    attrs = tuple(lhs) + tuple(a for a in rhs if a not in lhs)
    return CFD("R", lhs, rhs, PatternTableau(attrs, [row]))


class TestRuleSoundnessFuzzed:
    @given(single_row_cfds(), st.sampled_from(ATTRS))
    @settings(max_examples=60, deadline=None)
    def test_augmentation_sound(self, cfd, attr):
        derived = augmentation(cfd, attr)
        assert cfd_implies(_schema(), [cfd], derived)

    @given(single_row_cfds(), st.sampled_from(VALUES))
    @settings(max_examples=60, deadline=None)
    def test_instantiation_sound(self, cfd, constant):
        row = cfd.tableau.rows[0]
        wildcard_lhs = [a for a in cfd.lhs if row.get(a) is UNNAMED]
        if not wildcard_lhs:
            return
        derived = instantiation(cfd, wildcard_lhs[0], constant)
        assert cfd_implies(_schema(), [cfd], derived)

    @given(single_row_cfds())
    @settings(max_examples=60, deadline=None)
    def test_rhs_weakening_sound(self, cfd):
        derived = rhs_weakening(cfd, cfd.rhs[0])
        assert cfd_implies(_schema(), [cfd], derived)

    @given(single_row_cfds(), single_row_cfds())
    @settings(max_examples=120, deadline=None)
    def test_transitivity_sound(self, first, second):
        derived = transitivity(first, second)
        if derived is None:
            return
        assert cfd_implies(_schema(), [first, second], derived), (
            first,
            second,
            derived,
        )

    @given(st.lists(single_row_cfds(), min_size=1, max_size=3), single_row_cfds())
    @settings(max_examples=60, deadline=None)
    def test_derivation_engine_sound(self, sigma, target):
        derivation = derive_cfd(_schema(), sigma, target, max_steps=150)
        if derivation is None:
            return
        # a successful derivation certifies semantic implication
        assert cfd_implies(_schema(), sigma, target)
