"""Property tests: every registered constraint class survives the registry.

Hypothesis generates randomized schemas and constraint instances of every
built-in class; ``decode(encode(x))`` must reproduce the object and a
second ``encode`` must reproduce the document byte for byte (the canonical
form the fixtures and ``Session.save_rules`` rely on).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.cfd.ecfd import ECFD, SetPattern
from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.deps.denial import DenialConstraint
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.errors import DependencyError
from repro.relational.predicates import And, Comparison, InSet, Not, Or
from repro.rules_json import rules_from_list, rules_to_list

R_ATTRS = ("A0", "A1", "A2", "A3")
S_ATTRS = ("X0", "X1", "X2")
VALUES = ("a", "b", "c", 1, 2)


@st.composite
def _split(draw, attrs, max_lhs=2):
    """A disjoint (lhs, rhs) pair over ``attrs``."""
    pool = list(attrs)
    lhs = draw(
        st.lists(st.sampled_from(pool), min_size=1, max_size=max_lhs, unique=True)
    )
    rest = [a for a in pool if a not in lhs]
    rhs = draw(st.lists(st.sampled_from(rest), min_size=1, max_size=2, unique=True))
    return lhs, rhs


@st.composite
def fds(draw):
    lhs, rhs = draw(_split(R_ATTRS))
    return FD("R", lhs, rhs)


@st.composite
def cfds(draw):
    lhs, rhs = draw(_split(R_ATTRS))
    attrs = lhs + [a for a in rhs if a not in lhs]
    rows = draw(
        st.lists(
            st.fixed_dictionaries(
                {a: st.sampled_from((UNNAMED,) + VALUES) for a in attrs}
            ),
            min_size=1,
            max_size=3,
        )
    )
    return CFD("R", lhs, rhs, rows)


@st.composite
def set_patterns(draw):
    values = draw(st.lists(st.sampled_from(VALUES), min_size=1, max_size=3, unique=True))
    return SetPattern(values, negated=draw(st.booleans()))


@st.composite
def ecfds(draw):
    lhs, rhs = draw(_split(R_ATTRS))
    pattern = {}
    for a in lhs + rhs:
        if draw(st.booleans()):
            pattern[a] = draw(set_patterns())
    return ECFD("R", lhs, rhs, pattern)


@st.composite
def inds(draw):
    width = draw(st.integers(1, min(len(R_ATTRS), len(S_ATTRS))))
    lhs = draw(st.permutations(R_ATTRS))[:width]
    rhs = draw(st.permutations(S_ATTRS))[:width]
    return IND("R", lhs, "S", rhs)


@st.composite
def cinds(draw):
    width = draw(st.integers(1, 2))
    lhs = draw(st.permutations(R_ATTRS))[:width]
    rhs = draw(st.permutations(S_ATTRS))[:width]
    lhs_free = [a for a in R_ATTRS if a not in lhs]
    rhs_free = [a for a in S_ATTRS if a not in rhs]
    lhs_pat = draw(st.lists(st.sampled_from(lhs_free), max_size=2, unique=True)) if lhs_free else []
    rhs_pat = draw(st.lists(st.sampled_from(rhs_free), max_size=2, unique=True)) if rhs_free else []
    n_rows = draw(st.integers(1, 2))
    rows = []
    for _ in range(n_rows):
        row = {f"L.{a}": draw(st.sampled_from(VALUES)) for a in lhs_pat}
        row.update({f"R.{a}": draw(st.sampled_from(VALUES)) for a in rhs_pat})
        rows.append(row)
    return CIND(
        "R", lhs, "S", rhs,
        lhs_pattern_attrs=lhs_pat,
        rhs_pattern_attrs=rhs_pat,
        tableau=rows,
    )


@st.composite
def conditions(draw, depth=2):
    def leaf():
        kind = draw(st.integers(0, 1))
        if kind == 0:
            return Comparison(
                f"@t0.{draw(st.sampled_from(R_ATTRS))}",
                draw(st.sampled_from(("=", "!=", "<", "<=", ">", ">="))),
                draw(
                    st.one_of(
                        st.sampled_from(VALUES),
                        st.sampled_from(R_ATTRS).map(lambda a: f"@t1.{a}"),
                    )
                ),
            )
        return InSet(
            f"@t0.{draw(st.sampled_from(R_ATTRS))}",
            draw(st.lists(st.sampled_from(VALUES), min_size=1, max_size=3, unique=True)),
            negated=draw(st.booleans()),
        )

    if depth == 0 or draw(st.booleans()):
        return leaf()
    parts = [draw(conditions(depth=depth - 1)) for _ in range(draw(st.integers(1, 2)))]
    combiner = draw(st.sampled_from(("and", "or", "not")))
    if combiner == "and":
        return And(parts)
    if combiner == "or":
        return Or(parts)
    return Not(parts[0])


@st.composite
def denials(draw):
    return DenialConstraint(
        ["R"] * draw(st.integers(1, 2)) + (["S"] if draw(st.booleans()) else []),
        draw(conditions()),
    )


ALL_CLASSES = st.one_of(fds(), cfds(), ecfds(), inds(), cinds(), denials())


@given(dep=ALL_CLASSES)
@settings(max_examples=200, deadline=None)
def test_every_registered_class_round_trips(dep):
    document = registry.encode(dep)
    json.loads(json.dumps(document, default=str))  # JSON-representable
    decoded = registry.decode(document)
    assert decoded == dep
    assert registry.encode(decoded) == document  # canonical / byte-stable


@given(deps=st.lists(ALL_CLASSES, min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_rules_list_round_trips(deps):
    documents = rules_to_list(deps)
    assert rules_from_list(documents) == deps
    assert rules_to_list(rules_from_list(documents)) == documents


def test_unknown_tag_lists_registered_tags():
    with pytest.raises(DependencyError) as excinfo:
        rules_from_list([{"type": "mystery"}])
    message = str(excinfo.value)
    assert "rule #0" in message
    for tag in registry.registered_tags():
        assert tag in message


def test_unregistered_class_cannot_serialize():
    class Mystery:
        pass

    with pytest.raises(DependencyError):
        registry.encode(Mystery())


def test_custom_registration_is_pluggable():
    """A user-registered class becomes file-loadable immediately."""

    class Tagged(FD):
        """An FD subclass standing in for a downstream extension."""

    codec = registry.ConstraintCodec(
        "tagged-fd",
        Tagged,
        lambda fd: {"relation": fd.relation_name, "lhs": list(fd.lhs), "rhs": list(fd.rhs)},
        lambda doc: Tagged(doc["relation"], doc["lhs"], doc["rhs"]),
    )
    registry.register_constraint(codec)
    try:
        dep = Tagged("R", ["A0"], ["A1"])
        assert registry.encode(dep)["type"] == "tagged-fd"
        assert rules_from_list(rules_to_list([dep])) == [dep]
        assert "tagged-fd" in registry.registered_tags()
    finally:
        registry._REGISTRY.pop("tagged-fd", None)
