"""Property tests: repair algorithms against their definitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.model import CFD, UNNAMED, PatternTableau
from repro.deps.base import holds
from repro.deps.fd import FD
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.checking import is_x_repair
from repro.repair.urepair import repair_cfds
from repro.repair.xrepair import all_x_repairs, greedy_x_repair

ATTRS = ("A", "B", "C")
VALUES = ("u", "v", "w")


def _schema():
    return RelationSchema("R", [(a, STRING) for a in ATTRS])


@st.composite
def instances(draw):
    rows = draw(
        st.lists(
            st.tuples(*[st.sampled_from(VALUES) for _ in ATTRS]),
            min_size=1,
            max_size=6,
        )
    )
    db = DatabaseInstance(DatabaseSchema([_schema()]))
    for row in rows:
        db.relation("R").add(row)
    return db


@st.composite
def fd_sets(draw):
    n = draw(st.integers(1, 2))
    out = []
    for _ in range(n):
        lhs = draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2, unique=True))
        rhs = [draw(st.sampled_from([a for a in ATTRS if a not in lhs] or list(ATTRS)))]
        out.append(FD("R", lhs, rhs))
    return out


class TestXRepairProperties:
    @given(instances(), fd_sets())
    @settings(max_examples=80, deadline=None)
    def test_greedy_output_is_always_an_x_repair(self, db, fds):
        repaired = greedy_x_repair(db, fds)
        assert is_x_repair(db, repaired, fds)

    @given(instances(), fd_sets())
    @settings(max_examples=50, deadline=None)
    def test_enumeration_complete_and_sound(self, db, fds):
        repairs = all_x_repairs(db, fds)
        assert repairs
        for repair in repairs:
            assert is_x_repair(db, repair, fds)
        # the greedy repair must appear in the exhaustive space
        greedy = greedy_x_repair(db, fds)
        signatures = {
            frozenset(t.values() for t in r.relation("R")) for r in repairs
        }
        assert frozenset(t.values() for t in greedy.relation("R")) in signatures

    @given(instances(), fd_sets())
    @settings(max_examples=50, deadline=None)
    def test_repairs_pairwise_incomparable(self, db, fds):
        repairs = all_x_repairs(db, fds)
        sets = [frozenset(t for t in r.relation("R")) for r in repairs]
        for i, s1 in enumerate(sets):
            for s2 in sets[i + 1 :]:
                assert not (s1 < s2 or s2 < s1)


class TestURepairProperties:
    @st.composite
    @staticmethod
    def constant_cfds(draw):
        n = draw(st.integers(1, 2))
        out = []
        for _ in range(n):
            lhs_value = draw(st.sampled_from(VALUES))
            rhs_value = draw(st.sampled_from(VALUES))
            out.append(
                CFD(
                    "R", ["A"], ["B"],
                    PatternTableau(("A", "B"), [{"A": lhs_value, "B": rhs_value}]),
                )
            )
        return out

    @given(instances(), constant_cfds())
    @settings(max_examples=80, deadline=None)
    def test_resolved_repairs_are_consistent(self, db, cfds):
        result = repair_cfds(db, cfds, max_passes=10)
        if result.resolved:
            assert holds(result.repaired, cfds)

    @given(instances(), constant_cfds())
    @settings(max_examples=80, deadline=None)
    def test_change_log_accounts_for_every_edit(self, db, cfds):
        result = repair_cfds(db, cfds, max_passes=10)
        # every logged change has nonnegative cost and a real difference
        for change in result.changes:
            assert change.old != change.new
            assert change.cost >= 0

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_clean_input_is_fixed_point(self, db):
        fd_cfd = CFD(
            "R", ["A"], ["B"],
            PatternTableau(("A", "B"), [{"A": UNNAMED, "B": UNNAMED}]),
        )
        first = repair_cfds(db, [fd_cfd])
        if not first.resolved:
            return
        second = repair_cfds(first.repaired, [fd_cfd])
        assert second.changed_cells() == 0
