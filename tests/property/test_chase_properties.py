"""Property tests: the CIND chase and implication."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cind.chase import ChaseState, chase
from repro.cind.model import CIND
from repro.errors import AnalysisBoundExceeded
from repro.relational.domains import STRING
from repro.relational.schema import DatabaseSchema, RelationSchema

RELATIONS = ("R0", "R1", "R2", "R3")
SCHEMAS = {name: ("a", "b") for name in RELATIONS}


def _db_schema():
    return DatabaseSchema(
        [RelationSchema(name, [("a", STRING), ("b", STRING)]) for name in RELATIONS]
    )


@st.composite
def acyclic_cinds(draw):
    """CINDs whose relation edges only go forward R_i → R_j (i < j)."""
    n = draw(st.integers(1, 4))
    out = []
    for _ in range(n):
        i = draw(st.integers(0, len(RELATIONS) - 2))
        j = draw(st.integers(i + 1, len(RELATIONS) - 1))
        with_pattern = draw(st.booleans())
        if with_pattern:
            out.append(
                CIND(
                    RELATIONS[i], ["a"], RELATIONS[j], ["a"],
                    lhs_pattern_attrs=["b"],
                    tableau=[{"b": draw(st.sampled_from(["x", "y"]))}],
                )
            )
        else:
            out.append(CIND(RELATIONS[i], ["a"], RELATIONS[j], ["a"]))
    return out


class TestChaseProperties:
    @given(acyclic_cinds(), st.sampled_from(["x", "y", "z"]))
    @settings(max_examples=80, deadline=None)
    def test_acyclic_chase_terminates_and_satisfies(self, cinds, seed_b):
        state = ChaseState()
        state.add_tuple("R0", {"a": "seed", "b": seed_b})
        chase(state, cinds, SCHEMAS, max_steps=500)
        # fixpoint: every applicable CIND has a witness
        for cind in cinds:
            for row in cind.tableau:
                lhs_pat = cind.lhs_pattern(row)
                rhs_pat = cind.rhs_pattern(row)
                for source in state.tuples(cind.lhs_relation):
                    if not all(source.get(k) == v for k, v in lhs_pat.items()):
                        continue
                    wanted = tuple(source[a] for a in cind.lhs_attrs)
                    assert any(
                        tuple(t[a] for a in cind.rhs_attrs) == wanted
                        and all(t[k] == v for k, v in rhs_pat.items())
                        for t in state.tuples(cind.rhs_relation)
                    )

    @given(acyclic_cinds())
    @settings(max_examples=60, deadline=None)
    def test_chase_monotone(self, cinds):
        """Chasing never removes tuples."""
        state = ChaseState()
        state.add_tuple("R0", {"a": "seed", "b": "x"})
        before = state.total_tuples()
        chase(state, cinds, SCHEMAS, max_steps=500)
        assert state.total_tuples() >= before

    @given(acyclic_cinds())
    @settings(max_examples=40, deadline=None)
    def test_implication_reflexive_on_sigma(self, cinds):
        from repro.cind.implication import cind_implies

        schema = _db_schema()
        for target in cinds:
            assert cind_implies(schema, cinds, target, max_steps=500)
