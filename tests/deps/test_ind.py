"""INDs: semantics, implication axioms, acyclicity."""

import pytest

from repro.deps.ind import IND, ind_implies, is_acyclic
from repro.errors import DependencyError
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


def _db(r_rows, s_rows):
    schema = DatabaseSchema(
        [
            RelationSchema("R", [("a", STRING), ("b", STRING)]),
            RelationSchema("S", [("c", STRING), ("d", STRING)]),
        ]
    )
    return DatabaseInstance(schema, {"R": r_rows, "S": s_rows})


class TestINDBasics:
    def test_arity_mismatch(self):
        with pytest.raises(DependencyError):
            IND("R", ["a", "b"], "S", ["c"])

    def test_empty_lists_rejected(self):
        with pytest.raises(DependencyError):
            IND("R", [], "S", [])

    def test_repeated_attributes_rejected(self):
        with pytest.raises(DependencyError):
            IND("R", ["a", "a"], "S", ["c", "d"])

    def test_equality(self):
        assert IND("R", ["a"], "S", ["c"]) == IND("R", ["a"], "S", ["c"])
        assert IND("R", ["a"], "S", ["c"]) != IND("R", ["b"], "S", ["c"])


class TestSemantics:
    def test_satisfied(self):
        db = _db([("1", "x")], [("1", "y")])
        assert IND("R", ["a"], "S", ["c"]).holds_on(db)

    def test_violated(self):
        db = _db([("1", "x"), ("2", "y")], [("1", "z")])
        violations = list(IND("R", ["a"], "S", ["c"]).violations(db))
        assert len(violations) == 1
        assert violations[0].tuples[0][1]["a"] == "2"

    def test_multi_attribute(self):
        db = _db([("1", "x")], [("1", "x")])
        assert IND("R", ["a", "b"], "S", ["c", "d"]).holds_on(db)
        db2 = _db([("1", "x")], [("1", "y")])
        assert not IND("R", ["a", "b"], "S", ["c", "d"]).holds_on(db2)

    def test_empty_source_trivially_satisfied(self):
        db = _db([], [])
        assert IND("R", ["a"], "S", ["c"]).holds_on(db)


class TestImplication:
    def test_reflexivity(self):
        assert ind_implies([], IND("R", ["a", "b"], "R", ["a", "b"]))

    def test_projection(self):
        sigma = [IND("R", ["a", "b"], "S", ["c", "d"])]
        assert ind_implies(sigma, IND("R", ["a"], "S", ["c"]))
        assert ind_implies(sigma, IND("R", ["b"], "S", ["d"]))

    def test_permutation(self):
        sigma = [IND("R", ["a", "b"], "S", ["c", "d"])]
        assert ind_implies(sigma, IND("R", ["b", "a"], "S", ["d", "c"]))

    def test_cross_column_not_implied(self):
        sigma = [IND("R", ["a", "b"], "S", ["c", "d"])]
        assert not ind_implies(sigma, IND("R", ["a"], "S", ["d"]))

    def test_transitivity(self):
        sigma = [
            IND("R", ["a"], "S", ["c"]),
            IND("S", ["c"], "T", ["e"]),
        ]
        assert ind_implies(sigma, IND("R", ["a"], "T", ["e"]))

    def test_transitivity_chain_of_three(self):
        sigma = [
            IND("R", ["a"], "S", ["c"]),
            IND("S", ["c"], "T", ["e"]),
            IND("T", ["e"], "U", ["g"]),
        ]
        assert ind_implies(sigma, IND("R", ["a"], "U", ["g"]))

    def test_not_implied(self):
        sigma = [IND("R", ["a"], "S", ["c"])]
        assert not ind_implies(sigma, IND("S", ["c"], "R", ["a"]))

    def test_projection_then_transitivity(self):
        sigma = [
            IND("R", ["a", "b"], "S", ["c", "d"]),
            IND("S", ["c"], "T", ["e"]),
        ]
        assert ind_implies(sigma, IND("R", ["a"], "T", ["e"]))


class TestAcyclicity:
    def test_acyclic(self):
        assert is_acyclic([IND("R", ["a"], "S", ["c"]), IND("S", ["c"], "T", ["e"])])

    def test_two_cycle(self):
        assert not is_acyclic(
            [IND("R", ["a"], "S", ["c"]), IND("S", ["c"], "R", ["a"])]
        )

    def test_self_loop(self):
        assert not is_acyclic([IND("R", ["a"], "R", ["b"])])

    def test_empty(self):
        assert is_acyclic([])
