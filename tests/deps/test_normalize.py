"""Normalization: BCNF, 3NF, lossless joins."""

import pytest

from repro.deps.fd import FD, implies
from repro.deps.normalize import (
    bcnf_decompose,
    bcnf_violating_fd,
    is_bcnf,
    is_lossless_binary,
    third_nf_synthesize,
)
from repro.relational.domains import STRING
from repro.relational.schema import RelationSchema


def _schema(attrs):
    return RelationSchema("R", [(a, STRING) for a in attrs])


class TestBCNF:
    def test_key_based_schema_is_bcnf(self):
        schema = _schema(["A", "B"])
        assert is_bcnf(schema, [FD("R", ["A"], ["B"])])

    def test_violating_fd_found(self):
        schema = _schema(["A", "B", "C"])
        fds = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        violating = bcnf_violating_fd(schema, fds)
        assert violating is not None
        assert violating == FD("R", ["B"], ["C"])

    def test_decomposition_reaches_bcnf(self):
        schema = _schema(["A", "B", "C"])
        fds = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        pieces = bcnf_decompose(schema, fds)
        assert len(pieces) == 2
        for piece_schema, piece_fds in pieces:
            assert is_bcnf(piece_schema, piece_fds)

    def test_decomposition_attribute_preserving(self):
        schema = _schema(["A", "B", "C", "D"])
        fds = [FD("R", ["A"], ["B"]), FD("R", ["C"], ["D"])]
        pieces = bcnf_decompose(schema, fds)
        covered = set()
        for piece_schema, _ in pieces:
            covered.update(piece_schema.attribute_names)
        assert covered == {"A", "B", "C", "D"}


class Test3NF:
    def test_synthesis_covers_attributes(self):
        schema = _schema(["A", "B", "C"])
        fds = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        pieces = third_nf_synthesize(schema, fds)
        covered = set()
        for piece in pieces:
            covered.update(piece.attribute_names)
        assert covered == {"A", "B", "C"}

    def test_key_relation_added_when_missing(self):
        schema = _schema(["A", "B", "C"])
        # no FD mentions C, so a key relation containing C must be added
        fds = [FD("R", ["A"], ["B"])]
        pieces = third_nf_synthesize(schema, fds)
        assert any("C" in piece.attribute_names for piece in pieces)


class TestLossless:
    def test_lossless_split(self):
        schema = _schema(["A", "B", "C"])
        fds = [FD("R", ["B"], ["C"])]
        assert is_lossless_binary(schema, fds, ["A", "B"], ["B", "C"])

    def test_lossy_split(self):
        schema = _schema(["A", "B", "C"])
        fds = []
        assert not is_lossless_binary(schema, fds, ["A", "B"], ["B", "C"])
