"""Armstrong relations: the instance satisfies exactly Σ⁺."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.armstrong_relation import (
    armstrong_relation,
    closed_sets,
    is_armstrong_relation,
)
from repro.deps.fd import FD, closure
from repro.relational.domains import STRING
from repro.relational.schema import RelationSchema

ATTRS = ["A", "B", "C", "D"]


def _schema():
    return RelationSchema("R", [(a, STRING) for a in ATTRS])


class TestClosedSets:
    def test_full_set_always_closed(self):
        sets = closed_sets(_schema(), [])
        assert frozenset(ATTRS) in sets

    def test_no_fds_every_set_closed(self):
        sets = closed_sets(_schema(), [])
        assert len(sets) == 2 ** len(ATTRS)

    def test_closure_membership(self):
        fds = [FD("R", ["A"], ["B"])]
        for closed in closed_sets(_schema(), fds):
            assert closure(closed, fds) == closed


class TestArmstrongRelation:
    def test_simple_fd(self):
        fds = [FD("R", ["A"], ["B"])]
        instance = armstrong_relation(_schema(), fds)
        assert is_armstrong_relation(instance, _schema(), fds)

    def test_transitive_set(self):
        fds = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        instance = armstrong_relation(_schema(), fds)
        assert is_armstrong_relation(instance, _schema(), fds)

    def test_empty_fd_set(self):
        instance = armstrong_relation(_schema(), [])
        assert is_armstrong_relation(instance, _schema(), [])

    def test_key_fd(self):
        fds = [FD("R", ["A"], ["B", "C", "D"])]
        instance = armstrong_relation(_schema(), fds)
        assert is_armstrong_relation(instance, _schema(), fds)

    @st.composite
    @staticmethod
    def fd_sets(draw):
        n = draw(st.integers(1, 4))
        return [
            FD(
                "R",
                draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2)),
                draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2)),
            )
            for _ in range(n)
        ]

    @given(fd_sets())
    @settings(max_examples=25, deadline=None)
    def test_random_fd_sets(self, fds):
        instance = armstrong_relation(_schema(), fds)
        assert is_armstrong_relation(instance, _schema(), fds)
