"""Armstrong proofs agree with the closure-based decision procedure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.armstrong import derive, is_derivable
from repro.deps.fd import FD, implies

ATTRS = ["A", "B", "C", "D"]


@st.composite
def fd_sets(draw):
    n = draw(st.integers(1, 5))
    return [
        FD(
            "R",
            draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2)),
            draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2)),
        )
        for _ in range(n)
    ]


class TestDerive:
    def test_transitivity_proof(self):
        sigma = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        proof = derive(sigma, FD("R", ["A"], ["C"]))
        assert proof is not None
        assert proof.conclusion == FD("R", ["A"], ["C"])
        rules = {step.rule for step in proof.steps}
        assert "transitivity" in rules

    def test_underivable(self):
        assert derive([FD("R", ["A"], ["B"])], FD("R", ["B"], ["A"])) is None

    def test_reflexivity_only(self):
        proof = derive([], FD("R", ["A", "B"], ["A"]))
        assert proof is not None

    def test_premises_recorded(self):
        sigma = [FD("R", ["A"], ["B"])]
        proof = derive(sigma, FD("R", ["A"], ["B"]))
        assert any(step.rule == "premise" for step in proof.steps)

    def test_proof_renders(self):
        sigma = [FD("R", ["A"], ["B"])]
        proof = derive(sigma, FD("R", ["A"], ["B"]))
        assert "transitivity" in proof.pretty() or "premise" in proof.pretty()


class TestSoundnessCompleteness:
    @given(fd_sets(), fd_sets())
    @settings(max_examples=80, deadline=None)
    def test_derivability_equals_implication(self, sigma, targets):
        # Armstrong completeness: ⊢ coincides with ⊨ on every random case
        for target in targets:
            assert is_derivable(sigma, target) == implies(sigma, target)

    @given(fd_sets())
    @settings(max_examples=40, deadline=None)
    def test_every_proof_step_is_implied(self, sigma):
        target = FD("R", ["A", "B"], ["C"])
        proof = derive(sigma, target)
        if proof is None:
            return
        for step in proof.steps:
            # soundness: each derived line is semantically implied
            assert implies(sigma, step.fd) or step.rule == "premise"
