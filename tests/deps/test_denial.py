"""Denial constraints."""

import pytest

from repro.deps.denial import DenialConstraint, fd_as_denial
from repro.deps.fd import FD
from repro.errors import DependencyError
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import And, Comparison
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def db():
    schema = DatabaseSchema(
        [RelationSchema("emp", [("name", STRING), ("salary", INT), ("bonus", INT)])]
    )
    return DatabaseInstance(
        schema,
        {"emp": [("ann", 100, 10), ("bob", 50, 80), ("cat", 70, 20)]},
    )


class TestDenial:
    def test_single_atom_range_constraint(self, db):
        # forbid bonus > salary
        dc = DenialConstraint(
            ["emp"], Comparison("@t0.bonus", ">", "@t0.salary"), name="bonus<=salary"
        )
        violations = list(dc.violations(db))
        assert len(violations) == 1
        assert violations[0].tuples[0][1]["name"] == "bob"

    def test_two_atom_constraint(self, db):
        # forbid a pair where one earns more but gets a lower bonus than
        # someone with half the salary -- arbitrary two-tuple condition
        dc = DenialConstraint(
            ["emp", "emp"],
            And(
                [
                    Comparison("@t0.salary", ">", "@t1.salary"),
                    Comparison("@t0.bonus", "<", "@t1.bonus"),
                ]
            ),
        )
        assert not dc.holds_on(db)

    def test_satisfied(self, db):
        dc = DenialConstraint(["emp"], Comparison("@t0.salary", ">", 1000))
        assert dc.holds_on(db)

    def test_no_atoms_rejected(self):
        with pytest.raises(DependencyError):
            DenialConstraint([], Comparison("@t0.x", "=", 1))


class TestFDAsDenial:
    def test_requires_singleton_rhs(self):
        with pytest.raises(DependencyError):
            fd_as_denial(FD("R", ["A"], ["B", "C"]))

    def test_equivalence_with_fd_semantics(self):
        schema = DatabaseSchema(
            [RelationSchema("R", [("A", STRING), ("B", STRING)])]
        )
        fd = FD("R", ["A"], ["B"])
        dc = fd_as_denial(fd)
        good = DatabaseInstance(schema, {"R": [("a", "x"), ("b", "y")]})
        bad = DatabaseInstance(schema, {"R": [("a", "x"), ("a", "y")]})
        assert fd.holds_on(good) == dc.holds_on(good) is True
        assert fd.holds_on(bad) == dc.holds_on(bad) is False

    def test_diagonal_not_a_violation(self):
        # (t, t) satisfies t0[B] != t1[B] never; single tuple is fine
        schema = DatabaseSchema(
            [RelationSchema("R", [("A", STRING), ("B", STRING)])]
        )
        db = DatabaseInstance(schema, {"R": [("a", "x")]})
        assert fd_as_denial(FD("R", ["A"], ["B"])).holds_on(db)
