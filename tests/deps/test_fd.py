"""FDs: closure, implication, covers, keys — plus hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.fd import (
    FD,
    candidate_keys,
    closure,
    equivalent,
    implies,
    is_superkey,
    minimal_cover,
    project_fds,
)
from repro.errors import DependencyError
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema

ATTRS = ["A", "B", "C", "D", "E"]


def _schema():
    return RelationSchema("R", [(a, STRING) for a in ATTRS])


@st.composite
def fd_sets(draw, max_fds=6):
    n = draw(st.integers(1, max_fds))
    fds = []
    for _ in range(n):
        lhs = draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=3))
        rhs = draw(st.lists(st.sampled_from(ATTRS), min_size=1, max_size=2))
        fds.append(FD("R", lhs, rhs))
    return fds


class TestFDBasics:
    def test_empty_rhs_rejected(self):
        with pytest.raises(DependencyError):
            FD("R", ["A"], [])

    def test_duplicates_removed(self):
        fd = FD("R", ["A", "A", "B"], ["C", "C"])
        assert fd.lhs == ("A", "B")
        assert fd.rhs == ("C",)

    def test_equality_is_set_based(self):
        assert FD("R", ["A", "B"], ["C"]) == FD("R", ["B", "A"], ["C"])
        assert FD("R", ["A"], ["C"]) != FD("S", ["A"], ["C"])

    def test_check_schema(self):
        FD("R", ["A"], ["B"]).check_schema(_schema())
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            FD("R", ["Z"], ["B"]).check_schema(_schema())


class TestViolations:
    def _db(self, rows):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})

    def test_satisfied(self):
        db = self._db([("a", "x"), ("b", "y")])
        assert FD("R", ["A"], ["B"]).holds_on(db)

    def test_violated(self):
        db = self._db([("a", "x"), ("a", "y")])
        violations = list(FD("R", ["A"], ["B"]).violations(db))
        assert len(violations) == 1
        assert len(violations[0].tuples) == 2

    def test_empty_lhs_requires_agreement(self):
        db = self._db([("a", "x"), ("b", "x")])
        assert FD("R", [], ["B"]).holds_on(db)
        db2 = self._db([("a", "x"), ("b", "y")])
        assert not FD("R", [], ["B"]).holds_on(db2)


class TestClosure:
    def test_textbook_example(self):
        fds = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        assert closure(["A"], fds) == {"A", "B", "C"}

    def test_no_fds(self):
        assert closure(["A", "B"], []) == {"A", "B"}

    def test_empty_lhs_fd_always_fires(self):
        fds = [FD("R", [], ["B"])]
        assert closure(["A"], fds) == {"A", "B"}

    def test_multi_attribute_lhs(self):
        fds = [FD("R", ["A", "B"], ["C"])]
        assert closure(["A"], fds) == {"A"}
        assert closure(["A", "B"], fds) == {"A", "B", "C"}

    @given(fd_sets())
    @settings(max_examples=60, deadline=None)
    def test_contains_inputs(self, fds):
        assert {"A"} <= closure(["A"], fds)

    @given(fd_sets())
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, fds):
        first = closure(["A", "B"], fds)
        assert closure(first, fds) == first

    @given(fd_sets())
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, fds):
        assert closure(["A"], fds) <= closure(["A", "B"], fds)


class TestImplication:
    def test_transitivity(self):
        fds = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        assert implies(fds, FD("R", ["A"], ["C"]))

    def test_non_implication(self):
        fds = [FD("R", ["A"], ["B"])]
        assert not implies(fds, FD("R", ["B"], ["A"]))

    def test_reflexivity(self):
        assert implies([], FD("R", ["A", "B"], ["A"]))

    def test_cross_relation_fds_ignored(self):
        fds = [FD("S", ["A"], ["B"])]
        assert not implies(fds, FD("R", ["A"], ["B"]))

    @given(fd_sets())
    @settings(max_examples=40, deadline=None)
    def test_each_fd_self_implied(self, fds):
        for fd in fds:
            assert implies(fds, fd)


class TestMinimalCover:
    def test_removes_redundant(self):
        fds = [
            FD("R", ["A"], ["B"]),
            FD("R", ["B"], ["C"]),
            FD("R", ["A"], ["C"]),  # redundant
        ]
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)
        assert len(cover) == 2

    def test_trims_lhs(self):
        fds = [FD("R", ["A"], ["B"]), FD("R", ["A", "C"], ["B"])]
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)
        assert all(len(fd.lhs) == 1 for fd in cover)

    def test_singleton_rhs(self):
        cover = minimal_cover([FD("R", ["A"], ["B", "C"])])
        assert all(len(fd.rhs) == 1 for fd in cover)

    @given(fd_sets())
    @settings(max_examples=40, deadline=None)
    def test_cover_equivalent(self, fds):
        assert equivalent(minimal_cover(fds), fds)


class TestKeys:
    def test_candidate_keys_simple(self):
        schema = _schema()
        fds = [FD("R", ["A"], ["B", "C", "D", "E"])]
        keys = candidate_keys(schema, fds)
        assert frozenset({"A"}) in keys

    def test_two_keys(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        fds = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["A"])]
        keys = candidate_keys(schema, fds)
        assert set(keys) == {frozenset({"A"}), frozenset({"B"})}

    def test_no_fds_key_is_everything(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        assert candidate_keys(schema, []) == [frozenset({"A", "B"})]

    def test_is_superkey(self):
        schema = _schema()
        fds = [FD("R", ["A"], ["B", "C", "D", "E"])]
        assert is_superkey(["A", "B"], schema, fds)
        assert not is_superkey(["B"], schema, fds)


class TestProjection:
    def test_transitive_dependency_survives(self):
        fds = [FD("R", ["A"], ["B"]), FD("R", ["B"], ["C"])]
        projected = project_fds(fds, ["A", "C"])
        assert implies(projected, FD("R", ["A"], ["C"]))
        assert not implies(projected, FD("R", ["C"], ["A"]))

    def test_empty_projection(self):
        assert project_fds([], ["A"]) == []
