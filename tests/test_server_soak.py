"""The multi-tenant soak harness: live byte-verification end to end.

Three layers of assurance:

* a hypothesis property — random interleavings of apply/undo/detect and
  rules round-trips across 3–8 tenants over real HTTP, with the final
  per-tenant detect document byte-compared against an offline replay of
  the tenant's whole edit history;
* mini-soaks through :func:`repro.workloads.soak.run_soak` itself —
  durable with a crash-like restart, non-durable under heavy eviction
  pressure, and a corrupted-server run that must *fail* (the harness is
  only trustworthy if it catches a real divergence);
* the ``repro soak`` CLI path with a SIGKILL'd subprocess server, plus
  the full ``--smoke`` preset behind ``REPRO_SOAK=1``.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.client import ServerClient, ServerError
from repro.engine.delta import Changeset
from repro.server import make_server
from repro.workloads.soak import (
    InProcessServer,
    SoakConfig,
    canonical,
    replay_detect,
    run_soak,
)
from repro.workloads.stream import StreamConfig, stream_edits
from repro.workloads.tenants import make_tenants, random_rule_documents

REPO_ROOT = Path(__file__).resolve().parent.parent

_ids = itertools.count()


@pytest.fixture(scope="module")
def server():
    server = make_server(port=0)
    server.start_background()
    yield server
    server.shutdown()


@pytest.fixture(scope="module")
def client(server):
    client = ServerClient(base_url=server.base_url)
    client.wait_ready()
    return client


class TestInterleavingProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_served_matches_offline_replay(self, client, data):
        """Any interleaving of verbs across tenants leaves every served
        session byte-identical to an offline replay of its history."""
        import random

        n_tenants = data.draw(st.integers(3, 8), label="tenants")
        corpus_seed = data.draw(st.integers(0, 2**20), label="seed")
        specs = make_tenants(n_tenants, corpus_seed)
        prefix = f"prop{next(_ids)}"
        live = []
        try:
            for spec in specs:
                session_id = f"{prefix}-{spec.tenant_id}"
                client.create_session(
                    schema=spec.schema_doc,
                    rules=spec.rules_docs,
                    data=spec.data,
                    session_id=session_id,
                )
                live.append(
                    {
                        "id": session_id,
                        "spec": spec,
                        "shadow": spec.build_session(),
                        "history": [],
                        "stash": [],
                        "rng": random.Random(spec.seed),
                    }
                )
            n_ops = data.draw(st.integers(5, 20), label="ops")
            for index in range(n_ops):
                tenant = live[
                    data.draw(
                        st.integers(0, n_tenants - 1), label=f"t{index}"
                    )
                ]
                verb = data.draw(
                    st.sampled_from(["apply", "apply", "undo", "detect",
                                     "rules"]),
                    label=f"v{index}",
                )
                if verb == "apply":
                    changeset = next(
                        stream_edits(
                            tenant["shadow"].database,
                            StreamConfig(
                                n_batches=1,
                                batch_size=tenant["rng"].randrange(1, 5),
                                seed=tenant["rng"].randrange(1 << 30),
                            ),
                        )
                    )
                    if len(changeset) == 0:
                        continue
                    doc = changeset.to_dict()
                    delta = client.apply(tenant["id"], doc)
                    shadow_delta = tenant["shadow"].apply(changeset)
                    tenant["history"].append(("apply", doc))
                    tenant["stash"].append(
                        (delta["undo_token"], shadow_delta.undo)
                    )
                elif verb == "undo" and tenant["stash"]:
                    token, undo_changeset = tenant["stash"].pop()
                    client.undo(tenant["id"], token)
                    tenant["shadow"].apply(undo_changeset)
                    tenant["history"].append(
                        ("apply", undo_changeset.to_dict())
                    )
                elif verb == "detect":
                    served = client.detect(tenant["id"])
                    expected = tenant["shadow"].detect().to_dict()
                    assert canonical(served) == canonical(expected)
                elif verb == "rules":
                    docs = random_rule_documents(
                        tenant["spec"], tenant["rng"]
                    )
                    from repro.rules_json import rules_from_list

                    client.add_rules(tenant["id"], docs)
                    tenant["shadow"].add_rules(
                        *rules_from_list(docs, tenant["shadow"].schema)
                    )
                    tenant["history"].append(("rules", docs, False))
            # final: every tenant's served detect == full offline replay
            for tenant in live:
                served = client.detect(tenant["id"])
                expected = replay_detect(tenant["spec"], tenant["history"])
                assert canonical(served) == canonical(expected)
                served_rules = client.get_rules(tenant["id"])
                assert canonical(served_rules) == canonical(
                    tenant["shadow"].rules_documents()
                )
        finally:
            for tenant in live:
                tenant["shadow"].close()
                try:
                    client.delete_session(tenant["id"])
                except ServerError:
                    pass


class TestMiniSoak:
    def test_durable_soak_with_crash_restart(self, tmp_path):
        server = InProcessServer(
            port=0, max_sessions=4, state_dir=tmp_path, snapshot_every=8
        )
        config = SoakConfig(
            tenants=8,
            ops=120,
            seed=5,
            workers=3,
            restarts=1,
            max_sessions=4,
            verify_every=10,
            batch_max=4,
            burst_size=12,
        )
        try:
            report = run_soak(config, server)
        finally:
            server.close()
        assert report.ok, (report.error, report.divergence)
        assert report.counters["restarts"] == 1
        assert report.counters["final_verifications"] == 8
        assert report.counters["verifications"] > 0
        assert report.counters["ops"] == 120

    def test_nondurable_soak_rebuilds_evicted_tenants(self):
        server = InProcessServer(port=0, max_sessions=3)
        config = SoakConfig(
            tenants=8,
            ops=100,
            seed=9,
            workers=2,
            restarts=0,
            max_sessions=3,
            verify_every=8,
            batch_max=4,
        )
        try:
            report = run_soak(config, server)
        finally:
            server.close()
        assert report.ok, (report.error, report.divergence)
        # eviction-rehydration (here: rebuild-from-shadow) was exercised
        assert report.counters["evictions_rebuilt"] > 0
        assert report.counters["final_verifications"] == 8

    def test_soak_catches_server_side_corruption(self):
        """The harness is only trustworthy if a *real* divergence fails
        the run: corrupt one tenant's server-side state through the
        session API (bypassing the harness) and expect a divergence
        report naming that tenant."""
        import threading
        import time

        server = InProcessServer(port=0, max_sessions=16)
        ServerClient(base_url=server.base_url).wait_ready()

        def corrupt():
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                hosted = server.server.manager._sessions.get("tenant-000")
                if hosted is not None:
                    with hosted.lock:
                        relation = hosted.session.database.relation("R")
                        attrs = list(relation.schema.attribute_names)
                        changeset = Changeset()
                        changeset.insert("R", {a: "zz" for a in attrs})
                        hosted.session.apply(changeset)
                    return
                time.sleep(0.05)

        saboteur = threading.Thread(target=corrupt)
        saboteur.start()
        config = SoakConfig(
            tenants=4,
            ops=400,
            seed=3,
            workers=2,
            restarts=0,
            max_sessions=16,
            verify_every=5,
            batch_max=3,
        )
        try:
            report = run_soak(config, server)
        finally:
            saboteur.join(timeout=30)
            server.close()
        assert not report.ok
        assert report.divergence is not None
        assert report.divergence["tenant"] == "tenant-000"
        # the corruption happened *outside* the history, so the stepwise
        # minimizer correctly reports it as non-reproducible-from-history
        assert report.divergence["minimized"] is False
        assert "served_detect" in report.divergence
        assert "expected_detect" in report.divergence


class TestSoakCli:
    def _run_cli(self, args, timeout):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "soak", *args],
            capture_output=True,
            text=True,
            timeout=timeout,
            env=env,
        )

    def test_small_cli_soak_with_sigkill_cycle(self, tmp_path):
        artifacts = tmp_path / "artifacts"
        result = self._run_cli(
            [
                "--tenants", "4",
                "--ops", "40",
                "--workers", "2",
                "--restarts", "1",
                "--max-sessions", "3",
                "--seed", "7",
                "--artifacts", str(artifacts),
            ],
            timeout=180,
        )
        assert result.returncode == 0, result.stderr
        report = json.loads((artifacts / "report.json").read_text())
        assert report["ok"] is True
        assert report["counters"]["restarts"] == 1
        assert report["counters"]["final_verifications"] == 4
        # operational artifacts ride along with every run
        assert (artifacts / "metrics.prom").read_text().startswith("# HELP")
        assert json.loads((artifacts / "metrics.json").read_text())
        diagnostics = list((artifacts / "diagnostics").glob("*.json"))
        assert diagnostics, "no per-tenant diagnostics exported"
        doc = json.loads(diagnostics[0].read_text())
        assert {"engine", "locks", "degraded", "durability"} <= set(doc)

    @pytest.mark.soak
    @pytest.mark.skipif(
        not os.environ.get("REPRO_SOAK"),
        reason="30s smoke soak runs only with REPRO_SOAK=1 (CI soak job)",
    )
    def test_smoke_preset(self, tmp_path):
        artifacts = tmp_path / "smoke-artifacts"
        result = self._run_cli(
            ["--smoke", "--artifacts", str(artifacts)], timeout=540
        )
        assert result.returncode == 0, result.stderr
        report = json.loads((artifacts / "report.json").read_text())
        assert report["ok"] is True
        assert report["divergence"] is None
        assert report["counters"]["restarts"] == 1
