"""MD implication (Theorem 4.8): the PTIME procedure on Example 4.3 and
generic-reasoning corner cases."""

import pytest

from repro.md.inference import md_implies
from repro.md.model import MATCH, MD, RelativeKey
from repro.md.similarity import EQ, ContainmentLattice, EditDistanceSimilarity
from repro.paper import YB, YC, example31_mds, example32_rcks


@pytest.fixture
def sigma():
    return list(example31_mds().values())


class TestExample43:
    """Σ1 ⊨m rck_i for i ∈ [1,3] — the paper's exact claim."""

    def test_rck1_implied(self, sigma):
        assert md_implies(sigma, example32_rcks()["rck1"])

    def test_rck2_implied(self, sigma):
        assert md_implies(sigma, example32_rcks()["rck2"])

    def test_rck3_implied(self, sigma):
        assert md_implies(sigma, example32_rcks()["rck3"])

    def test_fn_alone_not_implied(self, sigma):
        bogus = RelativeKey(
            "card", "billing", [("FN", "FN")], [EQ], list(YC), list(YB)
        )
        assert not md_implies(sigma, bogus)

    def test_email_alone_not_implied(self, sigma):
        bogus = RelativeKey(
            "card", "billing", [("email", "email")], [EQ], list(YC), list(YB)
        )
        # email= gives FN,LN ⇋ via φ2 but addr ⇋ post is not derivable
        assert not md_implies(sigma, bogus)


class TestGenericReasoning:
    def test_self_implication(self):
        md = MD("R", "S", [("a", "b", EQ)], ["c"], ["d"])
        assert md_implies([md], md)

    def test_equality_subsumes_similarity_in_premise(self):
        approx = EditDistanceSimilarity(2)
        needs_similar = MD("R", "S", [("a", "b", approx)], ["c"], ["d"])
        has_equal = MD("R", "S", [("a", "b", EQ)], ["c"], ["d"])
        # a premise satisfied by '=' satisfies any ≈ (x = y ⟹ x ≈ y)
        assert md_implies([needs_similar], has_equal)

    def test_similarity_does_not_give_equality(self):
        approx = EditDistanceSimilarity(2)
        needs_equal = MD("R", "S", [("a", "b", EQ)], ["c"], ["d"])
        has_similar = MD("R", "S", [("a", "b", approx)], ["c"], ["d"])
        assert not md_implies([needs_equal], has_similar)

    def test_match_premise_not_satisfied_by_similarity(self):
        """⇋ in a premise is only witnessed by derived matches, never by a
        raw similarity fact — similarity is not transitive or semantic."""
        approx = EditDistanceSimilarity(2)
        needs_match = MD("R", "S", [("a", "b", MATCH)], ["c"], ["d"])
        has_similar = MD("R", "S", [("a", "b", approx)], ["c"], ["d"])
        assert not md_implies([needs_match], has_similar)

    def test_chained_matches(self):
        """⇋-conclusions feed ⇋-premises (the φ1 → φ3 chain shape)."""
        step1 = MD("R", "S", [("t", "p", EQ)], ["addr"], ["post"])
        step2 = MD("R", "S", [("addr", "post", MATCH)], ["n"], ["m"])
        target = MD("R", "S", [("t", "p", EQ)], ["n"], ["m"])
        assert md_implies([step1, step2], target)

    def test_pairwise_decomposition(self):
        """[A,B] ⇋ [C,D] decomposes to A ⇋ C and B ⇋ D (and conversely)."""
        joint = MD("R", "S", [("x", "y", EQ)], ["a", "b"], ["c", "d"])
        first = MD("R", "S", [("x", "y", EQ)], ["a"], ["c"])
        assert md_implies([joint], first)
        split = [
            MD("R", "S", [("x", "y", EQ)], ["a"], ["c"]),
            MD("R", "S", [("x", "y", EQ)], ["b"], ["d"]),
        ]
        assert md_implies(split, joint)

    def test_transitivity_of_match_across_attributes(self):
        """a⇋c and b⇋c force a⇋... via the shared R2 attribute."""
        sigma = [
            MD("R", "S", [("x", "y", EQ)], ["a"], ["c"]),
            MD("R", "S", [("x", "y", EQ)], ["b"], ["c"]),
        ]
        # L.a ⇋ R.c and L.b ⇋ R.c give nothing directly expressible as an
        # (L, R) conclusion here, but deriving ["a"] ⇋ ["c"] again must work
        assert md_implies(sigma, MD("R", "S", [("x", "y", EQ)], ["a"], ["c"]))

    def test_containment_lattice_respected(self):
        tight = EditDistanceSimilarity(1)
        loose = EditDistanceSimilarity(3)
        # premise satisfied with edit≤1 fact entails an edit≤3 requirement
        produces_tight = MD("R", "S", [("x", "y", EQ)], ["a"], ["b"], tight)
        needs_loose = MD("R", "S", [("a", "b", loose)], ["c"], ["d"])
        target = MD("R", "S", [("x", "y", EQ)], ["c"], ["d"])
        lattice = ContainmentLattice([tight, loose, EQ, MATCH])
        assert md_implies([produces_tight, needs_loose], target, lattice)

    def test_containment_direction_matters(self):
        tight = EditDistanceSimilarity(1)
        loose = EditDistanceSimilarity(3)
        produces_loose = MD("R", "S", [("x", "y", EQ)], ["a"], ["b"], loose)
        needs_tight = MD("R", "S", [("a", "b", tight)], ["c"], ["d"])
        target = MD("R", "S", [("x", "y", EQ)], ["c"], ["d"])
        lattice = ContainmentLattice([tight, loose, EQ, MATCH])
        assert not md_implies([produces_loose, needs_tight], target, lattice)

    def test_swapped_relation_pair_premises(self):
        """MDs over (S, R) apply symmetrically to a (R, S) target."""
        flipped = MD("S", "R", [("p", "t", EQ)], ["post"], ["addr"])
        target = MD("R", "S", [("t", "p", EQ)], ["addr"], ["post"])
        assert md_implies([flipped], target)

    def test_other_relation_pairs_ignored(self):
        unrelated = MD("X", "Y", [("a", "b", EQ)], ["c"], ["d"])
        target = MD("R", "S", [("a", "b", EQ)], ["c"], ["d"])
        assert not md_implies([unrelated], target)
