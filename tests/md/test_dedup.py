"""Merge/purge deduplication within one relation."""

import pytest

from repro.md.dedup import deduplicate
from repro.md.model import MD
from repro.md.similarity import EQ, EditDistanceSimilarity, TokenSetSimilarity
from repro.relational.domains import STRING
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.repair.models import CostModel


@pytest.fixture
def schema():
    return RelationSchema(
        "people", [("name", STRING), ("phone", STRING), ("city", STRING)]
    )


@pytest.fixture
def instance(schema):
    return RelationInstance(
        schema,
        [
            ("John Smith", "555", "Edinburgh"),
            ("Jon Smith", "555", "Edinburgh"),     # same person, typo
            ("J. Smith", "555", "Edinburg"),       # same person, abbreviated
            ("Mary Chen", "777", "London"),
            ("Mary Chen", "778", "London"),        # different phone: distinct
        ],
    )


def _rules():
    return [
        MD(
            "people", "people",
            [("phone", "phone", EQ)],
            ["name", "phone", "city"], ["name", "phone", "city"],
            name="same-phone",
        ),
    ]


class TestDeduplicate:
    def test_clusters_by_rule(self, instance):
        result = deduplicate(instance, _rules())
        assert len(result.clusters) == 3
        sizes = sorted(len(c) for c in result.clusters)
        assert sizes == [1, 1, 3]

    def test_duplicates_removed_count(self, instance):
        result = deduplicate(instance, _rules())
        assert result.duplicates_removed == 2
        assert len(result.consolidated) == 3

    def test_transitive_closure(self, schema):
        """a~b via phone, b~c via name similarity ⟹ one cluster of 3."""
        instance = RelationInstance(
            schema,
            [
                ("John Smith", "555", "X"),
                ("Jon Smith", "555", "Y"),
                ("Jon Smith", "556", "Y"),
            ],
        )
        rules = _rules() + [
            MD(
                "people", "people",
                [("name", "name", EQ), ("city", "city", EQ)],
                ["name", "phone", "city"], ["name", "phone", "city"],
                name="same-name-city",
            )
        ]
        result = deduplicate(instance, rules)
        assert len(result.clusters) == 1
        assert len(result.clusters[0]) == 3

    def test_golden_record_plurality(self, instance):
        result = deduplicate(instance, _rules())
        big = max(result.clusters, key=len)
        # "Edinburgh" outvotes "Edinburg" 2:1
        assert big.golden["city"] == "Edinburgh"

    def test_weights_influence_golden_record(self, instance):
        trusted = instance.tuples()[2]  # the "J. Smith"/"Edinburg" row
        model = CostModel()
        model.set_weight(trusted, "city", 10.0)
        result = deduplicate(instance, _rules(), cost_model=model)
        big = max(result.clusters, key=len)
        assert big.golden["city"] == "Edinburg"

    def test_no_rules_no_merging(self, instance):
        rules = [
            MD(
                "people", "people",
                [("name", "name", EQ), ("phone", "phone", EQ), ("city", "city", EQ)],
                ["name"], ["name"],
                name="identity-ish",
            )
        ]
        result = deduplicate(instance, rules)
        assert result.duplicates_removed == 0

    def test_blocking_used_for_equality_rules(self, instance):
        result = deduplicate(instance, _rules())
        # 5 tuples × 5 tuples × 1 premise = 25 unblocked; phone-blocking
        # compares only same-phone pairs (3² + 1 + 1 − diagonal skips)
        assert result.comparisons < 25
