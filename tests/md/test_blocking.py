"""Blocking: same matches, far fewer comparisons."""

import pytest

from repro.md.blocking import BlockedObjectIdentifier, Blocker
from repro.md.matching import ObjectIdentifier
from repro.md.model import MD
from repro.md.similarity import EQ, EditDistanceSimilarity
from repro.paper import example31_mds
from repro.workloads.card_billing import CardBillingConfig, generate_card_billing


@pytest.fixture
def workload():
    return generate_card_billing(
        CardBillingConfig(n_people=50, unrelated_billing=15, seed=29)
    )


class TestBlocker:
    def test_indexes_equality_premises(self, workload):
        rule = MD(
            "card", "billing",
            [("LN", "SN", EQ), ("FN", "FN", EditDistanceSimilarity(2))],
            ["addr"], ["post"],
        )
        blocker = Blocker(rule, workload.billing)
        assert blocker.is_indexed
        some_card = workload.card.tuples()[0]
        for candidate in blocker.candidates(some_card):
            assert candidate["SN"] == some_card["LN"]

    def test_no_equality_premise_full_scan(self, workload):
        rule = MD(
            "card", "billing",
            [("FN", "FN", EditDistanceSimilarity(2))],
            ["addr"], ["post"],
        )
        blocker = Blocker(rule, workload.billing)
        assert not blocker.is_indexed
        some_card = workload.card.tuples()[0]
        assert len(list(blocker.candidates(some_card))) == len(workload.billing)

    def test_blocking_is_lossless(self, workload):
        """Blocking never drops a pair the rule would match."""
        rule = MD(
            "card", "billing",
            [("LN", "SN", EQ), ("tel", "phn", EQ)],
            ["addr"], ["post"],
        )
        blocker = Blocker(rule, workload.billing)
        for t1 in workload.card:
            blocked = set(blocker.candidates(t1))
            for t2 in workload.billing:
                if rule.premise_holds(t1, t2):
                    assert t2 in blocked


class TestBlockedIdentifier:
    def test_same_matches_fewer_comparisons(self, workload):
        rules = list(example31_mds().values())
        plain = ObjectIdentifier(rules).identify(
            workload.card, workload.billing
        )
        blocked = BlockedObjectIdentifier(rules).identify(
            workload.card, workload.billing
        )
        assert blocked.matches == plain.matches
        assert blocked.comparisons < plain.comparisons

    def test_comparison_reduction_with_rcks(self, workload):
        """The §4.2 "efficiency" claim: derived RCKs are equality-rich, so
        blocking on them cuts comparisons by an order of magnitude while
        finding the same matches."""
        from repro.md.rck import derive_rcks
        from repro.paper import YB, YC

        base = list(example31_mds().values())
        rcks = derive_rcks(base, list(YC), list(YB), max_length=3)
        target = (list(YC), list(YB))
        plain = ObjectIdentifier(rcks, target=target, chain=False).identify(
            workload.card, workload.billing
        )
        blocked = BlockedObjectIdentifier(
            rcks, target=target, chain=False
        ).identify(workload.card, workload.billing)
        assert blocked.matches == plain.matches
        assert blocked.comparisons * 10 < plain.comparisons
