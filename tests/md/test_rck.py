"""RCK derivation and the ≤ order on relative keys (§3.3, §4.2)."""

import pytest

from repro.md.rck import derive_rcks, is_rck_among, key_leq
from repro.md.model import RelativeKey
from repro.md.similarity import EQ, ContainmentLattice, EditDistanceSimilarity
from repro.paper import YB, YC, example31_mds


@pytest.fixture
def sigma():
    return list(example31_mds().values())


@pytest.fixture
def lattice():
    from repro.md.model import MATCH

    return ContainmentLattice([EQ, EditDistanceSimilarity(2), MATCH])


def _key(pairs, ops):
    return RelativeKey("card", "billing", pairs, ops, list(YC), list(YB))


class TestOrder:
    def test_shorter_key_leq(self, lattice):
        short = _key([("email", "email")], [EQ])
        long = _key([("email", "email"), ("addr", "post")], [EQ, EQ])
        assert key_leq(short, long, lattice)
        assert not key_leq(long, short, lattice)

    def test_operator_containment_in_order(self, lattice):
        approx = EditDistanceSimilarity(2)
        # ψ with the *looser* operator is below: C'[i] ⊆ C[j] — the key
        # demanding only similarity is weaker-hypothesis ... per the paper
        # ψ ≤ ψ′ requires ≈′_i ⊆ ≈_j, i.e. ψ′ uses a *stronger* operator.
        similar = _key([("FN", "FN")], [approx])
        equal = _key([("FN", "FN")], [EQ])
        assert key_leq(similar, equal, lattice)
        assert not key_leq(equal, similar, lattice)

    def test_incomparable(self, lattice):
        k1 = _key([("email", "email")], [EQ])
        k2 = _key([("addr", "post")], [EQ])
        assert not key_leq(k1, k2, lattice)
        assert not key_leq(k2, k1, lattice)

    def test_is_rck_among(self, lattice):
        small = _key([("email", "email")], [EQ])
        large = _key([("email", "email"), ("addr", "post")], [EQ, EQ])
        assert is_rck_among(small, [small, large], lattice)
        assert not is_rck_among(large, [small, large], lattice)


class TestDerivation:
    def test_derives_paper_rck2(self, sigma):
        """The paper's flagship derived rule: [LN, tel, FN] / [SN, phn, FN]."""
        rcks = derive_rcks(sigma, list(YC), list(YB), max_length=3)
        shapes = {
            tuple(sorted((p.left_attr, p.right_attr) for p in rck.premises))
            for rck in rcks
        }
        assert tuple(sorted([("LN", "SN"), ("tel", "phn"), ("FN", "FN")])) in shapes

    def test_derives_rck1_shape(self, sigma):
        rcks = derive_rcks(sigma, list(YC), list(YB), max_length=2)
        shapes = {
            tuple(sorted((p.left_attr, p.right_attr) for p in rck.premises))
            for rck in rcks
        }
        assert tuple(sorted([("email", "email"), ("addr", "post")])) in shapes

    def test_all_derived_keys_are_implied(self, sigma):
        from repro.md.inference import md_implies

        for rck in derive_rcks(sigma, list(YC), list(YB), max_length=3):
            assert md_implies(sigma, rck)

    def test_derived_keys_are_minimal(self, sigma):
        from repro.md.model import MATCH

        rcks = derive_rcks(sigma, list(YC), list(YB), max_length=3)
        operators = {p.operator for md in sigma for p in md.premises} | {EQ, MATCH}
        lattice = ContainmentLattice(operators)
        for rck in rcks:
            assert is_rck_among(rck, rcks, lattice)

    def test_empty_sigma(self):
        assert derive_rcks([], list(YC), list(YB)) == []

    def test_max_length_respected(self, sigma):
        rcks = derive_rcks(sigma, list(YC), list(YB), max_length=2)
        assert all(rck.length <= 2 for rck in rcks)
