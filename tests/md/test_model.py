"""MD model: premises, relative keys, concrete evaluation."""

import pytest

from repro.errors import DependencyError
from repro.md.model import MATCH, MD, MatchInterpretation, MDPremise, RelativeKey
from repro.md.similarity import EQ, EditDistanceSimilarity
from repro.paper import YB, YC, card_billing_schema, example31_mds, example32_rcks
from repro.relational.instance import DatabaseInstance


@pytest.fixture
def pair():
    db = DatabaseInstance(card_billing_schema())
    card = db.relation("card").add(
        {
            "cnum": "C1", "SSN": "S1", "FN": "John", "LN": "Smith",
            "addr": "12 Mountain Avenue", "tel": "555", "email": "j@x.com",
            "type": "visa",
        }
    )
    billing = db.relation("billing").add(
        {
            "cnum": "C1", "FN": "J.", "SN": "Smith",
            "post": "12 Mtn Ave", "phn": "555", "email": "j@x.com",
            "item": "book", "price": 9.99,
        }
    )
    return card, billing


class TestConstruction:
    def test_rejects_empty_conclusion(self):
        with pytest.raises(DependencyError):
            MD("card", "billing", [("tel", "phn", EQ)], [], [])

    def test_rejects_arity_mismatch(self):
        with pytest.raises(DependencyError):
            MD("card", "billing", [("tel", "phn", EQ)], ["FN", "LN"], ["FN"])

    def test_rejects_empty_premise(self):
        with pytest.raises(DependencyError):
            MD("card", "billing", [], ["FN"], ["FN"])

    def test_relative_key_forbids_match_premise(self):
        with pytest.raises(DependencyError):
            RelativeKey(
                "card", "billing", [("addr", "post")], [MATCH],
                list(YC), list(YB),
            )

    def test_relative_key_classification(self):
        rcks = example32_rcks()
        assert all(rck.is_relative_key() for rck in rcks.values())
        mds = example31_mds()
        assert not mds["phi3"].is_relative_key()  # uses ⇋ premises
        assert mds["phi1"].is_relative_key()  # only '='

    def test_length(self):
        assert example32_rcks()["rck2"].length == 3


class TestPremiseEvaluation:
    def test_equality_premise(self, pair):
        card, billing = pair
        md = MD("card", "billing", [("tel", "phn", EQ)], ["addr"], ["post"])
        assert md.premise_holds(card, billing)

    def test_similarity_premise(self, pair):
        card, billing = pair
        approx = EditDistanceSimilarity(3)
        md = MD("card", "billing", [("FN", "FN", approx)], ["LN"], ["SN"])
        # "John" vs "J." is 3 edits
        assert md.premise_holds(card, billing)

    def test_failed_premise(self, pair):
        card, billing = pair
        md = MD("card", "billing", [("FN", "FN", EQ)], ["LN"], ["SN"])
        assert not md.premise_holds(card, billing)

    def test_match_premise_uses_interpretation(self, pair):
        card, billing = pair
        md = MD(
            "card", "billing",
            [("addr", "post", MATCH)],
            ["FN"], ["FN"],
        )
        empty = MatchInterpretation()
        assert not md.premise_holds(card, billing, empty)
        declared = MatchInterpretation()
        declared.declare(
            ("L", "addr", card["addr"]), ("R", "post", billing["post"])
        )
        assert md.premise_holds(card, billing, declared)


class TestMatchInterpretation:
    def test_equality_always_matches(self):
        interp = MatchInterpretation()
        assert interp.matched("x", "x")

    def test_declared_matches_transitively(self):
        interp = MatchInterpretation()
        interp.declare("a", "b")
        interp.declare("b", "c")
        assert interp.matched("a", "c")

    def test_undeclared_not_matched(self):
        interp = MatchInterpretation()
        assert not interp.matched("a", "b")
