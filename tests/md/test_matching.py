"""Object identification engine: rule chaining, quality metrics."""

import pytest

from repro.md.matching import MatchReport, ObjectIdentifier, match_pairs
from repro.md.model import MATCH, MD
from repro.md.similarity import EQ, EditDistanceSimilarity
from repro.paper import YB, YC, card_billing_schema, example31_mds
from repro.relational.instance import DatabaseInstance
from repro.workloads.card_billing import CardBillingConfig, generate_card_billing


def _pairs_db():
    db = DatabaseInstance(card_billing_schema())
    card = db.relation("card")
    billing = db.relation("billing")
    smith_card = card.add(
        {"cnum": "C1", "SSN": "S1", "FN": "John", "LN": "Smith",
         "addr": "12 Mountain Avenue", "tel": "555", "email": "j@x.com",
         "type": "visa"}
    )
    smith_bill = billing.add(
        {"cnum": "C1", "FN": "Jhn", "SN": "Smith",
         "post": "12 Mtn Ave", "phn": "555", "email": "other@y.com",
         "item": "book", "price": 9.99}
    )
    stranger = billing.add(
        {"cnum": "C9", "FN": "Zara", "SN": "Quux",
         "post": "1 Nowhere", "phn": "000", "email": "z@q.com",
         "item": "pen", "price": 1.0}
    )
    return db, smith_card, smith_bill, stranger


class TestChaining:
    def test_phi1_then_phi4_chains(self):
        """tel = phn ⟹ addr ⇋ post (φ1), which unlocks φ4's ⇋-premise."""
        db, smith_card, smith_bill, _ = _pairs_db()
        rules = list(example31_mds(edit_threshold=2).values())
        report = ObjectIdentifier(rules).identify(
            db.relation("card"), db.relation("billing")
        )
        assert (smith_card, smith_bill) in report.matches

    def test_without_phi1_no_chain(self):
        """Dropping φ1 removes the addr ⇋ post stepping stone."""
        db, smith_card, smith_bill, _ = _pairs_db()
        mds = example31_mds(edit_threshold=2)
        rules = [mds["phi2"], mds["phi3"], mds["phi4"]]
        report = ObjectIdentifier(rules).identify(
            db.relation("card"), db.relation("billing")
        )
        assert (smith_card, smith_bill) not in report.matches

    def test_stranger_not_matched(self):
        db, _, _, stranger = _pairs_db()
        rules = list(example31_mds().values())
        report = ObjectIdentifier(rules).identify(
            db.relation("card"), db.relation("billing")
        )
        assert all(pair[1] != stranger for pair in report.matches)

    def test_rule_fires_recorded(self):
        db, _, _, _ = _pairs_db()
        rules = list(example31_mds().values())
        report = ObjectIdentifier(rules).identify(
            db.relation("card"), db.relation("billing")
        )
        assert report.rule_fires["md-phi1"] >= 1

    def test_match_pairs_helper(self):
        db, smith_card, smith_bill, _ = _pairs_db()
        rules = list(example31_mds().values())
        pairs = match_pairs(db.relation("card"), db.relation("billing"), rules)
        assert (smith_card, smith_bill) in pairs


class TestQualityMetrics:
    def test_perfect_scores(self):
        report = MatchReport({("a", "b")}, comparisons=1, rule_fires={})
        quality = report.quality({("a", "b")})
        assert quality == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_empty_matches(self):
        report = MatchReport(set(), comparisons=0, rule_fires={})
        quality = report.quality({("a", "b")})
        assert quality["precision"] == 1.0
        assert quality["recall"] == 0.0

    def test_false_positive(self):
        report = MatchReport({("a", "b"), ("a", "c")}, 0, {})
        quality = report.quality({("a", "b")})
        assert quality["precision"] == 0.5
        assert quality["recall"] == 1.0


class TestOnWorkload:
    def test_rcks_improve_recall(self):
        """§4.2: derived RCKs improve object identification quality.

        The regime is the practical one of §3.3: rules applied directly
        on the source data (``chain=False``), where a ⇋-premise is only
        witnessed by raw equality.  Derived RCKs compile the reasoning
        chain into direct comparisons and recover the lost matches."""
        from repro.md.rck import derive_rcks

        workload = generate_card_billing(
            CardBillingConfig(n_people=50, unrelated_billing=15, seed=3)
        )
        target = (list(YC), list(YB))
        base = list(example31_mds().values())
        base_quality = (
            ObjectIdentifier(base, target=target, chain=False)
            .identify(workload.card, workload.billing)
            .quality(workload.truth)
        )
        rcks = derive_rcks(base, list(YC), list(YB), max_length=3)
        enriched_quality = (
            ObjectIdentifier(base + rcks, target=target, chain=False)
            .identify(workload.card, workload.billing)
            .quality(workload.truth)
        )
        assert enriched_quality["recall"] > base_quality["recall"]
        assert enriched_quality["f1"] > base_quality["f1"]

    def test_chaining_engine_is_the_ceiling(self):
        """Full ⇋-chaining subsumes what the derived rules recover."""
        from repro.md.rck import derive_rcks

        workload = generate_card_billing(
            CardBillingConfig(n_people=50, unrelated_billing=15, seed=3)
        )
        target = (list(YC), list(YB))
        base = list(example31_mds().values())
        rcks = derive_rcks(base, list(YC), list(YB), max_length=3)
        direct = (
            ObjectIdentifier(base + rcks, target=target, chain=False)
            .identify(workload.card, workload.billing)
            .quality(workload.truth)
        )
        chained = (
            ObjectIdentifier(base, target=target, chain=True)
            .identify(workload.card, workload.billing)
            .quality(workload.truth)
        )
        assert chained["recall"] >= direct["recall"]
