"""Similarity operators: metrics from scratch plus the §3.2 axioms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.similarity import (
    EQ,
    ContainmentLattice,
    EditDistanceSimilarity,
    JaroSimilarity,
    QGramSimilarity,
    TokenSetSimilarity,
    jaro,
    levenshtein,
    qgrams,
)

TEXT = st.text(alphabet="abcdef ", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("", "xyz", 3),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(TEXT, TEXT)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(TEXT, TEXT, TEXT)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(TEXT)
    @settings(max_examples=50, deadline=None)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        # classical example: martha vs marhta ≈ 0.944
        assert abs(jaro("martha", "marhta") - 0.9444) < 0.01

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    @given(TEXT, TEXT)
    @settings(max_examples=80, deadline=None)
    def test_range_and_symmetry(self, a, b):
        score = jaro(a, b)
        assert 0.0 <= score <= 1.0
        assert abs(score - jaro(b, a)) < 1e-9


class TestQGrams:
    def test_padding(self):
        grams = qgrams("ab", 2)
        assert "#a" in grams and "b#" in grams

    def test_single_char(self):
        assert qgrams("a", 2) == {"#a", "a#"}


class TestOperatorAxioms:
    """§3.2: reflexive, symmetric, subsumes equality."""

    OPERATORS = [
        EQ,
        EditDistanceSimilarity(2),
        JaroSimilarity(0.8),
        QGramSimilarity(2, 0.5),
        TokenSetSimilarity(0.5),
    ]

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    @given(value=TEXT)
    @settings(max_examples=30, deadline=None)
    def test_reflexive(self, op, value):
        assert op.similar(value, value)

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    @given(a=TEXT, b=TEXT)
    @settings(max_examples=30, deadline=None)
    def test_symmetric(self, op, a, b):
        assert op.similar(a, b) == op.similar(b, a)

    @pytest.mark.parametrize("op", OPERATORS, ids=lambda o: o.name)
    @given(a=TEXT)
    @settings(max_examples=30, deadline=None)
    def test_subsumes_equality(self, op, a):
        assert op.similar(a, str(a))


class TestThresholds:
    def test_edit_distance_threshold(self):
        op = EditDistanceSimilarity(1)
        # plain Levenshtein: a transposition costs 2, one substitution 1
        assert not op.similar("John", "Jonh")
        assert op.similar("John", "Johm")
        assert not op.similar("John", "Mary")

    def test_length_shortcut(self):
        op = EditDistanceSimilarity(1)
        assert not op.similar("a", "abcdef")

    def test_token_set(self):
        op = TokenSetSimilarity(0.6)
        assert op.similar("12 Mountain Ave", "Mountain Ave 12")
        assert not op.similar("12 Mountain Ave", "99 Ocean Blvd")


class TestContainment:
    def test_equality_contained_in_everything(self):
        edit = EditDistanceSimilarity(2)
        assert EQ.contained_in(edit)
        assert not edit.contained_in(EQ)

    def test_edit_thresholds_ordered(self):
        tight = EditDistanceSimilarity(1)
        loose = EditDistanceSimilarity(3)
        assert tight.contained_in(loose)
        assert not loose.contained_in(tight)

    def test_jaro_thresholds_ordered_inverted(self):
        strict = JaroSimilarity(0.95)
        loose = JaroSimilarity(0.7)
        assert strict.contained_in(loose)
        assert not loose.contained_in(strict)

    def test_lattice_transitive_closure(self):
        e1 = EditDistanceSimilarity(1)
        e2 = EditDistanceSimilarity(2)
        e3 = EditDistanceSimilarity(3)
        lattice = ContainmentLattice([e1, e2, e3])
        assert lattice.contains(e1, e3)
        assert lattice.contains(EQ, e1)
        assert not lattice.contains(e3, e1)

    def test_extra_pairs(self):
        edit = EditDistanceSimilarity(1)
        token = TokenSetSimilarity(0.5)
        lattice = ContainmentLattice(
            [edit, token], extra_pairs=[(edit.name, token.name)]
        )
        assert lattice.contains(edit, token)
