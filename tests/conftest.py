"""Shared fixtures: small schemas and the paper's instances.

Also registers the hypothesis settings profiles: the default "dev"
profile keeps hypothesis's standard deadline, while "ci" disables
per-example deadlines entirely — property tests that touch the parallel
engine can hit process-pool startup jitter on loaded CI runners, and a
wall-clock deadline would turn that into flakes.  Select with
``HYPOTHESIS_PROFILE=ci`` (the CI workflow does).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile("dev", settings())
settings.register_profile(
    "ci",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.paper import (
    customer_schema,
    fig1_fds,
    fig1_instance,
    fig2_cfds,
    fig3_instance,
    fig4_cinds,
    source_target_schema,
)
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def ab_schema() -> RelationSchema:
    """A tiny two-attribute string relation R(A, B)."""
    return RelationSchema("R", [("A", STRING), ("B", STRING)])


@pytest.fixture
def abc_schema() -> RelationSchema:
    """R(A, B, C) over strings."""
    return RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])


@pytest.fixture
def ab_db(ab_schema) -> DatabaseInstance:
    """An empty database over R(A, B)."""
    return DatabaseInstance(DatabaseSchema([ab_schema]))


@pytest.fixture
def customers() -> DatabaseInstance:
    return fig1_instance()


@pytest.fixture
def customer_rel_schema() -> RelationSchema:
    return customer_schema()


@pytest.fixture
def fig2() -> dict:
    return fig2_cfds()


@pytest.fixture
def fig1_fd_list() -> list:
    return fig1_fds()


@pytest.fixture
def orders_db() -> DatabaseInstance:
    return fig3_instance()


@pytest.fixture
def fig4() -> dict:
    return fig4_cinds()


@pytest.fixture
def orders_schema() -> DatabaseSchema:
    return source_target_schema()
