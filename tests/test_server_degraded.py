"""Degraded-session gating under fault injection, and client transport
error wrapping.

The gate's contract (``docs/server.md`` Ops section): failures count
only when the handler dies with a 5xx-class error; the request that
crosses ``degraded_after`` consecutive failures itself answers 503 with
a ``degraded`` document; the next request to reach the lock runs as a
recovery probe (success answers 200 and resets the counters); requests
arriving *during* an in-flight probe are rejected with a fast 503 that
never queues on the session lock — and the lock itself is released on
every path, so a degraded session can never poison it.
"""

from __future__ import annotations

import threading

import pytest

from repro.client import ServerClient, ServerError
from repro.server import DEFAULT_DEGRADED_AFTER, make_server

SCHEMA_DOC = {
    "name": "emp",
    "attributes": [
        {"name": "dept", "type": "string"},
        {"name": "floor", "type": "int"},
    ],
}
RULES_DOC = [
    {"type": "fd", "relation": "emp", "lhs": ["dept"], "rhs": ["floor"]}
]
ROWS = [
    {"dept": "eng", "floor": 1},
    {"dept": "eng", "floor": 2},
    {"dept": "ops", "floor": 3},
]

THRESHOLD = 3


@pytest.fixture(scope="module")
def server():
    server = make_server(port=0, degraded_after=THRESHOLD)
    server.start_background()
    yield server
    server.shutdown()


@pytest.fixture(scope="module")
def client(server):
    client = ServerClient(base_url=server.base_url)
    client.wait_ready()
    return client


def _fresh(client: ServerClient, session_id: str):
    try:
        client.delete_session(session_id)
    except ServerError:
        pass
    return client.create_session(
        schema=SCHEMA_DOC,
        rules=RULES_DOC,
        data={"emp": list(ROWS)},
        session_id=session_id,
    )


def _inject_failures(server, session_id: str, failures: int):
    """Monkeypatch the hosted session's detect to fail ``failures`` times
    (a 5xx-class engine explosion), then behave normally again."""
    hosted = server.manager.get(session_id)
    real = hosted.session.detect
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] <= failures:
            raise RuntimeError(f"injected engine fault #{calls['n']}")
        return real(*args, **kwargs)

    hosted.session.detect = flaky
    return hosted, calls


class TestDegradedLifecycle:
    def test_default_threshold_exported(self):
        assert DEFAULT_DEGRADED_AFTER == 5

    def test_failure_degrade_probe_recover_sequence(self, server, client):
        """Threshold 3, four injected faults: two plain 500s, the
        threshold-crossing 503, one failed probe (503), then a probe
        that succeeds and answers 200."""
        _fresh(client, "deg-seq")
        hosted, _ = _inject_failures(server, "deg-seq", failures=THRESHOLD + 1)
        statuses = []
        bodies = []
        for _ in range(THRESHOLD + 2):
            try:
                client.detect("deg-seq")
                statuses.append(200)
            except ServerError as exc:
                statuses.append(exc.status)
                bodies.append(exc.document)
        assert statuses == [500, 500, 503, 503, 200]
        # both 503s carried the degraded document
        for body in bodies[-2:]:
            degraded = body.get("degraded", {})
            assert degraded.get("session") == "deg-seq"
            assert degraded.get("degraded") is True
            assert degraded.get("consecutive_failures", 0) >= THRESHOLD
            assert "injected engine fault" in degraded.get("last_error", "")
        # recovery reset the counters: healthy in info and diagnostics
        assert client.session_info("deg-seq")["degraded"] is False
        diag = client.diagnostics("deg-seq")
        assert diag["degraded"]["degraded"] is False
        assert diag["degraded"]["consecutive_failures"] == 0
        assert diag["degraded"]["degraded_total"] == 1
        assert hosted.failures == 0
        client.delete_session("deg-seq")

    def test_counters_reach_metrics(self, server, client):
        before = client.metrics()["degraded"]
        _fresh(client, "deg-count")
        _inject_failures(server, "deg-count", failures=THRESHOLD + 1)
        for _ in range(THRESHOLD + 2):
            try:
                client.detect("deg-count")
            except ServerError:
                pass
        after = client.metrics()["degraded"]
        assert after["threshold"] == THRESHOLD
        assert (
            after["handler_failures_total"]
            == before["handler_failures_total"] + THRESHOLD + 1
        )
        assert after["degraded_total"] == before["degraded_total"] + 1
        assert after["probes_total"] == before["probes_total"] + 2
        assert after["recoveries_total"] == before["recoveries_total"] + 1
        client.delete_session("deg-count")

    def test_client_errors_do_not_degrade(self, client):
        """4xx-class failures say nothing about session health."""
        _fresh(client, "deg-4xx")
        for _ in range(THRESHOLD + 2):
            with pytest.raises(ServerError) as err:
                client.undo("deg-4xx", "undo-999")
            assert err.value.status == 400
        # still healthy: detect answers normally
        assert client.detect("deg-4xx")["total"] == 1
        assert client.session_info("deg-4xx")["degraded"] is False
        client.delete_session("deg-4xx")

    def test_degraded_session_keeps_serving_diagnostics(self, server, client):
        _fresh(client, "deg-diag")
        _inject_failures(server, "deg-diag", failures=THRESHOLD)
        for _ in range(THRESHOLD):
            with pytest.raises(ServerError):
                client.detect("deg-diag")
        # gated verbs 503 (as probes that keep failing would), but the
        # ungated reads still answer
        diag = client.diagnostics("deg-diag")
        assert diag["degraded"]["degraded"] is True
        assert client.get_rules("deg-diag") == RULES_DOC
        client.delete_session("deg-diag")


class TestFastPathRejection:
    def test_concurrent_request_rejected_while_probe_in_flight(
        self, server, client
    ):
        _fresh(client, "deg-fast")
        hosted = server.manager.get("deg-fast")
        real = hosted.session.detect
        probe_entered = threading.Event()
        release_probe = threading.Event()
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] <= THRESHOLD:
                raise RuntimeError("injected engine fault")
            probe_entered.set()
            assert release_probe.wait(timeout=30)
            return real(*args, **kwargs)

        hosted.session.detect = flaky
        for _ in range(THRESHOLD):
            with pytest.raises(ServerError):
                client.detect("deg-fast")
        assert hosted.is_degraded

        probe_result = {}

        def run_probe():
            probe_result["doc"] = client.detect("deg-fast")

        probe = threading.Thread(target=run_probe)
        probe.start()
        try:
            assert probe_entered.wait(timeout=30)
            # the probe holds the lock inside the handler; a concurrent
            # request must be rejected instantly, without queueing
            rejected_before = client.metrics()["degraded"]["rejected_total"]
            with pytest.raises(ServerError) as err:
                client.detect("deg-fast")
            assert err.value.status == 503
            assert "probe" in str(err.value)
            assert (
                client.metrics()["degraded"]["rejected_total"]
                == rejected_before + 1
            )
        finally:
            release_probe.set()
            probe.join(timeout=30)
        # the probe succeeded: session recovered, answers normally
        assert probe_result["doc"]["total"] == 1
        assert client.session_info("deg-fast")["degraded"] is False
        client.delete_session("deg-fast")

    def test_lock_never_poisoned(self, server, client):
        """After the whole degrade/probe/recover cycle the per-session
        lock is free and later verbs run normally."""
        _fresh(client, "deg-lock")
        hosted, _ = _inject_failures(
            server, "deg-lock", failures=THRESHOLD + 1
        )
        for _ in range(THRESHOLD + 2):
            try:
                client.detect("deg-lock")
            except ServerError:
                pass
        assert not hosted.lock.locked()
        assert hosted.probe_in_flight is False
        delta = client.apply(
            "deg-lock",
            {"ops": [{"op": "insert", "relation": "emp",
                      "row": {"dept": "qa", "floor": 9}}]},
        )
        assert "undo_token" in delta
        client.delete_session("deg-lock")


class TestClientTransportErrors:
    def test_connection_refused_is_retriable_server_error(self):
        dead = ServerClient(base_url="http://127.0.0.1:9", timeout=1.0)
        with pytest.raises(ServerError) as err:
            dead.healthz()
        assert err.value.status == 0
        assert err.value.retriable is True

    def test_http_404_is_not_retriable(self, client):
        with pytest.raises(ServerError) as err:
            client.session_info("never-created")
        assert err.value.status == 404
        assert err.value.retriable is False
        assert "error" in err.value.document

    def test_503_is_retriable(self, server, client):
        _fresh(client, "deg-retry")
        _inject_failures(server, "deg-retry", failures=THRESHOLD)
        statuses = []
        for _ in range(THRESHOLD):
            with pytest.raises(ServerError) as err:
                client.detect("deg-retry")
            statuses.append((err.value.status, err.value.retriable))
        assert statuses == [(500, False), (500, False), (503, True)]
        client.delete_session("deg-retry")

    def test_wait_ready_gives_up_on_non_retriable(self, client):
        # a 404 from a live server must not be polled through
        bogus = ServerClient(base_url=client.base_url + "/sessions/nope")
        with pytest.raises(ServerError) as err:
            bogus.wait_ready(attempts=50, delay=0.01)
        assert err.value.retriable is False
