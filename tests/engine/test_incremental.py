"""IncrementalChecker vs. materialized full re-checks.

Ground truth for every case: copy the base database, apply the edit, and
run ``holds``.  The incremental answer must agree whenever the base
satisfies the dependency set (the checker's documented precondition).
"""

from __future__ import annotations

import random

from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.deps.base import holds
from repro.deps.denial import fd_as_denial
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.incremental import IncrementalChecker
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.tuples import Tuple


def _schemas():
    r = RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])
    s = RelationSchema("S", [("X", STRING), ("Y", STRING)])
    return DatabaseSchema([r, s])


def _materialized(db, deps, rel, removed=None, added=None):
    trial = db.copy()
    if removed is not None:
        trial.relation(rel).discard(removed)
    if added is not None:
        trial.relation(rel).add(added)
    return holds(trial, deps)


def _assert_matches(db, deps, rel, removed=None, added=None):
    checker = IncrementalChecker(db, deps)
    expected = _materialized(db, deps, rel, removed, added)
    assert checker.consistent_after(rel, removed=removed, added=added) == expected


class TestScanDependencies:
    def _db(self, rows):
        return DatabaseInstance(_schemas(), {"R": rows})

    def test_addition_violating_fd(self):
        db = self._db([("a", "x", "1")])
        fd = FD("R", ["A"], ["B"])
        bad = Tuple(db.relation("R").schema, ("a", "y", "2"))
        good = Tuple(db.relation("R").schema, ("b", "y", "2"))
        _assert_matches(db, [fd], "R", added=bad)
        _assert_matches(db, [fd], "R", added=good)
        assert not IncrementalChecker(db, [fd]).consistent_after("R", added=bad)

    def test_addition_violating_constant_cfd(self):
        db = self._db([("b", "x", "1")])
        cfd = CFD("R", ["A"], ["B"], [{"A": "a", "B": "x"}])
        bad = Tuple(db.relation("R").schema, ("a", "y", "2"))
        _assert_matches(db, [cfd], "R", added=bad)
        assert not IncrementalChecker(db, [cfd]).consistent_after("R", added=bad)

    def test_replacement_within_group(self):
        db = self._db([("a", "x", "1"), ("a", "x", "2")])
        fd = FD("R", ["A"], ["B"])
        old = db.relation("R").tuples()[0]
        replacement = old.replace(B="y")  # still groups with the survivor
        _assert_matches(db, [fd], "R", removed=old, added=replacement)
        assert not IncrementalChecker(db, [fd]).consistent_after(
            "R", removed=old, added=replacement
        )

    def test_removal_alone_never_breaks_scans(self):
        db = self._db([("a", "x", "1"), ("b", "y", "2")])
        deps = [FD("R", ["A"], ["B"]), CFD("R", ["A"], ["B"], [{"A": "a", "B": "x"}])]
        for t in db.relation("R").tuples():
            _assert_matches(db, deps, "R", removed=t)
            assert IncrementalChecker(db, deps).consistent_after("R", removed=t)


class TestInclusionDependencies:
    def _db(self, r_rows, s_rows):
        return DatabaseInstance(_schemas(), {"R": r_rows, "S": s_rows})

    def test_source_addition_demanding_missing_key(self):
        db = self._db([("a", "x", "1")], [("a", "p")])
        ind = IND("R", ["A"], "S", ["X"])
        orphan = Tuple(db.relation("R").schema, ("z", "x", "2"))
        matched = Tuple(db.relation("R").schema, ("a", "y", "2"))
        _assert_matches(db, [ind], "R", added=orphan)
        _assert_matches(db, [ind], "R", added=matched)

    def test_target_removal_strands_source(self):
        db = self._db([("a", "x", "1")], [("a", "p"), ("b", "q")])
        ind = IND("R", ["A"], "S", ["X"])
        provider = db.relation("S").tuples()[0]  # ("a", "p")
        spare = db.relation("S").tuples()[1]
        _assert_matches(db, [ind], "S", removed=provider)
        _assert_matches(db, [ind], "S", removed=spare)
        assert not IncrementalChecker(db, [ind]).consistent_after(
            "S", removed=provider
        )

    def test_target_removal_with_second_provider(self):
        db = self._db([("a", "x", "1")], [("a", "p"), ("a", "q")])
        ind = IND("R", ["A"], "S", ["X"])
        provider = db.relation("S").tuples()[0]
        _assert_matches(db, [ind], "S", removed=provider)
        assert IncrementalChecker(db, [ind]).consistent_after("S", removed=provider)

    def test_target_replacement_keeps_key(self):
        db = self._db([("a", "x", "1")], [("a", "p")])
        ind = IND("R", ["A"], "S", ["X"])
        provider = db.relation("S").tuples()[0]
        replacement = provider.replace(Y="q")
        _assert_matches(db, [ind], "S", removed=provider, added=replacement)
        assert IncrementalChecker(db, [ind]).consistent_after(
            "S", removed=provider, added=replacement
        )

    def test_cind_pattern_scoping(self):
        cind = CIND(
            "R",
            ["A"],
            "S",
            ["X"],
            lhs_pattern_attrs=["B"],
            rhs_pattern_attrs=["Y"],
            tableau=[{"B": "x", "Y": "p"}],
        )
        db = self._db([("a", "x", "1")], [("a", "p"), ("a", "q")])
        # removing the ("a", "q") tuple is irrelevant: wrong Y pattern
        irrelevant = db.relation("S").tuples()[1]
        provider = db.relation("S").tuples()[0]
        _assert_matches(db, [cind], "S", removed=irrelevant)
        _assert_matches(db, [cind], "S", removed=provider)
        # a source tuple outside the Xp pattern is unconstrained
        unscoped = Tuple(db.relation("R").schema, ("zz", "y", "2"))
        _assert_matches(db, [cind], "R", added=unscoped)


class TestFallbackAndEdgeCases:
    def _db(self, rows):
        return DatabaseInstance(_schemas(), {"R": rows})

    def test_noop_change(self):
        db = self._db([("a", "x", "1")])
        t = db.relation("R").tuples()[0]
        checker = IncrementalChecker(db, [FD("R", ["A"], ["B"])])
        assert checker.consistent_after("R", removed=t, added=t)
        assert checker.consistent_after("R")

    def test_adding_already_present_tuple(self):
        db = self._db([("a", "x", "1"), ("b", "y", "2")])
        existing = db.relation("R").tuples()[0]
        checker = IncrementalChecker(db, [FD("R", ["A"], ["B"])])
        assert checker.consistent_after("R", added=existing)

    def test_denial_constraint_falls_back_to_full_check(self):
        fd = FD("R", ["A"], ["B"])
        denial = fd_as_denial(fd)
        db = self._db([("a", "x", "1")])
        bad = Tuple(db.relation("R").schema, ("a", "y", "2"))
        _assert_matches(db, [denial], "R", added=bad)
        assert not IncrementalChecker(db, [denial]).consistent_after("R", added=bad)


def test_randomized_against_materialized_ground_truth():
    values = ["a", "b"]
    schema = _schemas()
    deps = [
        FD("R", ["A"], ["B"]),
        CFD("R", ["A", "B"], ["C"], [{"A": "a", "B": UNNAMED, "C": UNNAMED}]),
        IND("R", ["A"], "S", ["X"]),
        CIND(
            "R",
            ["C"],
            "S",
            ["Y"],
            lhs_pattern_attrs=["A"],
            tableau=[{"A": "a"}],
        ),
    ]
    checked = 0
    for seed in range(200):
        rng = random.Random(seed)
        db = DatabaseInstance(schema)
        for _ in range(rng.randrange(0, 8)):
            db.relation("R").add([rng.choice(values) for _ in range(3)])
        for _ in range(rng.randrange(0, 6)):
            db.relation("S").add([rng.choice(values) for _ in range(2)])
        if not holds(db, deps):
            continue  # checker precondition: consistent base
        checker = IncrementalChecker(db, deps)
        edits = []
        for rel in ("R", "S"):
            arity = len(db.relation(rel).schema)
            fresh = Tuple(
                db.relation(rel).schema,
                [rng.choice(values) for _ in range(arity)],
            )
            edits.append((rel, None, fresh))
            for t in db.relation(rel).tuples():
                edits.append((rel, t, None))
                edits.append((rel, t, fresh))
        for rel, removed, added in edits:
            expected = _materialized(db, deps, rel, removed, added)
            actual = checker.consistent_after(rel, removed=removed, added=added)
            assert actual == expected, (seed, rel, removed, added)
            checked += 1
    assert checked > 300  # the sweep actually exercised consistent bases
