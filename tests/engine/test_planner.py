"""Detection planner: signature grouping and fallback routing."""

from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.deps.denial import fd_as_denial
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.planner import plan_detection


def test_same_lhs_cfds_share_one_scan_group():
    deps = [
        CFD("R", ["A"], ["B"], [{"A": "u", "B": "x"}]),
        CFD("R", ["A"], ["C"], [{"A": "v", "C": "y"}]),
        FD("R", ["A"], ["B"]),
    ]
    plan = plan_detection(deps)
    assert len(plan.scan_groups) == 1
    group = plan.scan_groups[0]
    assert group.relation_name == "R"
    assert group.signature == ("A",)
    assert [pos for pos, _ in group.members] == [0, 1, 2]
    assert plan.shared_scans == 2


def test_permuted_lhs_shares_partition():
    deps = [
        FD("R", ["A", "B"], ["C"]),
        FD("R", ["B", "A"], ["C"]),
    ]
    plan = plan_detection(deps)
    assert len(plan.scan_groups) == 1
    assert plan.scan_groups[0].signature == ("A", "B")


def test_different_relations_do_not_share():
    deps = [FD("R", ["A"], ["B"]), FD("S", ["A"], ["B"])]
    plan = plan_detection(deps)
    assert len(plan.scan_groups) == 2


def test_inclusion_grouping_by_target_signature():
    deps = [
        IND("R", ["A"], "S", ["A"]),
        IND("T", ["A"], "S", ["A"]),
        CIND("R", ["A"], "S", ["A"], rhs_pattern_attrs=["B"], tableau=[{"B": "x"}]),
    ]
    plan = plan_detection(deps)
    # the two INDs share the (S, (), (A,)) index; the CIND needs (S, (B,), (A,))
    assert len(plan.inclusion_groups) == 2
    sizes = sorted(len(g.members) for g in plan.inclusion_groups)
    assert sizes == [1, 2]
    assert plan.shared_scans == 1


def test_unsupported_dependency_goes_to_fallback():
    denial = fd_as_denial(FD("R", ["A"], ["B"]))
    plan = plan_detection([denial, FD("R", ["A"], ["B"])])
    assert [pos for pos, _ in plan.fallback] == [0]
    assert len(plan.scan_groups) == 1


def test_describe_lists_every_dependency():
    deps = [
        CFD("R", ["A"], ["B"], [{"A": "u", "B": "x"}], name="phi-a"),
        IND("R", ["A"], "S", ["A"]),
        fd_as_denial(FD("R", ["A"], ["B"])),
    ]
    description = plan_detection(deps).describe()
    assert "phi-a" in description
    assert "fallback" in description
    assert "inclusion into S" in description


def test_positions_track_input_order_with_duplicates():
    shared = CFD("R", ["A"], ["B"], [{"A": "u", "B": "x"}])
    plan = plan_detection([shared, shared])
    assert [pos for pos, _ in plan.scan_groups[0].members] == [0, 1]
