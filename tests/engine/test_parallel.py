"""Unit tests for the sharded parallel execution engine.

The differential corpus (``test_differential.py``) and the hypothesis
properties (``test_parallel_properties.py``) pin the parallel paths to
their serial twins in bulk; this module covers the machinery itself —
stable shard assignment, environment resolution, job accounting, the
process-pool path, and the serial fallbacks for non-decomposable work.
"""

from __future__ import annotations

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.deps.denial import DenialConstraint
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.delta import Changeset, DeltaEngine, violation_multiset
from repro.engine.executor import detect_violations_indexed
from repro.engine.parallel import (
    ParallelExecutor,
    default_shards,
    detect_violations_parallel,
    resolve_shards,
    stable_shard,
)
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import And, Comparison
from repro.relational.schema import DatabaseSchema, RelationSchema


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("R", [("A", STRING), ("B", STRING)]),
            RelationSchema("S", [("X", STRING)]),
        ]
    )


def _db(r_rows=(), s_rows=()) -> DatabaseInstance:
    db = DatabaseInstance(_schema())
    for row in r_rows:
        db.relation("R").add(row)
    for row in s_rows:
        db.relation("S").add(row)
    return db


class TestStableShard:
    def test_deterministic_and_in_range(self):
        keys = [("a",), ("a", "b"), (1, 2.5), (None,), ("a", None, 3)]
        for key in keys:
            for shards in (1, 2, 3, 8, 64):
                shard = stable_shard(key, shards)
                assert 0 <= shard < shards
                assert shard == stable_shard(key, shards)  # stable across calls

    def test_single_shard_short_circuits(self):
        assert stable_shard(("anything",), 1) == 0

    def test_spreads_keys(self):
        shards = {stable_shard((f"k{i}",), 8) for i in range(100)}
        assert len(shards) > 1  # not everything hashes to one shard

    def test_congruent_with_dict_key_equality(self):
        # Partition keys are dict keys: 1 == 1.0 == True and 0.0 == -0.0,
        # so equal keys must land in the same shard even when reprs differ.
        for shards in (2, 3, 8):
            assert stable_shard((1,), shards) == stable_shard((1.0,), shards)
            assert stable_shard((1,), shards) == stable_shard((True,), shards)
            assert stable_shard((0.0,), shards) == stable_shard((-0.0,), shards)
            assert stable_shard((0,), shards) == stable_shard((False,), shards)
        # ...while the string "1" is a different key from the number 1
        # (allowed to differ; asserting documents the type tagging)
        assert isinstance(stable_shard(("1",), 8), int)

    def test_mixed_numeric_representations_detect_equally(self):
        # Regression: repr-based sharding split the logical partition
        # {A: 1} across shards when rows carried int 1 and float 1.0,
        # hiding FD pair violations and fabricating IND violations.
        from repro.relational.domains import FLOAT

        schema = DatabaseSchema(
            [
                RelationSchema("R", [("A", FLOAT), ("B", STRING)]),
                RelationSchema("S", [("X", FLOAT)]),
            ]
        )
        db = DatabaseInstance(schema)
        db.relation("R").add((1, "x"))
        db.relation("R").add((1.0, "y"))  # same A-partition as int 1
        db.relation("R").add((2.5, "z"))
        db.relation("S").add((1.0,))  # provides the key for int 1 demands
        deps = [FD("R", ["A"], ["B"]), IND("R", ["A"], "S", ["X"])]
        serial = violation_multiset(detect_violations_indexed(db, deps).violations)
        for shards in (2, 3, 8):
            report = detect_violations_parallel(
                db, deps, shards=shards, use_pool=False
            )
            assert violation_multiset(report.violations) == serial, shards
            engine = DeltaEngine(db.copy(), deps, shards=shards)
            assert violation_multiset(engine.violations()) == serial, shards


class TestResolveShards:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "7")
        assert resolve_shards(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "4")
        assert resolve_shards(None) == 4
        assert default_shards() == 4

    def test_unset_and_garbage_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEFAULT_SHARDS", raising=False)
        assert resolve_shards(None) == 1
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "not-a-number")
        assert resolve_shards(None) == 1

    def test_invalid_explicit_count(self):
        with pytest.raises(ValueError):
            resolve_shards(0)


def _mixed_case():
    db = _db(
        r_rows=[("a", "b"), ("a", "c"), ("d", "b"), ("e", "x")],
        s_rows=[("a",), ("d",)],
    )
    deps = [
        FD("R", ["A"], ["B"]),
        CFD("R", ["A"], ["B"], [{"A": "a", "B": "b"}, {"A": UNNAMED, "B": UNNAMED}]),
        IND("R", ["A"], "S", ["X"]),
        DenialConstraint(
            ("R",), And([Comparison("@t0.A", "=", "e")]), name="deny-e"
        ),
    ]
    return db, deps


class TestParallelExecutor:
    def test_stats_account_for_jobs_and_serial_work(self):
        db, deps = _mixed_case()
        executor = ParallelExecutor(shards=3, use_pool=False)
        report = executor.detect(db, deps)
        stats = executor.stats
        assert stats.shards == 3
        assert stats.pool_workers == 0  # inline run
        # FD+CFD share one scan group: 3 shard jobs; IND: 3 shard jobs.
        assert stats.scan_jobs == 3
        assert stats.inclusion_jobs == 3
        assert stats.serial_deps == 1  # the denial constraint
        assert report.total == len(
            detect_violations_indexed(db, deps).violations
        )

    def test_pool_path_matches_inline(self):
        db, deps = _mixed_case()
        inline = detect_violations_parallel(db, deps, shards=4, use_pool=False)
        executor = ParallelExecutor(shards=4, workers=2, use_pool=True)
        pooled = executor.detect(db, deps)
        assert executor.stats.pool_workers == 2
        assert violation_multiset(pooled.violations) == violation_multiset(
            inline.violations
        )
        # rebound violations reference the caller's dependency objects
        assert {id(v.dependency) for v in pooled.violations} <= {
            id(dep) for dep in deps
        }

    def test_self_inclusion_runs_serially(self):
        schema = DatabaseSchema(
            [RelationSchema("R", [("A", STRING), ("B", STRING)])]
        )
        db = DatabaseInstance(schema)
        for row in [("a", "b"), ("b", "c"), ("x", "y")]:
            db.relation("R").add(row)
        dep = IND("R", ["B"], "R", ["A"])  # every B value must appear as an A
        executor = ParallelExecutor(shards=4, use_pool=False)
        report = executor.detect(db, [dep])
        assert executor.stats.serial_deps == 1
        assert executor.stats.inclusion_jobs == 0
        assert violation_multiset(report.violations) == violation_multiset(
            detect_violations_indexed(db, [dep]).violations
        )

    def test_empty_database(self):
        _, deps = _mixed_case()
        report = detect_violations_parallel(_db(), deps, shards=4, use_pool=False)
        assert report.total == 0

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(shards=2, workers=0)


class TestShardedDeltaEngine:
    def test_engine_exposes_shard_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEFAULT_SHARDS", raising=False)
        db, deps = _mixed_case()
        assert DeltaEngine(db.copy(), deps).shards == 1
        assert DeltaEngine(db.copy(), deps, shards=5).shards == 5

    def test_env_default_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "3")
        db, deps = _mixed_case()
        engine = DeltaEngine(db, deps)
        assert engine.shards == 3
        assert violation_multiset(engine.violations()) == violation_multiset(
            detect_violations_indexed(db, deps).violations
        )

    def test_partitions_merge_across_shards(self):
        db, deps = _mixed_case()
        serial = DeltaEngine(db.copy(), deps)
        sharded = DeltaEngine(db.copy(), deps, shards=4)
        signature = ("A",)
        merged = sharded.partitions("R", signature)
        reference = serial.partitions("R", signature)
        assert merged is not None and reference is not None
        assert {k: list(g) for k, g in merged.items()} == {
            k: list(g) for k, g in reference.items()
        }

    def test_refresh_preserves_shard_count(self):
        db, deps = _mixed_case()
        engine = DeltaEngine(db, deps, shards=4)
        db.relation("R").add(("z", "z"))  # behind the engine's back
        engine.refresh()
        assert engine.shards == 4
        assert violation_multiset(engine.violations()) == violation_multiset(
            detect_violations_indexed(db, deps).violations
        )


class TestSessionKnobs:
    def test_session_parallel_executor_and_shards(self):
        from repro.session import Session

        db, deps = _mixed_case()
        session = Session.from_instance(
            db, deps, executor="parallel", shards=4
        )
        assert session.shards == 4
        report = session.detect()
        assert violation_multiset(report.violations) == violation_multiset(
            detect_violations_indexed(db, deps).violations
        )
        assert session.engine.shards == 4

    def test_session_rejects_unknown_executor(self):
        from repro.errors import ReproError
        from repro.session import Session

        db, _ = _mixed_case()
        with pytest.raises(ReproError):
            Session.from_instance(db, executor="mapreduce")

    def test_detect_call_level_override(self):
        from repro.session import Session

        db, deps = _mixed_case()
        session = Session.from_instance(db, deps)  # indexed by default
        serial = session.detect()
        overridden = session.detect(executor="parallel", shards=3)
        assert violation_multiset(overridden.violations) == violation_multiset(
            serial.violations
        )

    def test_detect_shards_alone_implies_parallel(self):
        from repro.errors import ReproError
        from repro.session import Session

        db, deps = _mixed_case()
        session = Session.from_instance(db, deps)  # indexed by default
        serial = session.detect()
        # shards= alone opts the call into the parallel engine (CLI parity)
        sharded = session.detect(shards=4)
        assert violation_multiset(sharded.violations) == violation_multiset(
            serial.violations
        )
        # ...but contradicting an explicit non-parallel executor is an error
        with pytest.raises(ReproError):
            session.detect(executor="indexed", shards=4)
        with pytest.raises(ReproError):
            session.detect(engine=False, shards=4)

    def test_session_reuses_warm_parallel_executor(self):
        from repro.session import Session

        db, deps = _mixed_case()
        with Session.from_instance(
            db, deps, executor="parallel", shards=3
        ) as session:
            first = session.detect()
            executor = session._parallel
            assert executor is not None
            second = session.detect()
            assert session._parallel is executor  # cached across calls
            assert violation_multiset(first.violations) == violation_multiset(
                second.violations
            )
            # mutating the instance invalidates the executor's fingerprint
            session.apply(Changeset().insert("R", ("q", "q")))
            third = session.detect()
            assert violation_multiset(third.violations) == violation_multiset(
                detect_violations_indexed(db, deps).violations
            )
        assert session._parallel is None  # close() released it
