"""Property tests: index invalidation under deletes and in-place updates.

The original invalidation tests covered inserts; these drive random
*delete* and *cell-update* (remove + add of the edited tuple) histories
through both index layers and compare against a from-scratch rebuild:

* ``RelationIndexes`` (version-counter invalidation) — every cached
  structure must match what a fresh instance with the same content builds;
* the delta engine's maintained partitions (in-place patching, no version
  invalidation) — must stay identical to ``group_index`` on a rebuilt
  relation, including key order and within-group order.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.fd import FD
from repro.engine.delta import Changeset, DeltaEngine
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema

VALUES = ["a", "b", "c"]


def _schema():
    return RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])


# One op: (kind, row-seed, attr-index, value).  Interpreted against the
# live relation, so ops always target existing tuples when possible.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "update"]),
        st.integers(min_value=0, max_value=999),
        st.integers(min_value=0, max_value=2),
        st.sampled_from(VALUES),
    ),
    min_size=1,
    max_size=25,
)

rows_strategy = st.lists(
    st.tuples(*[st.sampled_from(VALUES)] * 3), min_size=0, max_size=8
)


def _run_ops(relation: RelationInstance, ops, probe=None):
    """Apply an op history; ``probe`` (if given) is called after every op
    so index caches are populated *between* mutations — the staleness
    window version invalidation must cover."""
    attrs = list(relation.schema.attribute_names)
    for kind, pick, attr_index, value in ops:
        live = relation.tuples()
        if kind == "insert":
            relation.add((VALUES[pick % 3], VALUES[(pick // 3) % 3], value))
        elif kind == "delete" and live:
            relation.discard(live[pick % len(live)])
        elif kind == "update" and live:
            target = live[pick % len(live)]
            updated = target.replace(**{attrs[attr_index]: value})
            # in-place cell update: remove + add, like the repair loops
            relation.discard(target)
            relation.add(updated)
        if probe is not None:
            probe(relation)


class TestRelationIndexesUnderDeletesAndUpdates:
    @given(rows_strategy, ops_strategy)
    @settings(max_examples=120, deadline=None)
    def test_all_index_kinds_match_fresh_rebuild(self, rows, ops):
        relation = RelationInstance(_schema(), rows)

        def probe(rel):
            # touch every cached structure so each mutation invalidates
            # genuinely warm caches, not empty ones
            rel.indexes.group_index(("A",))
            rel.indexes.key_set(("B",))
            rel.indexes.grouped_key_sets(("A",), ("B", "C"))
            rel.indexes.projection(("C",))

        _run_ops(relation, ops, probe=probe)
        fresh = RelationInstance(_schema(), relation.tuples())
        assert dict(relation.indexes.group_index(("A",))) == dict(
            fresh.indexes.group_index(("A",))
        )
        assert relation.indexes.key_set(("B",)) == fresh.indexes.key_set(("B",))
        assert dict(relation.indexes.grouped_key_sets(("A",), ("B", "C"))) == dict(
            fresh.indexes.grouped_key_sets(("A",), ("B", "C"))
        )
        assert list(relation.indexes.projection(("C",))) == list(
            fresh.indexes.projection(("C",))
        )

    @given(rows_strategy, ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_group_order_matches_insertion_order(self, rows, ops):
        relation = RelationInstance(_schema(), rows)
        _run_ops(
            relation, ops, probe=lambda rel: rel.indexes.group_index(("A", "B"))
        )
        groups = relation.indexes.group_index(("A", "B"))
        flattened = [t for group in groups.values() for t in group]
        by_key_scan = {}
        for t in relation:
            by_key_scan.setdefault((t["A"], t["B"]), []).append(t)
        assert [t for g in by_key_scan.values() for t in g] == flattened


class TestDeltaPartitionsUnderDeletesAndUpdates:
    def test_maintained_partitions_equal_rebuilt_group_index(self):
        deps = [FD("R", ["A"], ["B"])]
        for seed in range(40):
            rng = random.Random(52_000 + seed)
            db = DatabaseInstance(
                DatabaseSchema([_schema()]),
                {"R": [[rng.choice(VALUES) for _ in range(3)] for _ in range(6)]},
            )
            engine = DeltaEngine(db, deps)
            for _ in range(8):
                live = db.relation("R").tuples()
                cs = Changeset()
                kind = rng.choice(["delete", "update", "insert"])
                if kind == "insert" or not live:
                    cs.insert("R", [rng.choice(VALUES) for _ in range(3)])
                elif kind == "delete":
                    cs.delete("R", rng.choice(live))
                else:
                    cs.update(
                        "R",
                        rng.choice(live),
                        **{rng.choice(["A", "B", "C"]): rng.choice(VALUES)},
                    )
                engine.apply(cs)
                maintained = engine.partitions("R", ("A",))
                rebuilt = RelationInstance(
                    _schema(), db.relation("R").tuples()
                ).indexes.group_index(("A",))
                # Same partitions with the same within-group order (the
                # pair pivot semantics); key *iteration* order may differ
                # from a rebuild once deletions move a group's head.
                assert {
                    key: list(group) for key, group in maintained.items()
                } == {key: list(group) for key, group in rebuilt.items()}, seed
