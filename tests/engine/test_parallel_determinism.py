"""Regression: parallel output bytes are invariant to shard count/scheduling.

``ViolationReport.to_dict()`` from the parallel executor — and the CLI's
``detect --format json`` / ``stream --format json`` documents — must be
byte-identical for every shard count and for pool vs in-process
execution, so that horizontally scaling a deployment can never change
what clients read.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.paper import fig1_instance, fig2_cfds
from repro.relational.csvio import dump_csv
from repro.rules_json import rules_to_list, schema_to_dict
from repro.session import Session

SHARD_COUNTS = (1, 2, 4, 8)


def _session(shards):
    db = fig1_instance()
    rules = list(fig2_cfds().values())
    return Session.from_instance(db, rules, executor="parallel", shards=shards)


class TestReportBytes:
    def test_to_dict_bytes_invariant_across_shard_counts(self):
        documents = {
            shards: json.dumps(_session(shards).detect().to_dict(), sort_keys=False)
            for shards in SHARD_COUNTS
        }
        reference = documents[SHARD_COUNTS[0]]
        assert all(doc == reference for doc in documents.values())
        # and the report is not trivially empty
        assert json.loads(reference)["total"] > 0

    def test_pool_and_inline_produce_identical_bytes(self):
        from repro.engine.parallel import detect_violations_parallel
        from repro.session import ViolationReport

        db = fig1_instance()
        rules = list(fig2_cfds().values())
        inline = detect_violations_parallel(db, rules, shards=4, use_pool=False)
        pooled = detect_violations_parallel(
            db, rules, shards=4, workers=2, use_pool=True
        )
        assert json.dumps(
            ViolationReport(inline.violations).to_dict()
        ) == json.dumps(ViolationReport(pooled.violations).to_dict())


@pytest.fixture
def workspace(tmp_path):
    """Figure 1 data + Figure 2 rules on disk (same shape as test_cli)."""
    schema = fig1_instance().relation("customer").schema
    data_path = tmp_path / "customers.csv"
    dump_csv(fig1_instance().relation("customer"), data_path)
    schema_path = tmp_path / "schema.json"
    schema_path.write_text(json.dumps(schema_to_dict(schema)))
    rules_path = tmp_path / "rules.json"
    rules_path.write_text(json.dumps(rules_to_list(list(fig2_cfds().values()))))
    return data_path, schema_path, rules_path


class TestCliBytes:
    def _detect_stdout(self, workspace, capsys, shards):
        data, schema_path, rules = workspace
        argv = [
            "detect", "--format", "json",
            "--schema", str(schema_path), "--rules", str(rules),
        ]
        if shards is not None:
            argv += ["--shards", str(shards)]
        argv.append(str(data))
        code = main(argv)
        assert code == 1  # figure 1 data is dirty by design
        return capsys.readouterr().out

    def _stream_stdout(self, workspace, capsys, shards):
        data, schema_path, rules = workspace
        argv = [
            "stream", "--format", "json",
            "--schema", str(schema_path), "--rules", str(rules),
            "--batches", "4", "--batch-size", "3", "--seed", "11",
        ]
        if shards is not None:
            argv += ["--shards", str(shards)]
        argv.append(str(data))
        main(argv)
        return capsys.readouterr().out

    def test_detect_json_bytes_invariant(self, workspace, capsys):
        outputs = {
            shards: self._detect_stdout(workspace, capsys, shards)
            for shards in SHARD_COUNTS
        }
        reference = outputs[SHARD_COUNTS[0]]
        assert all(out == reference for out in outputs.values())

    def test_stream_json_bytes_invariant(self, workspace, capsys):
        outputs = {
            shards: self._stream_stdout(workspace, capsys, shards)
            for shards in (None,) + SHARD_COUNTS
        }
        reference = outputs[None]
        assert all(out == reference for out in outputs.values())
        # without --timings the document must contain no wall-clock field
        assert "seconds" not in reference

    def test_stream_timings_flag_restores_seconds(self, workspace, capsys):
        data, schema_path, rules = workspace
        main(
            [
                "stream", "--format", "json", "--timings",
                "--schema", str(schema_path), "--rules", str(rules),
                "--batches", "2", "--batch-size", "2", "--seed", "11",
                str(data),
            ]
        )
        document = json.loads(capsys.readouterr().out)
        assert all("seconds" in b for b in document["batches"])
