"""Hypothesis properties: the parallel paths equal their serial twins.

Two invariants, each quantified over generated schemas, instances,
dependency sets (all six constraint classes) and shard counts {1, 2, 3, 8}
— including counts exceeding the tuple count, where most shards are empty:

* parallel detection reports exactly the serial indexed executor's
  violation multiset;
* a sharded :class:`~repro.engine.delta.DeltaEngine` applies any edit
  batch to the same violation multiset — and the same added/removed
  delta — as the unsharded engine.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.model import CFD, UNNAMED
from repro.deps.denial import DenialConstraint
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.delta import Changeset, DeltaEngine, violation_multiset
from repro.engine.executor import detect_violations_indexed
from repro.engine.parallel import detect_violations_parallel
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import And, Comparison
from repro.relational.schema import DatabaseSchema, RelationSchema

SHARD_COUNTS = (1, 2, 3, 8)
VALUES = ("a", "b", "c")

R = RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])
S = RelationSchema("S", [("X", STRING), ("Y", STRING)])
SCHEMA = DatabaseSchema([R, S])

value = st.sampled_from(VALUES)
r_row = st.tuples(value, value, value)
s_row = st.tuples(value, value)


def _db(r_rows, s_rows) -> DatabaseInstance:
    db = DatabaseInstance(SCHEMA)
    for row in r_rows:
        db.relation("R").add(row)
    for row in s_rows:
        db.relation("S").add(row)
    return db


def _deps(variant: int) -> list:
    """Six fixed rule sets cycling through every constraint class."""
    fd = FD("R", ["A"], ["B"])
    cfd = CFD("R", ["A"], ["B"], [{"A": "a", "B": "b"}, {"A": UNNAMED, "B": UNNAMED}])
    ind = IND("R", ["A"], "S", ["X"])
    denial = DenialConstraint(
        ("R", "S"),
        And([Comparison("@t0.A", "=", "@t1.X"), Comparison("@t0.B", "=", "b")]),
        name="deny-join",
    )
    from repro.cfd.ecfd import ECFD, SetPattern
    from repro.cind.model import CIND

    ecfd = ECFD("R", ["A"], ["C"], {"A": SetPattern(["a", "b"]), "C": SetPattern(["c"], negated=True)})
    cind = CIND(
        "R", ["B"], "S", ["Y"],
        lhs_pattern_attrs=["A"],
        rhs_pattern_attrs=["X"],
        tableau=[{"L.A": "a", "R.X": "b"}],
    )
    pools = [
        [fd, ind],
        [cfd, cind],
        [ecfd, denial],
        [fd, cfd, ecfd],
        [ind, cind, denial],
        [fd, cfd, ecfd, ind, cind, denial],
    ]
    return pools[variant % len(pools)]


edits = st.lists(
    st.one_of(
        st.tuples(st.just("insert_r"), r_row),
        st.tuples(st.just("insert_s"), s_row),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=30),
            st.sampled_from(["A", "B", "C"]),
            value,
        ),
    ),
    min_size=1,
    max_size=6,
)


def _batch(db: DatabaseInstance, ops) -> Changeset:
    """Compile generated edit ops into a changeset against the live db."""
    cs = Changeset()
    consumed: set = set()
    for op in ops:
        if op[0] == "insert_r":
            cs.insert("R", list(op[1]))
        elif op[0] == "insert_s":
            cs.insert("S", list(op[1]))
        else:
            live = [t for t in db.relation("R") if t not in consumed]
            if not live:
                continue
            victim = live[op[1] % len(live)]
            consumed.add(victim)
            if op[0] == "delete":
                cs.delete("R", victim)
            else:
                cs.update("R", victim, **{op[2]: op[3]})
    return cs


@settings(max_examples=60)
@given(
    r_rows=st.lists(r_row, max_size=12),
    s_rows=st.lists(s_row, max_size=8),
    variant=st.integers(min_value=0, max_value=5),
)
def test_parallel_detection_equals_indexed(r_rows, s_rows, variant):
    db = _db(r_rows, s_rows)
    deps = _deps(variant)
    serial = violation_multiset(detect_violations_indexed(db, deps).violations)
    for shards in SHARD_COUNTS:
        report = detect_violations_parallel(db, deps, shards=shards, use_pool=False)
        assert violation_multiset(report.violations) == serial, f"shards={shards}"


@settings(max_examples=40)
@given(
    r_rows=st.lists(r_row, max_size=10),
    s_rows=st.lists(s_row, max_size=6),
    variant=st.integers(min_value=0, max_value=5),
    ops=edits,
)
def test_sharded_delta_apply_equals_serial(r_rows, s_rows, variant, ops):
    deps = _deps(variant)
    serial_db = _db(r_rows, s_rows)
    serial = DeltaEngine(serial_db, deps)
    batch = _batch(serial_db, ops)
    serial_delta = serial.apply(batch)
    for shards in SHARD_COUNTS[1:]:
        db = _db(r_rows, s_rows)
        engine = DeltaEngine(db, deps, shards=shards)
        delta = engine.apply(batch)
        assert delta.remaining == serial_delta.remaining, f"shards={shards}"
        assert violation_multiset(delta.added) == violation_multiset(
            serial_delta.added
        ), f"shards={shards} added"
        assert violation_multiset(delta.removed) == violation_multiset(
            serial_delta.removed
        ), f"shards={shards} removed"
        assert violation_multiset(engine.violations()) == violation_multiset(
            serial.violations()
        ), f"shards={shards} maintained"


@settings(max_examples=25)
@given(
    r_rows=st.lists(r_row, min_size=0, max_size=3),
    variant=st.integers(min_value=0, max_value=5),
)
def test_shard_count_exceeding_tuple_count(r_rows, variant):
    """shards ≫ |D|: most shards are empty, results must not change."""
    db = _db(r_rows, [])
    deps = _deps(variant)
    serial = violation_multiset(detect_violations_indexed(db, deps).violations)
    report = detect_violations_parallel(db, deps, shards=64, use_pool=False)
    assert violation_multiset(report.violations) == serial
    engine = DeltaEngine(_db(r_rows, []), deps, shards=64)
    assert violation_multiset(engine.violations()) == serial
