"""Indexed batch detection must equal the naive full scans, exactly.

The engine's whole contract is that sharing scans changes *nothing* about
the result: for every dependency mix and every database, the multiset of
(dependency, witnesses, reason) triples is identical to what the original
per-dependency, per-tableau-row detectors produce.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfd.detect import detect_violations
from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.executor import ExecutionStats, execute_plan
from repro.engine.naive import detect_violations_naive, naive_violations
from repro.engine.planner import plan_detection
from repro.paper import (
    fig1_fds,
    fig1_instance,
    fig2_cfds,
    fig3_instance,
    fig3_naive_inds,
    fig4_cinds,
)
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.workloads.customer import CustomerConfig, CustomerWorkload, generate_customers


def _multiset(violations):
    return Counter(
        (id(v.dependency), v.tuples, v.reason) for v in violations
    )


def assert_equivalent(db, deps):
    engine = detect_violations(db, deps, engine=True)
    naive = detect_violations_naive(db, deps)
    assert _multiset(engine.violations) == _multiset(naive.violations)
    # the per-dependency facade agrees as well
    for dep in deps:
        assert _multiset(dep.violations(db)) == _multiset(
            naive_violations(dep, db)
        )


class TestPaperFixtures:
    def test_fig2_cfds_and_fds(self):
        db = fig1_instance()
        deps = list(fig2_cfds().values()) + fig1_fds()
        assert_equivalent(db, deps)

    def test_fig4_cinds_and_inds(self):
        db = fig3_instance()
        deps = list(fig4_cinds().values()) + list(fig3_naive_inds())
        assert_equivalent(db, deps)

    def test_customer_workload(self):
        workload = generate_customers(CustomerConfig(n_tuples=400, seed=3))
        deps = CustomerWorkload.cfds() + CustomerWorkload.fds()
        assert_equivalent(workload.db, deps)


class TestExecutorBehaviour:
    def test_constant_patterns_resolve_by_lookup(self):
        schema = RelationSchema("R", [("A", STRING), ("B", STRING)])
        db = DatabaseInstance(
            DatabaseSchema([schema]), {"R": [("a", "x"), ("b", "y")]}
        )
        constant = CFD(
            "R", ["A"], ["B"], [{"A": "a", "B": "x"}, {"A": "b", "B": "z"}]
        )
        stats = ExecutionStats()
        execute_plan(db, plan_detection([constant]), stats)
        # fully-constant LHS patterns → hash lookups, no partition sweep
        assert stats.constant_lookups == 2
        assert stats.swept_patterns == 0
        report = detect_violations(db, [constant], engine=True)
        assert report.total == 1  # ("b", "y") clashes with the B="z" constant

    def test_partition_built_once_for_twenty_cfds(self):
        workload = generate_customers(CustomerConfig(n_tuples=200, seed=5))
        base = CustomerWorkload.cfds()[1]  # cfd-area-city
        clones = [
            CFD(
                base.relation_name,
                base.lhs,
                base.rhs,
                base.tableau,
                name=f"clone-{i}",
            )
            for i in range(20)
        ]
        relation = workload.db.relation("customer")
        report = detect_violations(workload.db, clones, engine=True)
        assert relation.indexes.stats.builds == 1
        assert report.total == 20 * len(
            list(naive_violations(clones[0], workload.db))
        )

    def test_engine_flag_off_matches_on(self):
        db = fig1_instance()
        deps = list(fig2_cfds().values()) + fig1_fds()
        on = detect_violations(db, deps, engine=True)
        off = detect_violations(db, deps, engine=False)
        assert _multiset(on.violations) == _multiset(off.violations)


def _random_db_and_deps(rng: random.Random):
    values = ["a", "b", "c"]
    r_schema = RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])
    s_schema = RelationSchema("S", [("X", STRING), ("Y", STRING)])
    db = DatabaseInstance(DatabaseSchema([r_schema, s_schema]))
    for _ in range(rng.randrange(0, 25)):
        db.relation("R").add([rng.choice(values) for _ in range(3)])
    for _ in range(rng.randrange(0, 12)):
        db.relation("S").add([rng.choice(values) for _ in range(2)])

    def pattern_cell():
        return rng.choice(values + [UNNAMED])

    deps = []
    for i in range(rng.randrange(1, 6)):
        lhs = rng.sample(["A", "B", "C"], rng.randrange(1, 3))
        rhs = [rng.choice([a for a in ("A", "B", "C") if a not in lhs])]
        rows = [
            {a: pattern_cell() for a in lhs + rhs}
            for _ in range(rng.randrange(1, 4))
        ]
        deps.append(CFD("R", lhs, rhs, rows, name=f"cfd-{i}"))
    for _ in range(rng.randrange(0, 3)):
        lhs = rng.sample(["A", "B", "C"], rng.randrange(1, 3))
        rhs = [rng.choice([a for a in ("A", "B", "C") if a not in lhs])]
        deps.append(FD("R", lhs, rhs))
    deps.append(IND("R", ["A"], "S", ["X"]))
    deps.append(
        CIND(
            "R",
            ["A"],
            "S",
            ["X"],
            lhs_pattern_attrs=["B"],
            rhs_pattern_attrs=["Y"],
            tableau=[{"B": rng.choice(values), "Y": rng.choice(values)}],
        )
    )
    rng.shuffle(deps)
    return db, deps


def test_randomized_equivalence_sweep():
    for seed in range(40):
        db, deps = _random_db_and_deps(random.Random(seed))
        assert_equivalent(db, deps)


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from("ab"), st.sampled_from("ab"), st.sampled_from("ab")
        ),
        max_size=12,
    ),
    lhs=st.sampled_from([("A",), ("B",), ("A", "B"), ("C",)]),
    pattern=st.tuples(
        st.sampled_from(["a", "b", UNNAMED]), st.sampled_from(["a", "b", UNNAMED])
    ),
)
def test_property_single_cfd_equivalence(rows, lhs, pattern):
    schema = RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])
    db = DatabaseInstance(DatabaseSchema([schema]), {"R": rows})
    rhs = [a for a in ("A", "B", "C") if a not in lhs][0]
    row = {a: p for a, p in zip(lhs, pattern)}
    row[rhs] = pattern[-1]
    cfd = CFD("R", list(lhs), [rhs], [row])
    assert _multiset(cfd.violations(db)) == _multiset(naive_violations(cfd, db))


@settings(max_examples=40, deadline=None)
@given(
    source=st.lists(st.tuples(st.sampled_from("ab"), st.sampled_from("ab")), max_size=10),
    target=st.lists(st.tuples(st.sampled_from("ab"), st.sampled_from("ab")), max_size=10),
    pattern=st.sampled_from(["a", "b"]),
)
def test_property_cind_equivalence(source, target, pattern):
    r = RelationSchema("R", [("A", STRING), ("B", STRING)])
    s = RelationSchema("S", [("X", STRING), ("Y", STRING)])
    db = DatabaseInstance(DatabaseSchema([r, s]), {"R": source, "S": target})
    cind = CIND(
        "R",
        ["A"],
        "S",
        ["X"],
        lhs_pattern_attrs=["B"],
        rhs_pattern_attrs=["Y"],
        tableau=[{"B": pattern, "Y": pattern}],
    )
    ind = IND("R", ["A", "B"], "S", ["X", "Y"])
    assert_equivalent(db, [cind, ind])
