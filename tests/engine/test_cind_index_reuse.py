"""Regression: CIND detection must not rebuild the target index per row.

The seed's CIND detector rebuilt the (Yp → Y-keys) target index once per
pattern tableau row — the hotspot PR 1 removed by routing the lookup
through the shared ``grouped_key_sets`` cache.  These tests pin the fix
with the index build counters: however many rows the tableau has and
however many CINDs share the (target, Yp, Y) signature, the index is built
exactly once.
"""

from repro.cind.model import CIND
from repro.engine.executor import detect_violations_indexed
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema


def _db():
    r = RelationSchema("R", [("A", STRING), ("B", STRING)])
    s = RelationSchema("S", [("X", STRING), ("Y", STRING)])
    return DatabaseInstance(
        DatabaseSchema([r, s]),
        {
            "R": [("a", "p"), ("b", "q"), ("c", "p")],
            "S": [("a", "u"), ("b", "v"), ("z", "u")],
        },
    )


def _multi_row_cind(name="psi"):
    return CIND(
        "R",
        ["A"],
        "S",
        ["X"],
        rhs_pattern_attrs=["Y"],
        tableau=[{"Y": "u"}, {"Y": "v"}, {"Y": "w"}],
        name=name,
    )


class TestTargetIndexBuiltOnce:
    def test_single_cind_with_multi_row_tableau(self):
        db = _db()
        cind = _multi_row_cind()
        list(cind.violations(db))
        stats = db.relation("S").indexes.stats
        assert stats.builds == 1  # one grouped_key_sets build for 3 rows
        assert stats.invalidations == 0

    def test_repeated_detection_hits_the_cache(self):
        db = _db()
        cind = _multi_row_cind()
        first = list(cind.violations(db))
        second = list(cind.violations(db))
        stats = db.relation("S").indexes.stats
        assert stats.builds == 1
        assert stats.hits >= 1
        assert first == second

    def test_cinds_sharing_signature_share_one_build(self):
        db = _db()
        deps = [_multi_row_cind("psi1"), _multi_row_cind("psi2")]
        detect_violations_indexed(db, deps)
        assert db.relation("S").indexes.stats.builds == 1

    def test_row_scoping_unaffected_by_sharing(self):
        """The shared index must still answer per-row: each row only sees
        the target tuples matching its own Yp constants."""
        db = _db()
        cind = _multi_row_cind()
        violations = list(cind.violations(db))
        # row Y='u' provides {a, z}; Y='v' provides {b}; Y='w' nothing.
        # Every R tuple demands its A under all three rows.
        witnesses = sorted(t["A"] for v in violations for _, t in v.tuples)
        # row Y='u' provides keys {a, z} → strands b, c;
        # row Y='v' provides {b} → strands a, c;
        # row Y='w' provides nothing → strands a, b, c.
        assert witnesses == ["a", "a", "b", "b", "c", "c", "c"]
