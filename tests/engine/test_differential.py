"""Differential harness: naive vs indexed vs delta vs parallel on generated cases.

Four execution paths must agree on every violation set:

* **naive** — the original per-dependency full scans
  (:func:`repro.engine.naive.detect_violations_naive`), the oracle;
* **indexed** — the planned batch executor over shared indexes
  (:func:`repro.engine.executor.detect_violations_indexed`);
* **delta** — :class:`repro.engine.delta.DeltaEngine`, whose maintained
  violation set is checked after construction *and* after every random
  edit batch it absorbs — once unsharded and once with a hash-sharded
  state (shard count cycling over {2, 3, 8});
* **parallel** — the sharded executor
  (:func:`repro.engine.parallel.detect_violations_parallel`), run through
  its deterministic in-process path at the same cycling shard counts
  (pool-vs-inline equivalence is pinned separately in
  ``test_parallel.py`` — per-case pools would dominate the corpus).

Cases are seeded-random and come in three phases: a mixed legacy phase
(FDs, CFDs, eCFDs, INDs, CINDs), an inclusion-focused phase (IND/CIND
rule sets under key-churning edit batches) and a denial-focused phase
(single-atom, FD-shaped and cross-relation denial constraints) — so all
six constraint classes meet batched inserts, deletes and cell updates.
The comparison is exact — multisets over (dependency, ordered witness
tuples), so even witness order inside a pair violation must match.
"""

from __future__ import annotations

import random
from typing import List

from repro.cfd.ecfd import ECFD, SetPattern
from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.deps.denial import DenialConstraint
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.delta import Changeset, DeltaEngine, violation_multiset
from repro.engine.executor import detect_violations_indexed
from repro.engine.naive import detect_violations_naive
from repro.engine.parallel import detect_violations_parallel
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import And, Comparison
from repro.relational.schema import DatabaseSchema, RelationSchema

N_CASES = 220  # legacy mixed phase
N_INCLUSION_CASES = 60  # IND/CIND-focused phase
N_DENIAL_CASES = 60  # denial-constraint-focused phase
TOTAL_CASES = N_CASES + N_INCLUSION_CASES + N_DENIAL_CASES
#: shard counts the sharded delta/parallel checks cycle through per case
SHARD_CYCLE = (2, 3, 8)
VALUES = ["a", "b", "c"]


def _random_schema(rng: random.Random) -> DatabaseSchema:
    r_arity = rng.randrange(3, 5)
    s_arity = rng.randrange(2, 4)
    r = RelationSchema("R", [(f"A{i}", STRING) for i in range(r_arity)])
    s = RelationSchema("S", [(f"X{i}", STRING) for i in range(s_arity)])
    return DatabaseSchema([r, s])


def _random_instance(schema: DatabaseSchema, rng: random.Random) -> DatabaseInstance:
    db = DatabaseInstance(schema)
    for rel in schema:
        for _ in range(rng.randrange(0, 9)):
            db.relation(rel.name).add(
                [rng.choice(VALUES) for _ in range(len(rel))]
            )
    return db


def _random_fd(attrs: List[str], rng: random.Random) -> FD:
    lhs = rng.sample(attrs, rng.randrange(1, min(3, len(attrs))))
    rhs = [rng.choice([a for a in attrs if a not in lhs])]
    return FD("R", lhs, rhs)


def _random_cfd(attrs: List[str], rng: random.Random) -> CFD:
    lhs = rng.sample(attrs, rng.randrange(1, min(3, len(attrs))))
    rhs = [rng.choice([a for a in attrs if a not in lhs])]
    rows = []
    for _ in range(rng.randrange(1, 4)):
        rows.append(
            {
                a: rng.choice([UNNAMED] + VALUES) if rng.random() < 0.7 else UNNAMED
                for a in lhs + rhs
            }
        )
    return CFD("R", lhs, rhs, rows)


def _random_ecfd(attrs: List[str], rng: random.Random) -> ECFD:
    lhs = rng.sample(attrs, rng.randrange(1, min(3, len(attrs))))
    rhs = [rng.choice([a for a in attrs if a not in lhs])]
    pattern = {}
    for a in lhs + rhs:
        if rng.random() < 0.5:
            continue  # wildcard
        values = rng.sample(VALUES, rng.randrange(1, 3))
        pattern[a] = SetPattern(values, negated=rng.random() < 0.4)
    return ECFD("R", lhs, rhs, pattern)


def _random_inclusion(schema: DatabaseSchema, rng: random.Random):
    r_attrs = list(schema.relation("R").attribute_names)
    s_attrs = list(schema.relation("S").attribute_names)
    width = rng.randrange(1, min(len(r_attrs), len(s_attrs)) + 1)
    lhs = rng.sample(r_attrs, width)
    rhs = rng.sample(s_attrs, width)
    if rng.random() < 0.5:
        return IND("R", lhs, "S", rhs)
    lhs_free = [a for a in r_attrs if a not in lhs]
    rhs_free = [a for a in s_attrs if a not in rhs]
    lhs_pat = rng.sample(lhs_free, rng.randrange(0, len(lhs_free) + 1))
    rhs_pat = rng.sample(rhs_free, rng.randrange(0, len(rhs_free) + 1))
    rows = []
    for _ in range(rng.randrange(1, 3)):
        row = {f"L.{a}": rng.choice(VALUES) for a in lhs_pat}
        row.update({f"R.{a}": rng.choice(VALUES) for a in rhs_pat})
        rows.append(row)
    return CIND(
        "R", lhs, "S", rhs,
        lhs_pattern_attrs=lhs_pat,
        rhs_pattern_attrs=rhs_pat,
        tableau=rows,
    )


def _random_denial(schema: DatabaseSchema, rng: random.Random) -> DenialConstraint:
    """A denial constraint in one of three shapes (all fallback-path).

    * single-atom: forbid an R tuple carrying 1–2 specific constants;
    * FD-shaped: two R atoms agreeing on one attribute, differing on
      another (pair witnesses, like a classical FD);
    * cross-relation: an R atom and an S atom agreeing on one attribute
      each (a forbidden join — inherently cross-shard work).
    """
    r_attrs = list(schema.relation("R").attribute_names)
    s_attrs = list(schema.relation("S").attribute_names)
    shape = rng.randrange(3)
    if shape == 0:
        picked = rng.sample(r_attrs, rng.randrange(1, 3))
        condition = And(
            [Comparison(f"@t0.{a}", "=", rng.choice(VALUES)) for a in picked]
        )
        return DenialConstraint(("R",), condition, name=f"deny-const-{picked}")
    if shape == 1:
        agree, differ = rng.sample(r_attrs, 2)
        condition = And(
            [
                Comparison(f"@t0.{agree}", "=", f"@t1.{agree}"),
                Comparison(f"@t0.{differ}", "!=", f"@t1.{differ}"),
            ]
        )
        return DenialConstraint(
            ("R", "R"), condition, name=f"deny-fd-{agree}-{differ}"
        )
    a = rng.choice(r_attrs)
    x = rng.choice(s_attrs)
    condition = And(
        [
            Comparison(f"@t0.{a}", "=", f"@t1.{x}"),
            Comparison(f"@t0.{a}", "=", rng.choice(VALUES)),
        ]
    )
    return DenialConstraint(("R", "S"), condition, name=f"deny-join-{a}-{x}")


def _random_dependencies(schema: DatabaseSchema, rng: random.Random) -> list:
    r_attrs = list(schema.relation("R").attribute_names)
    makers = [
        lambda: _random_fd(r_attrs, rng),
        lambda: _random_cfd(r_attrs, rng),
        lambda: _random_ecfd(r_attrs, rng),
        lambda: _random_inclusion(schema, rng),
    ]
    return [rng.choice(makers)() for _ in range(rng.randrange(2, 7))]


def _random_inclusion_dependencies(schema: DatabaseSchema, rng: random.Random) -> list:
    """IND/CIND-heavy rule sets: key churn is the whole story."""
    deps = [_random_inclusion(schema, rng) for _ in range(rng.randrange(2, 6))]
    if rng.random() < 0.3:
        deps.append(_random_fd(list(schema.relation("R").attribute_names), rng))
    return deps


def _random_denial_dependencies(schema: DatabaseSchema, rng: random.Random) -> list:
    """Denial-heavy rule sets (plus an occasional FD for partition churn)."""
    deps: list = [_random_denial(schema, rng) for _ in range(rng.randrange(1, 4))]
    if rng.random() < 0.4:
        deps.append(_random_fd(list(schema.relation("R").attribute_names), rng))
    return deps


def _random_batch(db: DatabaseInstance, rng: random.Random) -> Changeset:
    cs = Changeset()
    consumed = set()  # tuples already deleted/updated this batch
    for _ in range(rng.randrange(1, 6)):
        rel = db.relation(rng.choice(["R", "S"]))
        live = [t for t in rel if t not in consumed]
        kind = rng.choice(["insert", "delete", "update"])
        if kind == "insert" or not live:
            cs.insert(
                rel.schema.name, [rng.choice(VALUES) for _ in range(len(rel.schema))]
            )
        elif kind == "delete":
            victim = rng.choice(live)
            consumed.add(victim)
            cs.delete(rel.schema.name, victim)
        else:
            victim = rng.choice(live)
            consumed.add(victim)
            attr = rng.choice(list(rel.schema.attribute_names))
            cs.update(rel.schema.name, victim, **{attr: rng.choice(VALUES)})
    return cs


# One canonical identity multiset shared with run_stream(verify=True) and
# bench_incremental: id() pins the shared dependency object; tuples keep
# witness order, so pair-violation orientation must agree across paths.
_multiset = violation_multiset


def _assert_all_paths_agree(db, deps, engine, sharded_engine, shards, context):
    naive = _multiset(detect_violations_naive(db, deps).violations)
    indexed = _multiset(detect_violations_indexed(db, deps).violations)
    assert naive == indexed, f"naive vs indexed diverged: {context}"
    parallel = _multiset(
        detect_violations_parallel(db, deps, shards=shards, use_pool=False).violations
    )
    assert parallel == naive, f"parallel({shards}) vs naive diverged: {context}"
    maintained = _multiset(engine.violations())
    assert maintained == naive, f"delta vs naive diverged: {context}"
    if sharded_engine is not None:
        sharded = _multiset(sharded_engine.violations())
        assert sharded == naive, (
            f"sharded delta({sharded_engine.shards}) vs naive diverged: {context}"
        )


def _cases():
    """(case id, rng, dependency generator) for every corpus phase."""
    for seed in range(N_CASES):
        yield f"mixed-{seed}", random.Random(10_000 + seed), _random_dependencies
    for seed in range(N_INCLUSION_CASES):
        yield (
            f"inclusion-{seed}",
            random.Random(50_000 + seed),
            _random_inclusion_dependencies,
        )
    for seed in range(N_DENIAL_CASES):
        yield (
            f"denial-{seed}",
            random.Random(90_000 + seed),
            _random_denial_dependencies,
        )


def test_differential_naive_indexed_delta_parallel():
    checked_cases = 0
    checked_batches = 0
    classes_seen = set()
    for case_id, rng, make_deps in _cases():
        schema = _random_schema(rng)
        db = _random_instance(schema, rng)
        deps = make_deps(schema, rng)
        classes_seen.update(type(dep).__name__ for dep in deps)
        shards = SHARD_CYCLE[checked_cases % len(SHARD_CYCLE)]
        engine = DeltaEngine(db, deps)
        # The sharded twin maintains its own copy of the instance; edit
        # batches re-resolve their target tuples by value, so replaying
        # the exact same changeset against it is well-defined.
        sharded_db = db.copy()
        sharded_engine = DeltaEngine(sharded_db, deps, shards=shards)
        _assert_all_paths_agree(
            db, deps, engine, sharded_engine, shards, f"{case_id} initial"
        )
        checked_cases += 1
        for batch_index in range(rng.randrange(1, 4)):
            batch = _random_batch(db, rng)
            delta = engine.apply(batch)
            sharded_delta = sharded_engine.apply(batch)
            # The delta's own bookkeeping must be internally consistent,
            # and the sharded twin must report the identical delta.
            assert delta.remaining == engine.total_violations()
            assert sharded_delta.remaining == delta.remaining
            assert _multiset(v for v in sharded_delta.added) == _multiset(
                v for v in delta.added
            ), f"{case_id} batch={batch_index} added"
            assert _multiset(v for v in sharded_delta.removed) == _multiset(
                v for v in delta.removed
            ), f"{case_id} batch={batch_index} removed"
            _assert_all_paths_agree(
                db,
                deps,
                engine,
                sharded_engine,
                shards,
                f"{case_id} batch={batch_index}",
            )
            checked_batches += 1
    assert checked_cases >= 320
    assert checked_batches >= 450
    # Every constraint class the system detects must appear in the corpus.
    assert {"FD", "CFD", "ECFD", "IND", "CIND", "DenialConstraint"} <= classes_seen


def test_differential_undo_round_trip():
    """A batch followed by its undo restores which dependencies fail.

    Undo restores the *set content* of each relation, not its insertion
    order: a deleted-then-readded tuple re-enters at the end, which can
    change how many pair violations the first-vs-rest detector reports for
    a group (on the delta path and on a fresh naive rebuild alike — the
    strict harness above proves they keep agreeing).  What IS
    order-invariant, and what repair search relies on, is whether each
    dependency is violated at all.
    """

    def violated_deps(violations):
        return {id(v.dependency) for v in violations}

    for seed in range(60):
        rng = random.Random(77_000 + seed)
        schema = _random_schema(rng)
        db = _random_instance(schema, rng)
        deps = _random_dependencies(schema, rng)
        shards = SHARD_CYCLE[seed % len(SHARD_CYCLE)]
        engine = DeltaEngine(db, deps, shards=shards)
        before = violated_deps(engine.violations())
        was_clean = engine.is_clean()
        delta = engine.apply(_random_batch(db, rng))
        engine.apply(delta.undo)
        assert violated_deps(engine.violations()) == before, f"seed={seed}"
        assert engine.is_clean() == was_clean
        _assert_all_paths_agree(
            db, deps, engine, None, shards, f"seed={seed} after undo"
        )
