"""RelationIndexes: caching, correctness, and mutation invalidation."""

from repro.engine.indexes import RelationIndexes, canonical_signature
from repro.relational.domains import STRING
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple


def _rel(rows):
    schema = RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])
    return RelationInstance(schema, rows)


class TestCanonicalSignature:
    def test_sorted_and_deduplicated(self):
        assert canonical_signature(["B", "A", "B"]) == ("A", "B")

    def test_permutations_share_signature(self):
        assert canonical_signature(["A", "B"]) == canonical_signature(["B", "A"])

    def test_empty(self):
        assert canonical_signature([]) == ()


class TestGroupIndex:
    def test_partitions_match_group_by(self):
        rel = _rel([("a", "x", "1"), ("a", "y", "2"), ("b", "x", "3")])
        assert dict(rel.indexes.group_index(("A",))) == rel.group_by(["A"])

    def test_groups_preserve_insertion_order(self):
        rel = _rel([("b", "x", "1"), ("a", "x", "2"), ("b", "y", "3")])
        groups = rel.indexes.group_index(("A",))
        assert list(groups) == [("b",), ("a",)]
        assert [t["C"] for t in groups[("b",)]] == ["1", "3"]

    def test_empty_signature_is_one_group(self):
        rel = _rel([("a", "x", "1"), ("b", "y", "2")])
        groups = rel.indexes.group_index(())
        assert set(groups) == {()}
        assert len(groups[()]) == 2

    def test_cached_between_calls(self):
        rel = _rel([("a", "x", "1")])
        first = rel.indexes.group_index(("A",))
        second = rel.indexes.group_index(("A",))
        assert first is second
        assert rel.indexes.stats.builds == 1
        assert rel.indexes.stats.hits == 1


class TestKeySets:
    def test_key_set(self):
        rel = _rel([("a", "x", "1"), ("a", "y", "2"), ("b", "x", "3")])
        assert rel.indexes.key_set(("A",)) == {("a",), ("b",)}
        assert rel.indexes.key_set(("A", "B")) == {
            ("a", "x"),
            ("a", "y"),
            ("b", "x"),
        }

    def test_grouped_key_sets(self):
        rel = _rel([("a", "x", "1"), ("a", "y", "1"), ("b", "x", "2")])
        grouped = rel.indexes.grouped_key_sets(("C",), ("A", "B"))
        assert grouped[("1",)] == {("a", "x"), ("a", "y")}
        assert grouped[("2",)] == {("b", "x")}

    def test_grouped_key_sets_empty_group_attrs(self):
        rel = _rel([("a", "x", "1"), ("b", "y", "2")])
        grouped = rel.indexes.grouped_key_sets((), ("A",))
        assert grouped == {(): frozenset({("a",), ("b",)})}

    def test_projection(self):
        rel = _rel([("a", "x", "1"), ("b", "y", "2")])
        assert list(rel.indexes.projection(("B", "A"))) == [("x", "a"), ("y", "b")]


class TestInvalidation:
    def test_add_bumps_version_and_invalidates(self):
        rel = _rel([("a", "x", "1")])
        before = rel.indexes.group_index(("A",))
        rel.add(("b", "y", "2"))
        after = rel.indexes.group_index(("A",))
        assert before is not after
        assert ("b",) in after
        assert rel.indexes.stats.invalidations == 1

    def test_duplicate_add_is_noop(self):
        rel = _rel([("a", "x", "1")])
        version = rel.version
        index = rel.indexes.group_index(("A",))
        rel.add(("a", "x", "1"))  # set semantics: already present
        assert rel.version == version
        assert rel.indexes.group_index(("A",)) is index

    def test_remove_invalidates(self):
        rel = _rel([("a", "x", "1"), ("b", "y", "2")])
        t = rel.tuples()[0]
        keys = rel.indexes.key_set(("A",))
        assert ("a",) in keys
        rel.remove(t)
        assert ("a",) not in rel.indexes.key_set(("A",))

    def test_discard_absent_is_noop(self):
        rel = _rel([("a", "x", "1")])
        other = _rel([("z", "z", "z")]).tuples()[0]
        version = rel.version
        index = rel.indexes.group_index(("A",))
        rel.discard(other)
        assert rel.version == version
        assert rel.indexes.group_index(("A",)) is index

    def test_discard_present_invalidates(self):
        rel = _rel([("a", "x", "1")])
        t = rel.tuples()[0]
        rel.indexes.group_index(("A",))
        rel.discard(t)
        assert rel.indexes.group_index(("A",)) == {}

    def test_copy_gets_independent_indexes(self):
        rel = _rel([("a", "x", "1")])
        copy = rel.copy()
        original_index = rel.indexes.group_index(("A",))
        copy.add(("b", "y", "2"))
        assert rel.indexes.group_index(("A",)) is original_index
        assert ("b",) in copy.indexes.group_index(("A",))
        assert ("b",) not in rel.indexes.group_index(("A",))

    def test_filter_gets_independent_indexes(self):
        rel = _rel([("a", "x", "1"), ("b", "y", "2")])
        rel.indexes.group_index(("A",))
        filtered = rel.filter(lambda t: t["A"] == "a")
        assert set(filtered.indexes.group_index(("A",))) == {("a",)}
        assert set(rel.indexes.group_index(("A",))) == {("a",), ("b",)}

    def test_grouped_and_projection_invalidate_too(self):
        rel = _rel([("a", "x", "1")])
        rel.indexes.grouped_key_sets(("A",), ("B",))
        rel.indexes.projection(("A",))
        rel.add(("b", "y", "2"))
        assert ("b",) in rel.indexes.grouped_key_sets(("A",), ("B",))
        assert list(rel.indexes.projection(("A",))) == [("a",), ("b",)]
