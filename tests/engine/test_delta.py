"""Changeset application and DeltaEngine violation maintenance."""

from __future__ import annotations

import pytest

from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.deps.denial import fd_as_denial
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.engine.delta import Changeset, DeltaEngine, StaleEngineError
from repro.engine.executor import detect_violations_indexed
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.tuples import Tuple


def _schemas():
    r = RelationSchema("R", [("A", STRING), ("B", STRING), ("C", STRING)])
    s = RelationSchema("S", [("X", STRING), ("Y", STRING)])
    return DatabaseSchema([r, s])


def _db(r_rows=(), s_rows=()):
    return DatabaseInstance(_schemas(), {"R": r_rows, "S": s_rows})


def _counts(violations):
    from collections import Counter

    return Counter((id(v.dependency), v.tuples) for v in violations)


def _assert_in_sync(engine, db, deps):
    assert _counts(engine.violations()) == _counts(
        detect_violations_indexed(db, deps).violations
    )


class TestChangeset:
    def test_effective_ops_follow_set_semantics(self):
        db = _db([("a", "x", "1")])
        existing = db.relation("R").tuples()[0]
        cs = (
            Changeset()
            .insert("R", existing)  # already present: no-op
            .insert("R", ("b", "y", "2"))
            .delete("R", ("z", "z", "9"))  # absent: no-op
        )
        effective = cs.apply_to(db)
        assert [kind for kind, _ in effective["R"]] == ["add"]
        assert len(db.relation("R")) == 2

    def test_update_is_remove_plus_add(self):
        db = _db([("a", "x", "1")])
        t = db.relation("R").tuples()[0]
        effective = Changeset().update("R", t, B="y").apply_to(db)
        assert [kind for kind, _ in effective["R"]] == ["remove", "add"]
        assert db.relation("R").tuples()[0]["B"] == "y"

    def test_update_collapsing_into_existing_records_only_removal(self):
        db = _db([("a", "x", "1"), ("a", "y", "1")])
        t = db.relation("R").tuples()[0]
        effective = Changeset().update("R", t, B="y").apply_to(db)
        assert [kind for kind, _ in effective["R"]] == ["remove"]
        assert len(db.relation("R")) == 1

    def test_update_of_absent_tuple_raises(self):
        db = _db([("a", "x", "1")])
        ghost = Tuple(db.relation("R").schema, ("q", "q", "q"))
        with pytest.raises(KeyError):
            Changeset().update("R", ghost, B="y").apply_to(db)

    def test_noop_update_records_nothing(self):
        db = _db([("a", "x", "1")])
        t = db.relation("R").tuples()[0]
        assert Changeset().update("R", t, B="x").apply_to(db) == {}

    def test_inverse_restores_instance(self):
        db = _db([("a", "x", "1"), ("b", "y", "2")])
        before = {t.values() for t in db.relation("R")}
        t = db.relation("R").tuples()[0]
        cs = Changeset().delete("R", t).insert("R", ("c", "z", "3"))
        effective = cs.apply_to(db)
        Changeset.inverse_of(effective).apply_to(db)
        assert {t.values() for t in db.relation("R")} == before


class TestScanMaintenance:
    def _deps(self):
        return [
            FD("R", ["A"], ["B"]),
            CFD("R", ["A"], ["C"], [{"A": "k", "C": "ok"}]),
        ]

    def test_insert_creates_pair_violation(self):
        deps = self._deps()
        db = _db([("a", "x", "1")])
        engine = DeltaEngine(db, deps)
        assert engine.is_clean()
        delta = engine.apply(Changeset().insert("R", ("a", "y", "2")))
        assert len(delta.added) == 1 and not delta.removed
        assert not delta.clean_after
        _assert_in_sync(engine, db, deps)

    def test_delete_resolves_violation(self):
        deps = self._deps()
        db = _db([("a", "x", "1"), ("a", "y", "2")])
        engine = DeltaEngine(db, deps)
        assert engine.total_violations() == 1
        victim = db.relation("R").tuples()[1]
        delta = engine.apply(Changeset().delete("R", victim))
        assert len(delta.removed) == 1 and not delta.added
        assert delta.clean_after
        _assert_in_sync(engine, db, deps)

    def test_cell_update_moves_tuple_between_partitions(self):
        deps = self._deps()
        db = _db([("a", "x", "1"), ("b", "x", "2")])
        engine = DeltaEngine(db, deps)
        t = db.relation("R").tuples()[1]
        delta = engine.apply(Changeset().update("R", t, A="a", B="y"))
        assert len(delta.added) == 1
        _assert_in_sync(engine, db, deps)

    def test_constant_cfd_single_tuple_violation(self):
        deps = self._deps()
        db = _db()
        engine = DeltaEngine(db, deps)
        delta = engine.apply(Changeset().insert("R", ("k", "b", "bad")))
        assert len(delta.added) == 1
        fixed = engine.apply(
            Changeset().update("R", db.relation("R").tuples()[0], C="ok")
        )
        assert len(fixed.removed) == 1 and fixed.clean_after
        _assert_in_sync(engine, db, deps)

    def test_only_touched_keys_maintained(self):
        deps = [FD("R", ["A"], ["B"])]
        db = _db([(f"k{i}", "x", str(i)) for i in range(50)])
        engine = DeltaEngine(db, deps)
        # Insert into a live group whose first tuple survives: O(1) patch.
        engine.apply(Changeset().insert("R", ("k0", "y", "new")))
        assert engine.stats.keys_patched == 1
        assert engine.stats.keys_reevaluated == 0
        # Deleting a group's first tuple moves the pair pivot: full re-sweep
        # of that one partition.
        engine.apply(Changeset().delete("R", db.relation("R").tuples()[1]))
        assert engine.stats.keys_reevaluated == 1


class TestInclusionMaintenance:
    def _deps(self):
        return [
            IND("R", ["A"], "S", ["X"]),
            CIND(
                "R",
                ["C"],
                "S",
                ["X"],
                lhs_pattern_attrs=["B"],
                rhs_pattern_attrs=["Y"],
                tableau=[{"B": "go", "Y": "p"}],
            ),
        ]

    def test_source_insert_demands_missing_key(self):
        deps = self._deps()
        db = _db([], [("a", "p")])
        engine = DeltaEngine(db, deps)
        delta = engine.apply(Changeset().insert("R", ("z", "stop", "1")))
        assert len(delta.added) == 1  # IND violated, CIND not (pattern off)
        _assert_in_sync(engine, db, deps)

    def test_target_insert_resolves_violations(self):
        deps = self._deps()
        db = _db([("z", "go", "q")], [("z", "p")])
        engine = DeltaEngine(db, deps)
        assert engine.total_violations() == 1  # CIND: key ("q",) not provided
        delta = engine.apply(Changeset().insert("S", ("q", "p")))
        assert len(delta.removed) == 1 and delta.clean_after
        _assert_in_sync(engine, db, deps)

    def test_target_delete_strands_demanders(self):
        deps = self._deps()
        db = _db([("a", "go", "a")], [("a", "p")])
        engine = DeltaEngine(db, deps)
        assert engine.is_clean()
        provider = db.relation("S").tuples()[0]
        delta = engine.apply(Changeset().delete("S", provider))
        assert len(delta.added) == 2  # IND and CIND both strand ("a", go, a)
        _assert_in_sync(engine, db, deps)

    def test_second_provider_keeps_key_alive(self):
        deps = [IND("R", ["A"], "S", ["X"])]
        db = _db([("a", "x", "1")], [("a", "p"), ("a", "q")])
        engine = DeltaEngine(db, deps)
        delta = engine.apply(Changeset().delete("S", db.relation("S").tuples()[0]))
        assert not delta.added and delta.clean_after
        _assert_in_sync(engine, db, deps)

    def test_insert_then_delete_in_one_batch_is_net_noop(self):
        deps = self._deps()
        db = _db([], [("a", "p")])
        engine = DeltaEngine(db, deps)
        cs = Changeset().insert("R", ("z", "stop", "1")).delete("R", ("z", "stop", "1"))
        delta = engine.apply(cs)
        assert not delta.added and not delta.removed and delta.clean_after
        _assert_in_sync(engine, db, deps)


class TestFallbackAndGuards:
    def test_fallback_dependency_rescanned_only_when_touched(self):
        fd = FD("R", ["A"], ["B"])
        deps = [fd_as_denial(fd)]
        db = _db([("a", "x", "1")], [("s", "t")])
        engine = DeltaEngine(db, deps)
        engine.apply(Changeset().insert("S", ("u", "v")))
        assert engine.stats.fallback_rescans == 0
        delta = engine.apply(Changeset().insert("R", ("a", "y", "2")))
        assert engine.stats.fallback_rescans == 1
        assert delta.added and len(delta.added) == delta.remaining

    def test_failed_batch_rolls_back_and_engine_stays_consistent(self):
        deps = [FD("R", ["A"], ["B"])]
        db = _db([("a", "x", "1")])
        engine = DeltaEngine(db, deps)
        ghost = Tuple(db.relation("R").schema, ("q", "q", "q"))
        bad = Changeset().insert("R", ("b", "y", "2")).update("R", ghost, B="z")
        with pytest.raises(KeyError):
            engine.apply(bad)
        # The applied prefix (the insert) was rolled back...
        assert {t.values() for t in db.relation("R")} == {("a", "x", "1")}
        # ...and the engine still answers correctly afterwards.
        delta = engine.apply(Changeset().insert("R", ("a", "y", "2")))
        assert len(delta.added) == 1
        _assert_in_sync(engine, db, deps)

    def test_external_mutation_detected(self):
        db = _db([("a", "x", "1")])
        engine = DeltaEngine(db, [FD("R", ["A"], ["B"])])
        db.relation("R").add(("b", "y", "2"))
        with pytest.raises(StaleEngineError):
            engine.apply(Changeset().insert("R", ("c", "z", "3")))
        engine.refresh()
        assert engine.apply(Changeset().insert("R", ("c", "z", "3"))).clean_after

    def test_probe_leaves_state_unchanged(self):
        deps = [FD("R", ["A"], ["B"]), IND("R", ["A"], "S", ["X"])]
        db = _db([("a", "x", "1")], [("a", "p")])
        engine = DeltaEngine(db, deps)
        before = {t.values() for t in db.relation("R")}
        delta = engine.probe(Changeset().insert("R", ("z", "y", "2")))
        assert len(delta.added) == 1  # IND orphan; FD untouched
        assert {t.values() for t in db.relation("R")} == before
        assert engine.is_clean()
        _assert_in_sync(engine, db, deps)

    def test_undo_of_delta_restores_violation_set(self):
        deps = [FD("R", ["A"], ["B"])]
        db = _db([("a", "x", "1"), ("a", "y", "2")])
        engine = DeltaEngine(db, deps)
        delta = engine.apply(Changeset().delete("R", db.relation("R").tuples()[0]))
        assert delta.clean_after
        back = engine.apply(delta.undo)
        assert back.remaining == 1
        _assert_in_sync(engine, db, deps)

    def test_report_matches_detect(self):
        deps = [FD("R", ["A"], ["B"]), IND("R", ["A"], "S", ["X"])]
        db = _db([("a", "x", "1"), ("a", "y", "2")], [])
        engine = DeltaEngine(db, deps)
        report = engine.report()
        assert report.total == engine.total_violations() == 3
