"""CFD implication analysis (paper §4.1, Theorems 4.2 and 4.3).

Σ ⊨ ϕ iff every instance satisfying Σ satisfies ϕ.  Implication is
coNP-complete for CFDs; this module implements the exact complement search:

    Σ ⊭ ϕ  iff  a *two-tuple* counterexample exists,

because (i) any D ⊨ Σ violating ϕ contains a sub-instance of ≤ 2 tuples
that witnesses the ϕ-violation, and (ii) CFD satisfaction is closed under
sub-instances, so that witness still satisfies Σ.

The value space is finite and exact for the same reason as in
:mod:`repro.cfd.consistency`: only (a) equality with pattern constants and
(b) equality between the two tuples on an attribute matter, so per
attribute it suffices to consider the constants mentioned in Σ ∪ {ϕ} plus
*two* fresh values (two, so the tuples can differ on a non-constant value).

The search backtracks attribute-by-attribute assigning a (t1, t2) value
pair at each level and pruning with every fully-assigned pattern row of Σ,
seeded with the target's LHS equality (t1[X] = t2[X] ≍ tp[X]).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.cfd.consistency import attribute_constants, candidate_values
from repro.cfd.model import CFD, UNNAMED, PatternTuple
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple

__all__ = ["cfd_implies", "find_counterexample", "minimal_cover_cfds"]

Assignment = Dict[str, PyTuple[Any, Any]]  # attr -> (t1 value, t2 value)


class _PairChecker:
    """Incremental checker of the CFD pair+single semantics on {t1, t2}."""

    def __init__(self, cfds: Sequence[CFD]):
        self.rows: List[PyTuple[CFD, PatternTuple]] = [
            (cfd, tp) for cfd in cfds for tp in cfd.tableau
        ]

    @staticmethod
    def _lhs_status(
        cfd: CFD, tp: PatternTuple, assignment: Assignment, which: int
    ) -> Optional[bool]:
        """Does t_<which> match tp on LHS?  None = not yet determined."""
        result = True
        for a in cfd.lhs:
            if a not in assignment:
                return None
            expected = tp.get(a)
            if expected is not UNNAMED and assignment[a][which] != expected:
                result = False
        return result

    def violated(self, assignment: Assignment, complete_attrs: Set[str]) -> bool:
        """True iff some row of Σ is *definitely* violated by the partial
        assignment (all of the row's attributes are assigned)."""
        for cfd, tp in self.rows:
            attrs = set(cfd.lhs) | set(cfd.rhs)
            if not attrs <= complete_attrs:
                continue
            for which in (0, 1):
                if self._lhs_status(cfd, tp, assignment, which):
                    for a in cfd.rhs:
                        expected = tp.get(a)
                        if expected is not UNNAMED and assignment[a][which] != expected:
                            return True
            # pair condition
            t1_match = self._lhs_status(cfd, tp, assignment, 0)
            t2_match = self._lhs_status(cfd, tp, assignment, 1)
            if t1_match and t2_match and all(
                assignment[a][0] == assignment[a][1] for a in cfd.lhs
            ):
                if any(assignment[a][0] != assignment[a][1] for a in cfd.rhs):
                    return True
        return False


def _violates_target(assignment: Assignment, cfd: CFD, tp: PatternTuple) -> bool:
    """Do (t1, t2) violate the target row tp (including t1 = t2 reading)?"""
    for which in (0, 1):
        if all(
            tp.get(a) is UNNAMED or assignment[a][which] == tp.get(a)
            for a in cfd.lhs
        ):
            for a in cfd.rhs:
                expected = tp.get(a)
                if expected is not UNNAMED and assignment[a][which] != expected:
                    return True
    if all(
        assignment[a][0] == assignment[a][1]
        and (tp.get(a) is UNNAMED or assignment[a][0] == tp.get(a))
        for a in cfd.lhs
    ):
        if any(assignment[a][0] != assignment[a][1] for a in cfd.rhs):
            return True
    return False


def find_counterexample(
    schema: RelationSchema,
    sigma: Sequence[CFD],
    target: CFD,
    search_limit: int = 5_000_000,
) -> Optional[RelationInstance]:
    """A ≤2-tuple instance satisfying Σ but violating ``target``, or None.

    Exact decision of Σ ⊭ ϕ.  ``search_limit`` caps the number of visited
    assignments (MemoryError beyond it — the problem is coNP-complete).
    """
    relevant_cfds = [c for c in sigma if c.relation_name == target.relation_name]
    for cfd in relevant_cfds + [target]:
        cfd.check_schema(schema)
    constants = attribute_constants(list(relevant_cfds) + [target])
    mentioned: Set[str] = set(constants)
    for cfd in list(relevant_cfds) + [target]:
        mentioned.update(cfd.lhs)
        mentioned.update(cfd.rhs)
    relevant = [a for a in schema.attribute_names if a in mentioned]
    candidates = {
        a: candidate_values(schema, a, constants.get(a, set()), fresh_count=2)
        for a in relevant
    }
    checker = _PairChecker(relevant_cfds)

    # Order attributes so target LHS comes first (strong seeding), then RHS.
    ordered = (
        [a for a in relevant if a in target.lhs]
        + [a for a in relevant if a in target.rhs and a not in target.lhs]
        + [a for a in relevant if a not in target.lhs and a not in target.rhs]
    )

    budget = [search_limit]

    def pairs_for(attr: str, tp: PatternTuple) -> List[PyTuple[Any, Any]]:
        values = candidates[attr]
        if attr in target.lhs:
            expected = tp.get(attr)
            if expected is not UNNAMED:
                # both tuples pinned to the pattern constant
                return [(expected, expected)]
            # t1[X] = t2[X]: equal pairs only
            return [(v, v) for v in values]
        return list(itertools.product(values, values))

    for tp in target.tableau:
        found = _search(
            ordered, 0, {}, checker, pairs_for, tp, target, budget
        )
        if found is not None:
            rows = []
            for which in (0, 1):
                data = {}
                for attr in schema.attribute_names:
                    if attr in found:
                        data[attr] = found[attr][which]
                    else:
                        data[attr] = schema.domain(attr).fresh_value()
                rows.append(data)
            instance = RelationInstance(schema)
            for row in rows:
                instance.add(row)
            return instance
    return None


def _search(
    ordered: List[str],
    index: int,
    assignment: Assignment,
    checker: _PairChecker,
    pairs_for,
    tp: PatternTuple,
    target: CFD,
    budget: List[int],
) -> Optional[Assignment]:
    if budget[0] <= 0:
        raise MemoryError("CFD implication search budget exhausted")
    budget[0] -= 1
    complete = set(assignment)
    if checker.violated(assignment, complete):
        return None
    if index == len(ordered):
        if _violates_target(assignment, target, tp):
            return dict(assignment)
        return None
    attr = ordered[index]
    for pair in pairs_for(attr, tp):
        assignment[attr] = pair
        result = _search(
            ordered, index + 1, assignment, checker, pairs_for, tp, target, budget
        )
        if result is not None:
            return result
        del assignment[attr]
    return None


def cfd_implies(
    schema: RelationSchema,
    sigma: Sequence[CFD],
    target: CFD,
    search_limit: int = 5_000_000,
) -> bool:
    """Decide Σ ⊨ ϕ (exact; coNP-complete in general, fast in practice)."""
    return find_counterexample(schema, sigma, target, search_limit) is None


def minimal_cover_cfds(
    schema: RelationSchema, cfds: Sequence[CFD], search_limit: int = 5_000_000
) -> List[CFD]:
    """Remove redundant CFDs (and redundant pattern rows) from Σ.

    As the paper notes, CFD sets "tend to be larger than their traditional
    counterparts (due to pattern tableaux)", so covers matter for detector
    performance.  Works row-at-a-time: a row is redundant if the remaining
    rows imply its single-row CFD.
    """
    rows: List[CFD] = []
    for cfd in cfds:
        rows.extend(cfd.pattern_cfds())
    kept: List[CFD] = list(rows)
    changed = True
    while changed:
        changed = False
        for row in list(kept):
            rest = [r for r in kept if r is not row]
            if cfd_implies(schema, rest, row, search_limit):
                kept = rest
                changed = True
                break
    return kept
