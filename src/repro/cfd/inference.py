"""An inference system for CFDs (paper §4.1, Theorem 4.6).

Theorem 4.6 states that CFDs taken alone are finitely axiomatizable; the
system of [36] extends Armstrong's axioms with pattern-aware rules.  This
module implements those rules as explicit, *individually sound* proof-step
constructors plus a bounded forward-chaining prover:

* ``reflexivity``      —  (X → A, tp) for A ∈ X with tp[A] on both sides;
* ``augmentation``     —  extend the LHS with a fresh attribute patterned '_';
* ``transitivity``     —  chain (X → Y, tp) and (Y → Z, tq) when the
  patterns unify on Y (constants agree; '_' specializes);
* ``instantiation``    —  replace an LHS '_' by any constant (a weaker,
  hence implied, CFD);
* ``rhs_weakening``    —  replace an RHS constant by '_';
* ``finite_domain_case`` — if (X ∪ {B} → A, ...) holds for *every* value of
  a finite dom(B) (one pattern row per value), drop B's constants to '_'
  (the rule that makes finite domains interact with implication).

Soundness of every rule is property-tested against the exact semantic
decision procedure in :mod:`repro.cfd.implication`; the prover is therefore
a certificate producer, while semantic completeness is delegated to the
decision procedure (the paper's system is complete; the prover here is
bounded search and hence complete only up to its step budget).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.cfd.model import CFD, UNNAMED, PatternTableau, PatternTuple
from repro.errors import DependencyError
from repro.relational.schema import RelationSchema

__all__ = [
    "reflexivity",
    "augmentation",
    "transitivity",
    "instantiation",
    "rhs_weakening",
    "finite_domain_case",
    "derive_cfd",
]


def _single_row(cfd: CFD) -> PatternTuple:
    if len(cfd.tableau) != 1:
        raise DependencyError("inference rules operate on single-row CFDs; split first")
    return cfd.tableau.rows[0]


def _make(relation: str, lhs: Sequence[str], rhs: Sequence[str], row: Dict[str, Any]) -> CFD:
    attrs = tuple(dict.fromkeys(list(lhs) + [a for a in rhs if a not in lhs]))
    return CFD(relation, lhs, rhs, PatternTableau(attrs, [row]))


def reflexivity(relation: str, lhs: Sequence[str], attr: str, pattern: Any = UNNAMED) -> CFD:
    """(X → A, tp) with A ∈ X; trivially valid."""
    if attr not in lhs:
        raise DependencyError("reflexivity requires the RHS attribute to be in the LHS")
    row = {a: UNNAMED for a in lhs}
    row[attr] = pattern
    return _make(relation, lhs, [attr], row)


def augmentation(cfd: CFD, attribute: str) -> CFD:
    """From (X → Y, tp) infer (X ∪ {B} → Y, tp + B='_')."""
    row = _single_row(cfd).as_dict()
    if attribute in cfd.lhs:
        return cfd
    row.setdefault(attribute, UNNAMED)
    return _make(cfd.relation_name, list(cfd.lhs) + [attribute], cfd.rhs, row)


def _unify(left: Any, right: Any) -> PyTuple[bool, Any]:
    """Unify two pattern positions: constants must agree; '_' specializes."""
    if left is UNNAMED:
        return True, right
    if right is UNNAMED:
        return True, left
    return (left == right), left


def transitivity(first: CFD, second: CFD) -> Optional[CFD]:
    """Chain (X → Y, tp) with (Y → Z, tq) into (X → Z, unified pattern).

    Requires second.lhs ⊆ first.rhs ∪ first.lhs and pattern unification on
    the shared attributes.  Returns None when the patterns clash (no sound
    conclusion exists via this rule).
    """
    if first.relation_name != second.relation_name:
        return None
    row1 = _single_row(first)
    row2 = _single_row(second)
    available = set(first.lhs) | set(first.rhs)
    if not set(second.lhs) <= available:
        return None
    combined: Dict[str, Any] = {}
    for a in second.lhs:
        ok, value = _unify(row1.get(a), row2.get(a))
        if not ok:
            return None
        combined[a] = value
    row: Dict[str, Any] = {a: row1.get(a) for a in first.lhs}
    # The mid pattern must be *entailed by* what first guarantees on Y: if
    # second requires a constant where first only guarantees '_', the chain
    # is sound only if the LHS pattern pins it — we conservatively require
    # unification success on every shared attribute (checked above).
    for a in second.lhs:
        if a in row:
            ok, value = _unify(row[a], combined[a])
            if not ok:
                return None
            row[a] = value
    for a in second.rhs:
        row[a] = row2.get(a)
    # Attributes of second.lhs that came from first.rhs but where second
    # demands a constant while first guarantees only '_' make the chain
    # unsound; require: row2 constant on a ∈ first.rhs ⟹ row1[a] equals it.
    for a in second.lhs:
        if a in first.rhs and a not in first.lhs:
            demanded = row2.get(a)
            if demanded is not UNNAMED and row1.get(a) != demanded:
                return None
    return _make(first.relation_name, first.lhs, second.rhs, row)


def instantiation(cfd: CFD, attribute: str, constant: Any) -> CFD:
    """Specialize an LHS '_' to a constant — a weaker CFD, hence implied."""
    if attribute not in cfd.lhs:
        raise DependencyError("instantiation targets an LHS attribute")
    row = _single_row(cfd).as_dict()
    if row.get(attribute, UNNAMED) is not UNNAMED:
        raise DependencyError("instantiation requires a '_' at the target position")
    row[attribute] = constant
    return _make(cfd.relation_name, cfd.lhs, cfd.rhs, row)


def rhs_weakening(cfd: CFD, attribute: str) -> CFD:
    """Replace an RHS constant with '_' — strictly weaker, hence implied."""
    if attribute not in cfd.rhs:
        raise DependencyError("rhs_weakening targets an RHS attribute")
    row = _single_row(cfd).as_dict()
    row[attribute] = UNNAMED
    return _make(cfd.relation_name, cfd.lhs, cfd.rhs, row)


def finite_domain_case(
    schema: RelationSchema, cfds: Sequence[CFD], attribute: str
) -> Optional[CFD]:
    """Case analysis over a finite domain (the rule behind Example 4.1).

    If single-row CFDs (X → Y, tp_b) exist for *every* b ∈ dom(B) — same X,
    Y and pattern except tp_b[B] = b — conclude (X → Y, tp) with tp[B]='_'.
    """
    domain = schema.domain(attribute)
    if not domain.is_finite:
        return None
    if not cfds:
        return None
    first = cfds[0]
    base = _single_row(first).as_dict()
    covered: Set[Any] = set()
    for cfd in cfds:
        if (cfd.relation_name, cfd.lhs, cfd.rhs) != (
            first.relation_name,
            first.lhs,
            first.rhs,
        ):
            return None
        row = _single_row(cfd).as_dict()
        value = row.get(attribute, UNNAMED)
        if value is UNNAMED:
            return None
        rest = {a: v for a, v in row.items() if a != attribute}
        base_rest = {a: v for a, v in base.items() if a != attribute}
        if rest != base_rest:
            return None
        covered.add(value)
    if covered != set(domain.values()):
        return None
    conclusion = dict(base)
    conclusion[attribute] = UNNAMED
    return _make(first.relation_name, first.lhs, first.rhs, conclusion)


class _DerivationStep:
    __slots__ = ("cfd", "rule", "premises")

    def __init__(self, cfd: CFD, rule: str, premises: PyTuple[int, ...] = ()):
        self.cfd = cfd
        self.rule = rule
        self.premises = premises

    def __repr__(self) -> str:
        src = f" from {list(self.premises)}" if self.premises else ""
        return f"{self.cfd!r} [{self.rule}{src}]"


def derive_cfd(
    schema: RelationSchema,
    sigma: Sequence[CFD],
    target: CFD,
    max_steps: int = 2000,
) -> Optional[List[_DerivationStep]]:
    """Bounded forward-chaining proof search for Σ ⊢ ϕ.

    Splits Σ and the target into single-row CFDs, saturates under
    transitivity/augmentation/instantiation (with constants drawn from the
    patterns in play), and checks whether every target row is derived.
    Returns the derivation (a list of steps) or None if the budget runs out
    — None does *not* mean Σ ⊭ ϕ; use the semantic procedure for decisions.
    """
    steps: List[_DerivationStep] = []
    index: Dict[CFD, int] = {}

    def absorb(cfd: CFD, rule: str, premises: PyTuple[int, ...] = ()) -> int:
        if cfd in index:
            return index[cfd]
        steps.append(_DerivationStep(cfd, rule, premises))
        index[cfd] = len(steps) - 1
        return index[cfd]

    rows: List[CFD] = []
    for cfd in sigma:
        for row_cfd in cfd.pattern_cfds():
            rows.append(row_cfd)
            absorb(row_cfd, "premise")
    targets = target.pattern_cfds()

    constants: Dict[str, Set[Any]] = {}
    for cfd in list(rows) + targets:
        row = _single_row(cfd)
        for a in cfd.lhs + cfd.rhs:
            v = row.get(a)
            if v is not UNNAMED:
                constants.setdefault(a, set()).add(v)

    def subsumes(have: CFD, want: CFD) -> bool:
        """Syntactic check: ``have`` implies ``want`` row-on-row (same FD,
        have's LHS pattern no more specific, RHS pattern no less specific)."""
        if (have.relation_name, set(have.lhs) <= set(want.lhs), have.rhs) != (
            want.relation_name,
            True,
            want.rhs,
        ):
            return False
        hrow, wrow = _single_row(have), _single_row(want)
        for a in have.lhs:
            hv, wv = hrow.get(a), wrow.get(a)
            if hv is not UNNAMED and hv != wv:
                return False
        for a in have.rhs:
            hv, wv = hrow.get(a), wrow.get(a)
            if wv is not UNNAMED and hv != wv:
                # want demands a constant the derivation does not guarantee
                if not (hv is not UNNAMED and hv == wv):
                    return False
        return True

    def satisfied() -> bool:
        return all(
            any(subsumes(steps[i].cfd, t) for i in range(len(steps)))
            for t in targets
        )

    if satisfied():
        return steps

    frontier = list(range(len(steps)))
    while frontier and len(steps) < max_steps:
        i = frontier.pop(0)
        current = steps[i].cfd
        # augmentation toward target LHS attributes
        for t in targets:
            for attr in t.lhs:
                if attr not in current.lhs:
                    new = augmentation(current, attr)
                    if new not in index:
                        absorb(new, "augmentation", (i,))
                        frontier.append(index[new])
        # instantiation with known constants
        row = _single_row(current)
        for attr in current.lhs:
            if row.get(attr) is UNNAMED:
                for constant in sorted(constants.get(attr, ()), key=repr):
                    new = instantiation(current, attr, constant)
                    if new not in index:
                        absorb(new, "instantiation", (i,))
                        frontier.append(index[new])
        # transitivity with everything derived so far
        for j in range(len(steps)):
            for first, second, pair in (
                (steps[i].cfd, steps[j].cfd, (i, j)),
                (steps[j].cfd, steps[i].cfd, (j, i)),
            ):
                chained = transitivity(first, second)
                if chained is not None and chained not in index:
                    absorb(chained, "transitivity", pair)
                    frontier.append(index[chained])
        # finite-domain case analysis on attributes with finite domains
        # sorted: case-analysis attribute order feeds derivation order,
        # which reaches the emitted proof steps
        for attr in sorted({a for c in rows for a in c.lhs}):
            if not schema.domain(attr).is_finite:
                continue
            group: Dict[PyTuple, List[CFD]] = {}
            for k in range(len(steps)):
                c = steps[k].cfd
                if attr in c.lhs:
                    r = _single_row(c).as_dict()
                    if r.get(attr, UNNAMED) is not UNNAMED:
                        key = (
                            c.lhs,
                            c.rhs,
                            tuple(sorted(
                                (a, repr(v)) for a, v in r.items() if a != attr
                            )),
                        )
                        group.setdefault(key, []).append(c)
            for members in group.values():
                merged = finite_domain_case(schema, members, attr)
                if merged is not None and merged not in index:
                    premises = tuple(index[m] for m in members)
                    absorb(merged, "finite-domain-case", premises)
                    frontier.append(index[merged])
        if satisfied():
            return steps
    return steps if satisfied() else None
