"""Conditional functional dependencies (paper §2.1, §2.3, §4.1):
model, detection, SQL generation, consistency, implication, inference,
covers, eCFDs and discovery."""

from repro.cfd.consistency import (
    consistency_by_relation,
    find_witness_tuple,
    is_consistent,
)
from repro.cfd.detect import DetectionReport, detect_violations, violating_tuples
from repro.cfd.discovery import DiscoveredCFD, discover_cfds
from repro.cfd.ecfd import ANY, ECFD, SetPattern, ecfd_implies, ecfd_is_consistent
from repro.cfd.implication import cfd_implies, find_counterexample, minimal_cover_cfds
from repro.cfd.model import CFD, UNNAMED, PatternTableau, PatternTuple, fd_as_cfd, matches
from repro.cfd.normal_form import classify, denormalize, normalize
from repro.cfd.sqlgen import pair_sql, single_tuple_sql, violation_sql

__all__ = [
    "ANY",
    "CFD",
    "DetectionReport",
    "DiscoveredCFD",
    "ECFD",
    "PatternTableau",
    "PatternTuple",
    "SetPattern",
    "UNNAMED",
    "cfd_implies",
    "classify",
    "denormalize",
    "normalize",
    "consistency_by_relation",
    "detect_violations",
    "discover_cfds",
    "ecfd_implies",
    "ecfd_is_consistent",
    "fd_as_cfd",
    "find_counterexample",
    "find_witness_tuple",
    "is_consistent",
    "matches",
    "minimal_cover_cfds",
    "pair_sql",
    "single_tuple_sql",
    "violating_tuples",
    "violation_sql",
]
