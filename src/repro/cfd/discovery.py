"""CFD discovery (profiling) from data.

The paper's introduction motivates "profiling methods for dependencies ...
for deducing and discovering rules for cleaning the data".  This module
implements a levelwise discovery algorithm in the spirit of CTANE/CFDMiner:
given an instance, a maximum LHS size and support/confidence thresholds, it
finds

* **variable CFDs** — embedded FDs that hold on the whole relation
  (pattern all '_');
* **conditioned CFDs** — embedded FDs that hold on the subset selected by
  pinning some LHS attributes to frequent constants (the `zip → street
  when CC = 44` shape of the running example);
* **constant CFDs** — fully-constant pattern rows with sufficient support.

Discovery is exponential in the LHS bound by nature; the implementation
prunes by support and skips supersets of already-found LHSs for the same
RHS (minimality).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, List, Sequence

from repro.cfd.model import CFD, UNNAMED, PatternTableau
from repro.relational.instance import RelationInstance

__all__ = ["DiscoveredCFD", "discover_cfds"]


class DiscoveredCFD:
    """A discovered rule with its support statistics."""

    __slots__ = ("cfd", "support", "kind")

    def __init__(self, cfd: CFD, support: int, kind: str):
        self.cfd = cfd
        self.support = support
        self.kind = kind  # "variable" | "conditioned" | "constant"

    def __repr__(self) -> str:
        return f"DiscoveredCFD({self.kind}, support={self.support}, {self.cfd!r})"


def _fd_holds_on(groups: Dict[tuple, List], rhs_index: List[str]) -> bool:
    for group in groups.values():
        first = group[0][rhs_index]
        if any(t[rhs_index] != first for t in group[1:]):
            return False
    return True


def discover_cfds(
    instance: RelationInstance,
    max_lhs: int = 2,
    min_support: int = 2,
    rhs_attributes: Sequence[str] | None = None,
) -> List[DiscoveredCFD]:
    """Discover CFDs holding on ``instance``.

    ``min_support`` applies to the tuples a conditioned/constant pattern
    selects.  Variable CFDs require the embedded FD to hold on the entire
    instance (support = |D|).
    """
    schema = instance.schema
    attrs = list(schema.attribute_names)
    rhs_pool = list(rhs_attributes) if rhs_attributes else attrs
    tuples = instance.tuples()
    found: List[DiscoveredCFD] = []
    # minimal variable-FD LHSs found per RHS attribute (for pruning)
    minimal_lhs: Dict[str, List[FrozenSet[str]]] = {a: [] for a in rhs_pool}

    for size in range(1, max_lhs + 1):
        for lhs in itertools.combinations(attrs, size):
            lhs_list = list(lhs)
            groups: Dict[tuple, List] = {}
            for t in tuples:
                groups.setdefault(t[lhs_list], []).append(t)
            for rhs in rhs_pool:
                if rhs in lhs:
                    continue
                if any(prev <= set(lhs) for prev in minimal_lhs[rhs]):
                    continue  # superset of a minimal variable CFD
                rhs_index = [rhs]
                if _fd_holds_on(groups, rhs_index):
                    row = {a: UNNAMED for a in lhs_list + [rhs]}
                    cfd = CFD(
                        schema.name,
                        lhs_list,
                        [rhs],
                        PatternTableau(tuple(lhs_list) + (rhs,), [row]),
                        name=f"discovered-var:{lhs_list}->{rhs}",
                    )
                    found.append(DiscoveredCFD(cfd, len(tuples), "variable"))
                    minimal_lhs[rhs].append(frozenset(lhs))
                    continue
                # conditioned: pin a strict subset of the LHS to constants
                found.extend(
                    _conditioned(
                        schema.name, tuples, lhs_list, rhs, min_support
                    )
                )
                # constant rows: X-groups that agree on the RHS
                for key, group in groups.items():
                    if len(group) < min_support:
                        continue
                    values = {t[rhs] for t in group}
                    if len(values) == 1:
                        row = dict(zip(lhs_list, key))
                        row[rhs] = values.pop()
                        cfd = CFD(
                            schema.name,
                            lhs_list,
                            [rhs],
                            PatternTableau(tuple(lhs_list) + (rhs,), [row]),
                            name=f"discovered-const:{lhs_list}->{rhs}@{key}",
                        )
                        found.append(DiscoveredCFD(cfd, len(group), "constant"))
    return found


def _conditioned(
    relation_name: str,
    tuples: List,
    lhs_list: List[str],
    rhs: str,
    min_support: int,
) -> List[DiscoveredCFD]:
    """FDs holding on the subset pinned by one LHS attribute's constant."""
    results: List[DiscoveredCFD] = []
    if len(lhs_list) < 2:
        return results
    for pin_attr in lhs_list:
        free = [a for a in lhs_list if a != pin_attr]
        by_pin: Dict[Any, List] = {}
        for t in tuples:
            by_pin.setdefault(t[pin_attr], []).append(t)
        for pin_value, selected in by_pin.items():
            if len(selected) < min_support:
                continue
            groups: Dict[tuple, List] = {}
            for t in selected:
                groups.setdefault(t[free], []).append(t)
            # The conditioned FD must not be trivially variable overall —
            # callers filter that; here just require it holds on the subset.
            if _fd_holds_on(groups, [rhs]):
                row: Dict[str, Any] = {a: UNNAMED for a in lhs_list + [rhs]}
                row[pin_attr] = pin_value
                cfd = CFD(
                    relation_name,
                    lhs_list,
                    [rhs],
                    PatternTableau(tuple(lhs_list) + (rhs,), [row]),
                    name=f"discovered-cond:{pin_attr}={pin_value!r}:{lhs_list}->{rhs}",
                )
                results.append(DiscoveredCFD(cfd, len(selected), "conditioned"))
    return results
