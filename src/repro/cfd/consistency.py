"""CFD consistency analysis (paper §4.1, Theorems 4.1 and 4.3).

The consistency problem — does a nonempty instance satisfying Σ exist? —
is NP-complete for CFDs in general and quadratic in the absence of
finite-domain attributes.  Both procedures here are *exact*; they rest on
two classical observations from [36]:

1. **Single-tuple witness.**  CFD satisfaction is preserved under subsets
   (every violation is witnessed by at most two tuples), so Σ is consistent
   iff some *single tuple* t satisfies Σ, where the pair condition
   degenerates to:  t[X] ≍ tp[X]  ⟹  t[Y] ≍ tp[Y].

2. **Small candidate sets.**  The single-tuple condition only compares
   t[A] with pattern constants, never with other attributes, so if any
   witness exists there is one where every attribute takes either a
   constant mentioned on it in Σ or one fixed "fresh" value outside all
   such constants.  This yields a finite, exact search space.

For schemas with no finite-domain attribute we use forced-constant
propagation instead of search: starting from the all-fresh tuple, patterns
whose LHS is *forced* to match fire and pin RHS constants; a clash of two
pinned constants proves inconsistency, and a fixpoint without clash yields
a witness (fresh values exist because domains are infinite).  This runs in
O(|Σ|²) — the quadratic bound of Theorem 4.3.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.cfd.model import CFD, UNNAMED, PatternTuple
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.tuples import Tuple

__all__ = [
    "attribute_constants",
    "candidate_values",
    "find_witness_tuple",
    "is_consistent",
    "consistency_by_relation",
]

#: Above this many finite-domain search candidates per relation, the
#: backtracking search refuses to run blind and raises instead.
_DEFAULT_SEARCH_LIMIT = 2_000_000


def attribute_constants(cfds: Sequence[CFD]) -> Dict[str, Set[Any]]:
    """All constants appearing in the pattern tableaux, per attribute."""
    constants: Dict[str, Set[Any]] = {}
    for cfd in cfds:
        for tp in cfd.tableau:
            for attr in cfd.lhs + cfd.rhs:
                value = tp.get(attr)
                if value is not UNNAMED:
                    constants.setdefault(attr, set()).add(value)
    return constants


def candidate_values(
    schema: RelationSchema,
    attr: str,
    constants: Set[Any],
    fresh_count: int = 1,
) -> List[Any]:
    """Exact candidate set for one attribute: constants + up to ``fresh_count``
    values outside them (all remaining domain values if the domain is finite
    and smaller)."""
    domain = schema.domain(attr)
    ordered = sorted(constants, key=repr)
    fresh: List[Any] = []
    for value in domain.fresh_values(constants):
        fresh.append(value)
        if len(fresh) >= fresh_count:
            break
    return ordered + fresh


def _single_tuple_patterns(
    cfds: Sequence[CFD],
) -> List[PyTuple[CFD, PatternTuple]]:
    """All (cfd, pattern-row) pairs, flattened."""
    return [(cfd, tp) for cfd in cfds for tp in cfd.tableau]


def _tuple_satisfies(
    assignment: Dict[str, Any], patterns: List[PyTuple[CFD, PatternTuple]]
) -> bool:
    """Single-tuple condition: for every row, LHS match ⟹ RHS match."""
    for cfd, tp in patterns:
        lhs_match = all(
            tp.get(a) is UNNAMED or assignment[a] == tp.get(a) for a in cfd.lhs
        )
        if not lhs_match:
            continue
        for a in cfd.rhs:
            expected = tp.get(a)
            if expected is not UNNAMED and assignment[a] != expected:
                return False
    return True


def _propagation_witness(
    schema: RelationSchema,
    cfds: Sequence[CFD],
    constants: Dict[str, Set[Any]],
) -> Optional[Dict[str, Any]]:
    """Quadratic decision for the no-finite-domain case (Theorem 4.3).

    Returns a witness assignment or None (inconsistent).  Precondition:
    every attribute mentioned in Σ has an infinite domain.
    """
    patterns = _single_tuple_patterns(cfds)
    forced: Dict[str, Any] = {}
    changed = True
    while changed:
        changed = False
        for cfd, tp in patterns:
            applies = True
            for a in cfd.lhs:
                expected = tp.get(a)
                if expected is UNNAMED:
                    continue
                if forced.get(a, UNNAMED) != expected:
                    applies = False
                    break
            if not applies:
                continue
            for a in cfd.rhs:
                expected = tp.get(a)
                if expected is UNNAMED:
                    continue
                if a in forced:
                    if forced[a] != expected:
                        return None  # two distinct constants pinned
                else:
                    forced[a] = expected
                    changed = True
    assignment: Dict[str, Any] = {}
    for attr in schema.attribute_names:
        if attr in forced:
            assignment[attr] = forced[attr]
        else:
            avoid = constants.get(attr, set())
            assignment[attr] = schema.domain(attr).fresh_value(avoid)
    # The propagation argument guarantees satisfaction; assert in debug runs.
    assert _tuple_satisfies(assignment, patterns)
    return assignment


def find_witness_tuple(
    schema: RelationSchema,
    cfds: Sequence[CFD],
    search_limit: int = _DEFAULT_SEARCH_LIMIT,
) -> Optional[Tuple]:
    """A single tuple t with {t} ⊨ Σ, or None if Σ is inconsistent.

    Exact.  Uses the quadratic propagation algorithm when no mentioned
    attribute has a finite domain, and exhaustive candidate search (the
    NP procedure) otherwise.
    """
    for cfd in cfds:
        if cfd.relation_name != schema.name:
            raise ValueError(
                f"CFD on {cfd.relation_name!r} passed with schema {schema.name!r}"
            )
        cfd.check_schema(schema)
    constants = attribute_constants(cfds)
    mentioned = set(constants)
    for cfd in cfds:
        mentioned.update(cfd.lhs)
        mentioned.update(cfd.rhs)

    finite_mentioned = [
        a for a in mentioned if schema.domain(a).is_finite
    ]
    if not finite_mentioned:
        assignment = _propagation_witness(schema, cfds, constants)
        return None if assignment is None else Tuple(schema, assignment)

    # General case: exhaustive search over exact candidate sets.
    relevant = [a for a in schema.attribute_names if a in mentioned]
    candidates = {
        a: candidate_values(schema, a, constants.get(a, set()), fresh_count=1)
        for a in relevant
    }
    space = 1
    for values in candidates.values():
        space *= max(1, len(values))
    if space > search_limit:
        raise MemoryError(
            f"CFD consistency search space {space} exceeds limit {search_limit}"
        )
    patterns = _single_tuple_patterns(cfds)
    base: Dict[str, Any] = {}
    for attr in schema.attribute_names:
        if attr not in mentioned:
            base[attr] = schema.domain(attr).fresh_value()
    for combo in itertools.product(*(candidates[a] for a in relevant)):
        assignment = dict(base)
        assignment.update(zip(relevant, combo))
        if _tuple_satisfies(assignment, patterns):
            return Tuple(schema, assignment)
    return None


def is_consistent(
    schema: RelationSchema,
    cfds: Sequence[CFD],
    search_limit: int = _DEFAULT_SEARCH_LIMIT,
) -> bool:
    """Decide the consistency problem for a set of CFDs over one relation."""
    return find_witness_tuple(schema, cfds, search_limit) is not None


def consistency_by_relation(
    db_schema: DatabaseSchema,
    cfds: Iterable[CFD],
    search_limit: int = _DEFAULT_SEARCH_LIMIT,
) -> Dict[str, Optional[Tuple]]:
    """Witness (or None) per relation for a mixed-relation CFD set."""
    grouped: Dict[str, List[CFD]] = {}
    for cfd in cfds:
        grouped.setdefault(cfd.relation_name, []).append(cfd)
    return {
        name: find_witness_tuple(db_schema.relation(name), group, search_limit)
        for name, group in grouped.items()
    }
