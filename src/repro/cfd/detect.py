"""Batch CFD violation detection.

Mirrors the detection method of [36]: for each pattern tuple, one pass
catches single-tuple violations (RHS constants), one grouped pass catches
pair violations (embedded FD on the matching subset).  The report separates
the two kinds and aggregates per-dependency and per-tuple statistics, which
the benchmarks (EXP-DETECT) use to compare the detection power of FDs
vs CFDs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple as PyTuple

from repro.deps.base import Dependency, Violation
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple

__all__ = ["DetectionReport", "detect_violations", "violating_tuples"]


class DetectionReport:
    """Aggregated outcome of running a set of dependencies over a database."""

    def __init__(self, violations: Sequence[Violation]):
        self.violations: List[Violation] = list(violations)

    @property
    def total(self) -> int:
        return len(self.violations)

    def single_tuple(self) -> List[Violation]:
        """Violations witnessed by one tuple (constant-pattern clashes)."""
        return [v for v in self.violations if len(v.tuples) == 1]

    def pairs(self) -> List[Violation]:
        """Violations witnessed by two or more tuples."""
        return [v for v in self.violations if len(v.tuples) >= 2]

    def by_dependency(self) -> Dict[Dependency, List[Violation]]:
        grouped: Dict[Dependency, List[Violation]] = {}
        for v in self.violations:
            grouped.setdefault(v.dependency, []).append(v)
        return grouped

    def violating_tuples(self) -> Set[PyTuple[str, Tuple]]:
        """Every (relation, tuple) pair involved in some violation."""
        found: Set[PyTuple[str, Tuple]] = set()
        for v in self.violations:
            found.update(v.tuples)
        return found

    def is_clean(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        per_dep = {
            getattr(dep, "name", repr(dep)): len(vs)
            for dep, vs in self.by_dependency().items()
        }
        return (
            f"{self.total} violations "
            f"({len(self.single_tuple())} single-tuple, {len(self.pairs())} pair) "
            f"across {len(self.violating_tuples())} tuples; per dependency: {per_dep}"
        )

    def __repr__(self) -> str:
        return f"DetectionReport({self.summary()})"


def detect_violations(
    db: DatabaseInstance, dependencies: Iterable[Dependency], engine: bool = True
) -> DetectionReport:
    """Batch violation detection, aggregated into a report.

    With ``engine=True`` (the default) the dependency set is planned and
    executed over shared relation indexes — each relation is partitioned
    once per LHS signature no matter how many dependencies or tableau rows
    share it.  ``engine=False`` keeps the per-dependency loop (each
    detector still hits the shared index cache; this switch only disables
    the cross-dependency plan).
    """
    deps = list(dependencies)
    if engine:
        from repro.engine.executor import detect_violations_indexed

        return detect_violations_indexed(db, deps)
    found: List[Violation] = []
    for dep in deps:
        found.extend(dep.violations(db))
    return DetectionReport(found)


def violating_tuples(
    db: DatabaseInstance, dependencies: Iterable[Dependency]
) -> Set[PyTuple[str, Tuple]]:
    """Convenience: the set of (relation, tuple) witnesses over all deps."""
    return detect_violations(db, dependencies).violating_tuples()
