"""Conditional functional dependencies: syntax and semantics (paper §2.1).

A CFD ϕ = (R: X → Y, Tp) couples an embedded FD X → Y with a pattern
tableau Tp whose tuples mix constants and the unnamed variable '_'.  The
match operator ≍ (constants match themselves; '_' matches anything) defines
the semantics:

    D ⊨ ϕ  iff  for each tp ∈ Tp and t1, t2 ∈ D:
                t1[X] = t2[X] ≍ tp[X]  ⟹  t1[Y] = t2[Y] ≍ tp[Y].

Violations come in two shapes, and the detector distinguishes them exactly
as the SQL-based detection of [36] does:

* **single-tuple**: t[X] ≍ tp[X] but t[Y] does not match a constant of
  tp[Y] (taking t1 = t2 in the definition);
* **pair**: t1[X] = t2[X] ≍ tp[X] but t1[Y] ≠ t2[Y].
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple as PyTuple

from repro.deps.base import Dependency, Violation
from repro.deps.fd import FD
from repro.engine.indexes import canonical_signature, key_getter
from repro.engine.scan import ColumnarSpec, ScanTask, run_scan_tasks
from repro.errors import DependencyError
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple

__all__ = ["UNNAMED", "PatternTuple", "PatternTableau", "CFD", "matches", "fd_as_cfd"]


class _Unnamed:
    """The unnamed (yet marked) variable '_' of pattern tableaux."""

    _instance: "_Unnamed | None" = None

    def __new__(cls) -> "_Unnamed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "_"

    def __reduce__(self):
        return (_Unnamed, ())


#: Singleton wildcard; use this in pattern tuples for '_'.
UNNAMED = _Unnamed()


def matches(value: Any, pattern: Any) -> bool:
    """The ≍ operator on a single position: η1 ≍ η2."""
    return pattern is UNNAMED or value is UNNAMED or value == pattern


class PatternTuple:
    """One pattern tuple tp over attributes X ∪ Y."""

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, Any]):
        self._values: Dict[str, Any] = dict(values)

    def __getitem__(self, attribute: str) -> Any:
        try:
            return self._values[attribute]
        except KeyError:
            raise DependencyError(f"pattern tuple has no attribute {attribute!r}") from None

    def attributes(self) -> PyTuple[str, ...]:
        return tuple(self._values)

    def get(self, attribute: str, default: Any = UNNAMED) -> Any:
        return self._values.get(attribute, default)

    def is_constant_on(self, attributes: Sequence[str]) -> bool:
        """True iff tp is a constant (no '_') on every listed attribute."""
        return all(self._values.get(a, UNNAMED) is not UNNAMED for a in attributes)

    def constants_on(self, attributes: Sequence[str]) -> Dict[str, Any]:
        """The constant positions of tp restricted to ``attributes``."""
        wanted = set(attributes)
        return {
            a: v
            for a, v in self._values.items()
            if a in wanted and v is not UNNAMED
        }

    def matches_tuple(self, t: Tuple, attributes: Sequence[str]) -> bool:
        """t[attributes] ≍ tp[attributes]."""
        return all(matches(t[a], self._values.get(a, UNNAMED)) for a in attributes)

    def project(self, attributes: Sequence[str]) -> "PatternTuple":
        return PatternTuple({a: self._values.get(a, UNNAMED) for a in attributes})

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PatternTuple) and self._values == other._values

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}={v!r}" for a, v in self._values.items())
        return f"PatternTuple({inner})"


class PatternTableau:
    """An ordered collection of pattern tuples over fixed attributes."""

    def __init__(self, attributes: Sequence[str], rows: Iterable[Mapping[str, Any] | PatternTuple]):
        self.attributes: PyTuple[str, ...] = tuple(attributes)
        tuples: List[PatternTuple] = []
        for row in rows:
            pt = row if isinstance(row, PatternTuple) else PatternTuple(row)
            extra = set(pt.attributes()) - set(self.attributes)
            if extra:
                raise DependencyError(
                    f"pattern tuple mentions attributes {sorted(extra)} outside "
                    f"the tableau attributes {list(self.attributes)}"
                )
            # Normalize: every tableau attribute present, defaulting to '_'.
            pt = PatternTuple({a: pt.get(a, UNNAMED) for a in self.attributes})
            tuples.append(pt)
        if not tuples:
            raise DependencyError("pattern tableau must contain at least one tuple")
        self.rows: PyTuple[PatternTuple, ...] = tuple(tuples)

    def __iter__(self) -> Iterator[PatternTuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PatternTableau)
            and self.attributes == other.attributes
            and set(self.rows) == set(other.rows)
        )

    def __hash__(self) -> int:
        return hash((self.attributes, frozenset(self.rows)))

    def __repr__(self) -> str:
        return f"PatternTableau({list(self.attributes)}, {len(self.rows)} rows)"

    def pretty(self) -> str:
        """ASCII rendering in the style of the paper's Figure 2."""
        headers = list(self.attributes)
        rows = [
            ["_" if pt[a] is UNNAMED else repr(pt[a]) for a in headers]
            for pt in self.rows
        ]
        widths = [len(h) for h in headers]
        for row in rows:
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows)
        return "\n".join(lines)


class CFD(Dependency):
    """ϕ = (R: X → Y, Tp)."""

    def __init__(
        self,
        relation_name: str,
        lhs: Sequence[str],
        rhs: Sequence[str],
        tableau: PatternTableau | Iterable[Mapping[str, Any]],
        name: str | None = None,
    ):
        if not rhs:
            raise DependencyError("CFD must have a non-empty RHS")
        self.relation_name = relation_name
        self.lhs: PyTuple[str, ...] = tuple(dict.fromkeys(lhs))
        self.rhs: PyTuple[str, ...] = tuple(dict.fromkeys(rhs))
        overlap_ok = set(self.lhs + self.rhs)
        if not isinstance(tableau, PatternTableau):
            tableau = PatternTableau(self.lhs + tuple(a for a in self.rhs if a not in self.lhs), tableau)
        missing = set(tableau.attributes) - overlap_ok
        if missing:
            raise DependencyError(
                f"tableau attributes {sorted(missing)} not in X ∪ Y"
            )
        self.tableau = tableau
        self.name = name or f"cfd:{list(self.lhs)}->{list(self.rhs)}"

    @property
    def embedded_fd(self) -> FD:
        """The FD X → Y embedded in this CFD."""
        return FD(self.relation_name, self.lhs, self.rhs)

    def relations(self) -> PyTuple[str, ...]:
        return (self.relation_name,)

    def check_schema(self, schema: RelationSchema) -> None:
        """Validate attribute names and pattern constants against domains."""
        schema.check_attributes(self.lhs)
        schema.check_attributes(self.rhs)
        for tp in self.tableau:
            for attr in self.lhs + self.rhs:
                value = tp.get(attr)
                if value is not UNNAMED:
                    schema.domain(attr).validate(value)

    def pattern_cfds(self) -> List["CFD"]:
        """Split into one single-pattern CFD per tableau row.

        Each tuple in a pattern tableau "indicates a constraint" (Example
        2.1); most analyses work row-at-a-time.
        """
        return [
            CFD(self.relation_name, self.lhs, self.rhs, PatternTableau(self.tableau.attributes, [tp]), name=f"{self.name}#{i}")
            for i, tp in enumerate(self.tableau)
        ]

    def is_constant(self) -> bool:
        """True iff every tableau row is constant on both X and Y."""
        return all(
            tp.is_constant_on(self.lhs) and tp.is_constant_on(self.rhs)
            for tp in self.tableau
        )

    def is_variable(self) -> bool:
        """True iff no tableau row has a constant on the RHS."""
        return all(not tp.constants_on(self.rhs) for tp in self.tableau)

    @property
    def scan_signature(self) -> PyTuple[str, ...]:
        """Canonical LHS signature; CFDs sharing it share one partition."""
        return canonical_signature(self.lhs)

    def pattern_key_matches(
        self, tp: PatternTuple, signature: Sequence[str], key: tuple
    ) -> bool:
        """Does a partition key (projection on ``signature``) match tp on X?

        Pattern matching on X depends only on t[X], so whole partitions
        match or fail together — the engine tests the key once per group
        instead of once per tuple.
        """
        return all(matches(v, tp.get(a)) for a, v in zip(signature, key))

    def _compile_evaluator(self, tp: PatternTuple, schema: RelationSchema):
        """Positional evaluator for one row within one X-partition.

        Every tuple in a partition agrees on X, so the embedded FD can only
        be violated within it, and the single-tuple RHS-constant check is
        local to it as well.  Attribute names resolve to value positions
        here, once, keeping the per-group loop free of name lookups.
        """
        lhs = list(self.lhs)
        rhs = list(self.rhs)
        rhs_of = key_getter(schema, rhs)
        rhs_constants = [
            (schema.index_of(a), a, c) for a, c in tp.constants_on(rhs).items()
        ]

        def single_violation(t: Tuple, bad: Dict[str, Any]) -> Violation:
            return Violation(
                self,
                [(self.relation_name, t)],
                f"{self.name}: tuple matches {tp!r} on LHS but has "
                f"{ {a: t[a] for a in bad} } instead of {bad}",
            )

        pair_message = (
            f"{self.name}: tuples agree on {lhs} (matching "
            f"{tp!r}) but differ on {rhs}"
        )

        def single(t: Tuple, out: list) -> None:
            if not rhs_constants:
                return
            values = t.values()
            bad = {a: c for p, a, c in rhs_constants if values[p] != c}
            if bad:
                out.append(single_violation(t, bad))

        def pair(first: Tuple, other: Tuple, out: list) -> None:
            if rhs_of(first.values()) != rhs_of(other.values()):
                out.append(
                    Violation(
                        self,
                        [(self.relation_name, first), (self.relation_name, other)],
                        pair_message,
                    )
                )

        def evaluate(group: Sequence[Tuple], out: list) -> None:
            if len(rhs_constants) == 1:
                # Overwhelmingly common shape: one constant to check, and
                # clean tuples exit on a single comparison.
                p, a, c = rhs_constants[0]
                for t in group:
                    if t.values()[p] != c:
                        out.append(single_violation(t, {a: c}))
            elif rhs_constants:
                for t in group:
                    values = t.values()
                    bad = {a: c for p, a, c in rhs_constants if values[p] != c}
                    if bad:
                        out.append(single_violation(t, bad))
            if len(group) < 2:
                return
            first = group[0]
            first_rhs = rhs_of(first.values())
            for other in group[1:]:
                if first_rhs != rhs_of(other.values()):
                    out.append(
                        Violation(
                            self,
                            [
                                (self.relation_name, first),
                                (self.relation_name, other),
                            ],
                            pair_message,
                        )
                    )

        return evaluate, single, pair, bool(rhs_constants)

    def scan_tasks(self, schema: RelationSchema) -> List[ScanTask]:
        """One compiled :class:`~repro.engine.scan.ScanTask` per tableau row."""
        signature = self.scan_signature
        tasks: List[ScanTask] = []
        for tp in self.tableau:
            evaluate, single, pair, has_rhs_constants = self._compile_evaluator(
                tp, schema
            )
            if tp.is_constant_on(signature):
                # Fully-constant pattern: the matching partition is a
                # single hash lookup instead of a sweep.
                lookup = tuple(tp[a] for a in signature)
                key_constants: List[tuple] = []
            else:
                lookup = None
                key_constants = [
                    (i, tp[a])
                    for i, a in enumerate(signature)
                    if tp.get(a) is not UNNAMED
                ]
            tasks.append(
                ScanTask(
                    lookup,
                    key_constants,
                    evaluate,
                    skip_singletons=not has_rhs_constants,
                    single=single,
                    pair=pair,
                    columnar=ColumnarSpec(
                        pair_attrs=self.rhs,
                        singles=[
                            ("eq", a, c)
                            for a, c in tp.constants_on(self.rhs).items()
                        ],
                        key_checks=[("eq", i, c) for i, c in key_constants],
                    ),
                )
            )
        return tasks

    def pattern_group_violations(
        self, tp: PatternTuple, group: Sequence[Tuple]
    ) -> Iterator[Violation]:
        """Violations of one pattern row within one X-partition."""
        group = list(group)
        if not group:
            return
        evaluate, _, _, _ = self._compile_evaluator(tp, group[0].schema)
        out: List[Violation] = []
        evaluate(group, out)
        yield from out

    def violations(self, db: DatabaseInstance) -> Iterator[Violation]:
        relation = db.relation(self.relation_name)
        groups = relation.indexes.group_index(self.scan_signature)
        yield from run_scan_tasks(groups, self.scan_tasks(relation.schema))

    def __repr__(self) -> str:
        return (
            f"CFD({self.relation_name}: {list(self.lhs)} -> {list(self.rhs)}, "
            f"{len(self.tableau)} patterns)"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CFD)
            and (self.relation_name, self.lhs, self.rhs, self.tableau)
            == (other.relation_name, other.lhs, other.rhs, other.tableau)
        )

    def __hash__(self) -> int:
        return hash((self.relation_name, self.lhs, self.rhs, self.tableau))


def fd_as_cfd(fd: FD) -> CFD:
    """Embed a traditional FD as the CFD with a single all-'_' pattern row."""
    attributes = fd.lhs + tuple(a for a in fd.rhs if a not in fd.lhs)
    row = {a: UNNAMED for a in attributes}
    return CFD(fd.relation_name, fd.lhs, fd.rhs, PatternTableau(attributes, [row]), name=f"fd-as-cfd:{list(fd.lhs)}->{list(fd.rhs)}")
