"""eCFDs: CFDs extended with disjunction and inequality (paper §2.3).

An eCFD pattern position is one of

* the wildcard '_',
* a finite set S with positive polarity  (value ∈ S — disjunction), or
* a finite set S with negative polarity  (value ∉ S — inequality);

a constant c is the singleton {c}.  The running examples:

    ecfd1:  CT ∉ {NYC, LI} → AC            (FD holds off the listed cities)
    ecfd2:  CT ∈ {NYC} → AC ∈ {212, 718, 646, 347, 917}

Theorem 4.4: consistency stays NP-complete and implication coNP-complete
even *without* finite-domain attributes, because an eCFD can force an
attribute into a finite set.  The procedures below are exact for the same
small-witness reasons as for CFDs — only membership in the explicitly
listed sets matters, so candidates per attribute are the listed constants
plus one or two fresh values.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple as PyTuple

from repro.deps.base import Dependency, Violation
from repro.engine.indexes import canonical_signature, key_getter
from repro.errors import DependencyError
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple

__all__ = ["ANY", "SetPattern", "ECFD", "ecfd_is_consistent", "ecfd_implies"]


class _Any:
    """Wildcard for eCFD patterns (distinct from CFD's UNNAMED by type only)."""

    _instance: "_Any | None" = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "_"


ANY = _Any()


class SetPattern:
    """value ∈ S (negated=False) or value ∉ S (negated=True)."""

    __slots__ = ("values", "negated")

    def __init__(self, values: Iterable[Any], negated: bool = False):
        self.values: FrozenSet[Any] = frozenset(values)
        if not self.values:
            raise DependencyError("eCFD set pattern must be non-empty")
        self.negated = negated

    def matches(self, value: Any) -> bool:
        inside = value in self.values
        return not inside if self.negated else inside

    def __repr__(self) -> str:
        symbol = "∉" if self.negated else "∈"
        rendered = ", ".join(sorted(map(repr, self.values)))
        return f"{symbol}{{{rendered}}}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SetPattern)
            and (self.values, self.negated) == (other.values, other.negated)
        )

    def __hash__(self) -> int:
        return hash((self.values, self.negated))


def _coerce(pattern: Any) -> Any:
    """Normalize shorthand: constants become positive singletons."""
    if pattern is ANY or isinstance(pattern, SetPattern):
        return pattern
    return SetPattern([pattern])


def _matches(value: Any, pattern: Any) -> bool:
    return True if pattern is ANY else pattern.matches(value)


class ECFD(Dependency):
    """ψ = (R: X → Y, row) with set/negated-set patterns (single row).

    Multi-row tableaux are expressed as several ECFDs; the paper's analyses
    are all row-local for eCFDs.
    """

    def __init__(
        self,
        relation_name: str,
        lhs: Sequence[str],
        rhs: Sequence[str],
        pattern: Mapping[str, Any],
        name: str | None = None,
    ):
        if not rhs:
            raise DependencyError("eCFD must have a non-empty RHS")
        self.relation_name = relation_name
        self.lhs: PyTuple[str, ...] = tuple(dict.fromkeys(lhs))
        self.rhs: PyTuple[str, ...] = tuple(dict.fromkeys(rhs))
        allowed = set(self.lhs) | set(self.rhs)
        extra = set(pattern) - allowed
        if extra:
            raise DependencyError(f"pattern attributes {sorted(extra)} not in X ∪ Y")
        self.pattern: Dict[str, Any] = {
            a: _coerce(pattern.get(a, ANY)) for a in self.lhs + self.rhs
        }
        self.name = name or f"ecfd:{list(self.lhs)}->{list(self.rhs)}"

    def relations(self) -> PyTuple[str, ...]:
        return (self.relation_name,)

    def check_schema(self, schema: RelationSchema) -> None:
        """Validate attribute names and set-pattern constants against domains."""
        schema.check_attributes(self.lhs)
        schema.check_attributes(self.rhs)
        for attr, pattern in self.pattern.items():
            if isinstance(pattern, SetPattern):
                for value in pattern.values:
                    schema.domain(attr).validate(value)

    def lhs_matches(self, t: Tuple) -> bool:
        return all(_matches(t[a], self.pattern[a]) for a in self.lhs)

    @property
    def scan_signature(self) -> PyTuple[str, ...]:
        """Canonical LHS signature; shares partitions with FDs and CFDs."""
        return canonical_signature(self.lhs)

    def lhs_key_matches(self, signature: Sequence[str], key: tuple) -> bool:
        """LHS set-pattern match on a partition key (projection on
        ``signature``); depends only on t[X], so it decides whole groups."""
        by_attr = dict(zip(signature, key))
        return all(_matches(by_attr[a], self.pattern[a]) for a in self.lhs)

    def scan_tasks(self, schema: RelationSchema) -> List["ScanTask"]:
        """One compiled sweep task with set-pattern key matching."""
        from repro.engine.scan import ColumnarSpec, ScanTask

        signature = self.scan_signature
        key_position = {a: i for i, a in enumerate(signature)}
        lhs_checks = [
            (key_position[a], self.pattern[a])
            for a in self.lhs
            if self.pattern[a] is not ANY
        ]
        rhs_checks = [
            (schema.index_of(a), a, self.pattern[a])
            for a in self.rhs
            if self.pattern[a] is not ANY
        ]
        rhs_of = key_getter(schema, self.rhs)

        def match(key: tuple) -> bool:
            return all(p.matches(key[i]) for i, p in lhs_checks)

        pair_message = (
            f"{self.name}: agree on {list(self.lhs)} but differ on "
            f"{list(self.rhs)}"
        )

        def single(t, out: list) -> None:
            if not rhs_checks:
                return
            values = t.values()
            bad = [a for p, a, pat in rhs_checks if not pat.matches(values[p])]
            if bad:
                out.append(
                    Violation(
                        self,
                        [(self.relation_name, t)],
                        f"{self.name}: RHS pattern fails on {bad}",
                    )
                )

        def pair(first, other, out: list) -> None:
            if rhs_of(first.values()) != rhs_of(other.values()):
                out.append(
                    Violation(
                        self,
                        [(self.relation_name, first), (self.relation_name, other)],
                        pair_message,
                    )
                )

        def evaluate(group, out: list) -> None:
            if rhs_checks:
                for t in group:
                    single(t, out)
            if len(group) < 2:
                return
            first = group[0]
            first_rhs = rhs_of(first.values())
            for other in group[1:]:
                if first_rhs != rhs_of(other.values()):
                    out.append(
                        Violation(
                            self,
                            [(self.relation_name, first), (self.relation_name, other)],
                            pair_message,
                        )
                    )

        return [
            ScanTask(
                None,
                [],
                evaluate,
                skip_singletons=not rhs_checks,
                match_fn=match,
                single=single,
                pair=pair,
                columnar=ColumnarSpec(
                    pair_attrs=self.rhs,
                    singles=[
                        ("set", a, pat.values, pat.negated)
                        for _, a, pat in rhs_checks
                    ],
                    key_checks=[
                        ("set", i, pat.values, pat.negated)
                        for i, pat in lhs_checks
                    ],
                ),
            )
        ]

    def group_violations(self, group: Sequence[Tuple]) -> Iterator[Violation]:
        """Violations within one X-partition whose key matched the LHS."""
        group = list(group)
        if not group:
            return
        out: List[Violation] = []
        self.scan_tasks(group[0].schema)[0].evaluate(group, out)
        yield from out

    def violations(self, db: DatabaseInstance) -> Iterator[Violation]:
        from repro.engine.scan import run_scan_tasks

        relation = db.relation(self.relation_name)
        groups = relation.indexes.group_index(self.scan_signature)
        yield from run_scan_tasks(groups, self.scan_tasks(relation.schema))

    def __repr__(self) -> str:
        rendered = ", ".join(f"{a}{self.pattern[a]!r}" for a in self.lhs + self.rhs)
        return f"ECFD({self.relation_name}: {list(self.lhs)} -> {list(self.rhs)} | {rendered})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ECFD)
            and (self.relation_name, self.lhs, self.rhs) == (other.relation_name, other.lhs, other.rhs)
            and self.pattern == other.pattern
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.relation_name,
                self.lhs,
                self.rhs,
                tuple(sorted((a, hash(p)) for a, p in self.pattern.items())),
            )
        )


def _constants(ecfds: Sequence[ECFD]) -> Dict[str, Set[Any]]:
    constants: Dict[str, Set[Any]] = {}
    for e in ecfds:
        for a, p in e.pattern.items():
            if isinstance(p, SetPattern):
                constants.setdefault(a, set()).update(p.values)
    return constants


def _candidates(
    schema: RelationSchema, attr: str, constants: Set[Any], fresh_count: int
) -> List[Any]:
    domain = schema.domain(attr)
    ordered = sorted(constants, key=repr)
    fresh: List[Any] = []
    for value in domain.fresh_values(constants):
        fresh.append(value)
        if len(fresh) >= fresh_count:
            break
    return ordered + fresh


def _single_tuple_ok(assignment: Dict[str, Any], ecfds: Sequence[ECFD]) -> bool:
    for e in ecfds:
        if all(_matches(assignment[a], e.pattern[a]) for a in e.lhs):
            if not all(_matches(assignment[a], e.pattern[a]) for a in e.rhs):
                return False
    return True


def ecfd_is_consistent(
    schema: RelationSchema,
    ecfds: Sequence[ECFD],
    search_limit: int = 2_000_000,
) -> bool:
    """Exact consistency (NP-complete, Theorem 4.4): single-tuple witness
    search over listed constants plus one fresh value per attribute."""
    mentioned: Set[str] = set()
    for e in ecfds:
        mentioned.update(e.lhs)
        mentioned.update(e.rhs)
    constants = _constants(ecfds)
    relevant = [a for a in schema.attribute_names if a in mentioned]
    candidates = {
        a: _candidates(schema, a, constants.get(a, set()), fresh_count=1)
        for a in relevant
    }
    space = 1
    for v in candidates.values():
        space *= max(1, len(v))
    if space > search_limit:
        raise MemoryError(f"eCFD consistency search space {space} over limit")
    # Note: with no eCFDs, `relevant` is empty, the product yields one empty
    # combo, `_single_tuple_ok` is vacuously true, and we correctly return
    # True (an empty set of constraints is trivially consistent).
    for combo in itertools.product(*(candidates[a] for a in relevant)):
        assignment = dict(zip(relevant, combo))
        if _single_tuple_ok(assignment, ecfds):
            return True
    return False


def ecfd_implies(
    schema: RelationSchema,
    sigma: Sequence[ECFD],
    target: ECFD,
    search_limit: int = 2_000_000,
) -> bool:
    """Exact implication (coNP-complete): two-tuple counterexample search."""
    relevant_sigma = [e for e in sigma if e.relation_name == target.relation_name]
    all_deps = list(relevant_sigma) + [target]
    mentioned: Set[str] = set()
    for e in all_deps:
        mentioned.update(e.lhs)
        mentioned.update(e.rhs)
    constants = _constants(all_deps)
    relevant = [a for a in schema.attribute_names if a in mentioned]
    candidates = {
        a: _candidates(schema, a, constants.get(a, set()), fresh_count=2)
        for a in relevant
    }

    def pair_satisfies(t1: Dict[str, Any], t2: Dict[str, Any], e: ECFD) -> bool:
        for t in (t1, t2):
            if all(_matches(t[a], e.pattern[a]) for a in e.lhs):
                if not all(_matches(t[a], e.pattern[a]) for a in e.rhs):
                    return False
        if (
            all(t1[a] == t2[a] for a in e.lhs)
            and all(_matches(t1[a], e.pattern[a]) for a in e.lhs)
            and any(t1[a] != t2[a] for a in e.rhs)
        ):
            return False
        return True

    # Seed: both tuples agree and match target LHS; enumerate the rest.
    lhs_attrs = [a for a in relevant if a in target.lhs]
    other_attrs = [a for a in relevant if a not in target.lhs]
    lhs_options: List[List[Any]] = []
    for a in lhs_attrs:
        lhs_options.append(
            [v for v in candidates[a] if _matches(v, target.pattern[a])]
        )
    visited = 0
    for lhs_combo in itertools.product(*lhs_options):
        for rest in itertools.product(
            *(list(itertools.product(candidates[a], candidates[a])) for a in other_attrs)
        ):
            visited += 1
            if visited > search_limit:
                raise MemoryError("eCFD implication search budget exhausted")
            t1 = dict(zip(lhs_attrs, lhs_combo))
            t2 = dict(t1)
            for a, (v1, v2) in zip(other_attrs, rest):
                t1[a] = v1
                t2[a] = v2
            if not all(pair_satisfies(t1, t2, e) for e in relevant_sigma):
                continue
            # violation of target: single-tuple or pair
            violated = False
            for t in (t1, t2):
                if all(_matches(t[a], target.pattern[a]) for a in target.lhs):
                    if not all(_matches(t[a], target.pattern[a]) for a in target.rhs):
                        violated = True
            if (
                not violated
                and all(t1[a] == t2[a] for a in target.lhs)
                and any(t1[a] != t2[a] for a in target.rhs)
            ):
                violated = True
            if violated:
                return False
    return True
