"""SQL generation for CFD violation detection.

[36] shows that all violations of a CFD (even with a large tableau) can be
found with a *pair* of SQL queries: one for single-tuple violations against
RHS pattern constants, one GROUP BY query for pair violations of the
embedded FD on the matching subset.  This module emits that SQL as text, so
the detectors can be pushed into any RDBMS; the pattern tableau is inlined
as a VALUES list exactly as in the paper's encoding.

The in-memory detector (:mod:`repro.cfd.detect`) remains the reference
implementation; tests cross-check the generated SQL against it by executing
the SQL with Python's :mod:`sqlite3`.
"""

from __future__ import annotations

from typing import Any, List, Tuple as PyTuple

from repro.cfd.model import CFD, UNNAMED

__all__ = ["violation_sql", "single_tuple_sql", "pair_sql", "tableau_values_sql"]

#: Name used for the inlined pattern-tableau subquery.
_TABLEAU_ALIAS = "tp"


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def tableau_values_sql(cfd: CFD) -> str:
    """The pattern tableau as a CTE over a VALUES list, NULL encoding '_'.

    Columns are named ``p_<attr>`` to avoid clashing with data columns; the
    CTE form (``WITH tp(...) AS (VALUES ...)``) is portable across sqlite,
    PostgreSQL and friends.
    """
    attrs = list(cfd.lhs) + [a for a in cfd.rhs if a not in cfd.lhs]
    rows: List[str] = []
    for tp in cfd.tableau:
        cells = []
        for a in attrs:
            v = tp.get(a)
            cells.append("NULL" if v is UNNAMED else _sql_literal(v))
        rows.append("(" + ", ".join(cells) + ")")
    columns = ", ".join(f"p_{a}" for a in attrs)
    return (
        f"WITH {_TABLEAU_ALIAS}({columns}) AS (VALUES {', '.join(rows)})"
    )


def _match_condition(table: str, attrs: PyTuple[str, ...]) -> str:
    """t[attrs] ≍ tp[attrs]: each position equals the pattern or pattern is NULL."""
    clauses = [
        f"({_TABLEAU_ALIAS}.p_{a} IS NULL OR {table}.{a} = {_TABLEAU_ALIAS}.p_{a})"
        for a in attrs
    ]
    return " AND ".join(clauses) if clauses else "1=1"


def single_tuple_sql(cfd: CFD) -> str:
    """Query Q1 of [36]: tuples matching tp[X] whose Y clashes a constant."""
    table = cfd.relation_name
    mismatch = " OR ".join(
        f"({_TABLEAU_ALIAS}.p_{a} IS NOT NULL AND {table}.{a} <> {_TABLEAU_ALIAS}.p_{a})"
        for a in cfd.rhs
    )
    return (
        f"{tableau_values_sql(cfd)} "
        f"SELECT {table}.* FROM {table}, {_TABLEAU_ALIAS} "
        f"WHERE {_match_condition(table, cfd.lhs)} AND ({mismatch})"
    )


def pair_sql(cfd: CFD) -> str:
    """Query Q2 of [36]: X-groups (within a pattern) with > 1 distinct Y value."""
    table = cfd.relation_name
    group_cols = ", ".join(f"{table}.{a}" for a in cfd.lhs) or "1"
    distinct_checks = " OR ".join(
        f"COUNT(DISTINCT {table}.{a}) > 1" for a in cfd.rhs
    )
    select_cols = group_cols if cfd.lhs else "COUNT(*)"
    return (
        f"{tableau_values_sql(cfd)} "
        f"SELECT {select_cols} FROM {table}, {_TABLEAU_ALIAS} "
        f"WHERE {_match_condition(table, cfd.lhs)} "
        f"GROUP BY {group_cols} HAVING {distinct_checks}"
    )


def violation_sql(cfd: CFD) -> PyTuple[str, str]:
    """The (single-tuple, pair) query pair detecting all violations of ϕ."""
    return single_tuple_sql(cfd), pair_sql(cfd)
