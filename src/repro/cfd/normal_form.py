"""CFD normal form.

The analyses of [36] work on CFDs in *normal form*: a single attribute on
the right-hand side and a single pattern row.  This module provides the
equivalence-preserving conversions both ways:

* :func:`normalize` — split every CFD into single-RHS, single-row CFDs;
* :func:`denormalize` — regroup rows that share an embedded FD into one
  pattern tableau (the compact presentation of Figure 2, where ϕ2 carries
  f1, cfd2 and cfd3 in one tableau);
* :func:`classify` — partition a CFD set into constant CFDs (fully
  constant patterns), variable CFDs (no RHS constants) and mixed ones,
  the split that drives the detection/repair strategies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple as PyTuple

from repro.cfd.model import CFD, PatternTableau, PatternTuple

__all__ = ["normalize", "denormalize", "classify", "equivalent_presentation"]


def normalize(cfds: Sequence[CFD]) -> List[CFD]:
    """Split into single-RHS-attribute, single-pattern-row CFDs."""
    out: List[CFD] = []
    for cfd in cfds:
        for row_index, tp in enumerate(cfd.tableau):
            for attr in cfd.rhs:
                attrs = tuple(cfd.lhs) + ((attr,) if attr not in cfd.lhs else ())
                row = {a: tp.get(a) for a in attrs}
                out.append(
                    CFD(
                        cfd.relation_name,
                        cfd.lhs,
                        [attr],
                        PatternTableau(attrs, [row]),
                        name=f"{cfd.name}#r{row_index}:{attr}",
                    )
                )
    return out


def denormalize(cfds: Sequence[CFD]) -> List[CFD]:
    """Group single-row CFDs sharing (relation, LHS, RHS) into tableaux."""
    grouped: Dict[PyTuple, List[PatternTuple]] = {}
    order: List[PyTuple] = []
    for cfd in cfds:
        key = (cfd.relation_name, cfd.lhs, cfd.rhs)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].extend(cfd.tableau.rows)
    out: List[CFD] = []
    for key in order:
        relation, lhs, rhs = key
        attrs = tuple(lhs) + tuple(a for a in rhs if a not in lhs)
        # drop duplicate rows while preserving order
        seen: Dict[PatternTuple, None] = {}
        for row in grouped[key]:
            seen.setdefault(row, None)
        out.append(
            CFD(relation, lhs, rhs, PatternTableau(attrs, list(seen)))
        )
    return out


def classify(cfds: Sequence[CFD]) -> Dict[str, List[CFD]]:
    """Partition normalized CFDs into constant / variable / mixed."""
    result: Dict[str, List[CFD]] = {"constant": [], "variable": [], "mixed": []}
    for cfd in normalize(cfds):
        if cfd.is_constant():
            result["constant"].append(cfd)
        elif cfd.is_variable():
            result["variable"].append(cfd)
        else:
            result["mixed"].append(cfd)
    return result


def equivalent_presentation(
    schema, original: Sequence[CFD], transformed: Sequence[CFD]
) -> bool:
    """Check two CFD sets are logically equivalent (mutual implication)."""
    from repro.cfd.implication import cfd_implies

    return all(
        cfd_implies(schema, list(original), c) for c in transformed
    ) and all(cfd_implies(schema, list(transformed), c) for c in original)
