"""Command-line interface: detect, repair, discover, stream over CSV files.

Usage::

    python -m repro.cli detect  --schema schema.json --rules rules.json data.csv
    python -m repro.cli repair  --schema schema.json --rules rules.json \
                                --output clean.csv data.csv
    python -m repro.cli discover --schema schema.json --max-lhs 2 \
                                 --min-support 5 data.csv
    python -m repro.cli stream  --schema schema.json --rules rules.json \
                                --batches 10 --batch-size 100 data.csv

``detect`` prints one line per violation and exits nonzero when the data
is dirty, so it slots into shell pipelines and CI checks; ``repair``
writes the repaired relation as CSV and a summary to stderr; ``discover``
emits a rules JSON document on stdout; ``stream`` feeds seeded random edit
batches through the delta engine and prints one violation-delta line per
batch (``--verify`` cross-checks every batch against full re-detection).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Sequence

from repro.cfd.detect import detect_violations
from repro.cfd.discovery import discover_cfds
from repro.cfd.model import CFD
from repro.relational.csvio import dump_csv, load_csv
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema
from repro.repair.urepair import repair_cfds
from repro.cfd.model import fd_as_cfd
from repro.deps.fd import FD
from repro.rules_json import load_rules, load_schema, rules_to_list

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CFD-based data quality: detect, repair, discover",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="report dependency violations")
    detect.add_argument("data", help="CSV file (header row required)")
    detect.add_argument("--schema", required=True, help="schema JSON")
    detect.add_argument("--rules", required=True, help="rules JSON")
    detect.add_argument(
        "--summary-only", action="store_true", help="print only the summary line"
    )

    repair = sub.add_parser("repair", help="value-modification repair")
    repair.add_argument("data")
    repair.add_argument("--schema", required=True)
    repair.add_argument("--rules", required=True)
    repair.add_argument("--output", required=True, help="repaired CSV path")
    repair.add_argument(
        "--max-passes", type=int, default=25, help="heuristic pass cap"
    )

    discover = sub.add_parser("discover", help="profile CFDs from data")
    discover.add_argument("data")
    discover.add_argument("--schema", required=True)
    discover.add_argument("--max-lhs", type=int, default=2)
    discover.add_argument("--min-support", type=int, default=3)

    stream = sub.add_parser(
        "stream", help="feed random edit batches through the delta engine"
    )
    stream.add_argument("data")
    stream.add_argument("--schema", required=True)
    stream.add_argument("--rules", required=True)
    stream.add_argument("--batches", type=int, default=10)
    stream.add_argument("--batch-size", type=int, default=100)
    stream.add_argument("--seed", type=int, default=7)
    stream.add_argument(
        "--verify",
        action="store_true",
        help="cross-check every batch against full indexed re-detection",
    )

    return parser


def _load(args) -> tuple:
    schema = load_schema(args.schema)
    instance = load_csv(schema, args.data)
    db = DatabaseInstance(DatabaseSchema([schema]))
    for t in instance:
        db.relation(schema.name).add(t)
    return schema, db


def _cmd_detect(args) -> int:
    schema, db = _load(args)
    rules = load_rules(args.rules, schema)
    report = detect_violations(db, rules)
    if not args.summary_only:
        for violation in report.violations:
            print(violation.reason)
    print(report.summary())
    return 1 if report.total else 0


def _cmd_repair(args) -> int:
    schema, db = _load(args)
    rules = load_rules(args.rules, schema)
    cfds: List[CFD] = [
        rule if isinstance(rule, CFD) else fd_as_cfd(rule)
        for rule in rules
        if isinstance(rule, (CFD, FD))
    ]
    result = repair_cfds(db, cfds, max_passes=args.max_passes)
    dump_csv(result.repaired.relation(schema.name), args.output)
    print(
        f"{result.changed_cells()} cells changed, cost {result.cost:.3f}, "
        f"resolved={result.resolved}",
        file=sys.stderr,
    )
    return 0 if result.resolved else 2


def _cmd_discover(args) -> int:
    schema, db = _load(args)
    discovered = discover_cfds(
        db.relation(schema.name),
        max_lhs=args.max_lhs,
        min_support=args.min_support,
    )
    documents = rules_to_list([d.cfd for d in discovered])
    for doc, found in zip(documents, discovered):
        doc["support"] = found.support
        doc["kind"] = found.kind
    json.dump(documents, sys.stdout, indent=2, default=str)
    print()
    return 0


def _cmd_stream(args) -> int:
    from repro.engine.delta import DeltaEngine
    from repro.workloads.stream import StreamConfig, run_stream

    schema, db = _load(args)
    rules = load_rules(args.rules, schema)
    engine = DeltaEngine(db, rules)
    print(f"start: {engine.total_violations()} violations", file=sys.stderr)
    config = StreamConfig(
        n_batches=args.batches, batch_size=args.batch_size, seed=args.seed
    )
    report = run_stream(db, rules, config, engine=engine, verify=args.verify)
    for batch in report.batches:
        print(
            # ASCII only: this line goes to redirected stdout in pipelines,
            # where the locale encoding may not cover U+2212
            f"batch {batch.index}: {batch.edits} edits, "
            f"+{batch.added} -{batch.removed} violations, "
            f"{batch.total} total, {batch.seconds * 1e3:.2f} ms"
        )
    print(report.summary(), file=sys.stderr)
    return 1 if report.final_violations else 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "detect": _cmd_detect,
        "repair": _cmd_repair,
        "discover": _cmd_discover,
        "stream": _cmd_stream,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
