"""Command-line interface: detect, repair, discover, stream over CSV files.

Usage::

    python -m repro.cli detect  --schema schema.json --rules rules.json data.csv
    python -m repro.cli repair  --schema schema.json --rules rules.json \
                                --output clean.csv data.csv
    python -m repro.cli discover --schema schema.json --max-lhs 2 \
                                 --min-support 5 data.csv
    python -m repro.cli stream  --schema schema.json --rules rules.json \
                                --batches 10 --batch-size 100 data.csv

Every subcommand builds a :class:`repro.session.Session` from the files and
drives it; rules files may contain any constraint class registered in
:mod:`repro.registry` (FDs, CFDs, eCFDs, INDs, CINDs, denial constraints).
Multi-relation schemas pass one CSV per relation as ``relation=path``
positional arguments.

``detect`` prints one line per violation and exits nonzero when the data
is dirty, so it slots into shell pipelines and CI checks; ``repair``
writes the repaired relation as CSV and a summary to stderr; ``discover``
emits a rules JSON document on stdout; ``stream`` feeds seeded random edit
batches through the delta engine and prints one violation-delta line per
batch (``--verify`` cross-checks every batch against full re-detection).
``detect`` and ``stream`` take ``--format json`` for machine-readable
output on stdout.

``--shards N`` on ``detect``/``repair``/``stream`` runs the session on
the sharded parallel engine (:mod:`repro.engine.parallel`): detection
fans out over hash shards and the delta engine maintains shard-local
state.  Output is byte-identical for every shard count — ``stream
--format json`` omits wall-clock timings unless ``--timings`` is given,
so its document is deterministic too.

``serve`` runs the long-lived HTTP/JSON constraint service
(:mod:`repro.server`): many named warm sessions behind
create/detect/apply/repair/rules endpoints, with ``/healthz`` and
``/metrics`` for operations.  See ``docs/server.md``.

``soak`` drives a spawned (or ``--url``) server with seeded multi-tenant
load — Zipf-skewed traffic, bursty edit batches, eviction pressure and
SIGKILL crash/restart cycles — while byte-verifying every tenant's
served detect document against an offline replay
(:mod:`repro.workloads.soak`).  Exit 0 means zero byte divergences.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Mapping, Sequence, Union

from repro.relational.csvio import dump_csv
from repro.rules_json import rules_to_list
from repro.session import Session

__all__ = ["main", "build_parser"]


def _add_shards_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "hash-shard count for the parallel engine (default: the "
            "REPRO_DEFAULT_SHARDS environment override, else 1)"
        ),
    )


def _add_data_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "data",
        nargs="+",
        help=(
            "CSV file (header row required); for multi-relation schemas "
            "pass one relation=path argument per relation"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="dependency-based data quality: detect, repair, discover",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="report dependency violations")
    detect.add_argument("--schema", required=True, help="schema JSON")
    detect.add_argument("--rules", required=True, help="rules JSON")
    detect.add_argument(
        "--summary-only", action="store_true", help="print only the summary line"
    )
    detect.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json: one machine-readable document on stdout)",
    )
    detect.add_argument(
        "--executor",
        choices=("indexed", "parallel", "naive"),
        default=None,
        help=(
            "detection path (default: indexed, or parallel when --shards "
            "is given)"
        ),
    )
    _add_shards_argument(detect)
    _add_data_argument(detect)

    repair = sub.add_parser("repair", help="repair under a §5.1 model")
    repair.add_argument("--schema", required=True)
    repair.add_argument("--rules", required=True)
    repair.add_argument("--output", required=True, help="repaired CSV path")
    repair.add_argument(
        "--strategy",
        choices=("u", "x", "s"),
        default="u",
        help="repair model: u=value modification, x=deletions, s=symmetric diff",
    )
    repair.add_argument(
        "--relation",
        help="relation to write to --output (required for multi-relation schemas)",
    )
    repair.add_argument(
        "--max-passes", type=int, default=25, help="heuristic pass cap (u-repair)"
    )
    _add_shards_argument(repair)
    _add_data_argument(repair)

    discover = sub.add_parser("discover", help="profile CFDs from data")
    discover.add_argument("--schema", required=True)
    discover.add_argument("--relation", help="relation to profile (default: only one)")
    discover.add_argument("--max-lhs", type=int, default=2)
    discover.add_argument("--min-support", type=int, default=3)
    _add_data_argument(discover)

    serve = sub.add_parser(
        "serve", help="run the long-lived HTTP/JSON constraint service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port")
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        metavar="N",
        help="hosted warm sessions before LRU eviction kicks in",
    )
    serve.add_argument(
        "--data-root",
        default=None,
        metavar="DIR",
        help=(
            "directory server-side schema/rules/data paths resolve against "
            "(default: the working directory)"
        ),
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "make sessions durable: changeset WAL + snapshots under DIR, "
            "crash-safe recovery on restart (default: in-memory only)"
        ),
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "WAL records per session before a snapshot retires the log "
            "(default: 64; only meaningful with --state-dir)"
        ),
    )
    serve.add_argument(
        "--degraded-after",
        type=int,
        default=None,
        metavar="K",
        help=(
            "consecutive 5xx handler failures before a session is gated "
            "degraded (503 until a recovery probe succeeds; 0 disables; "
            "default: 5)"
        ),
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )
    serve.add_argument(
        "--legacy-threaded",
        action="store_true",
        help=(
            "serve with the pre-/v1 thread-per-request transport instead "
            "of the asyncio front end (kept for one release)"
        ),
    )

    soak = sub.add_parser(
        "soak",
        help=(
            "multi-tenant soak: seeded load over real HTTP with live "
            "byte-verification against offline replay"
        ),
    )
    soak.add_argument(
        "--smoke",
        action="store_true",
        help="the ~30s CI preset (16 tenants, 1 crash/restart cycle)",
    )
    soak.add_argument("--tenants", type=int, default=None, metavar="N")
    soak.add_argument("--ops", type=int, default=None, metavar="N")
    soak.add_argument("--seed", type=int, default=None)
    soak.add_argument("--workers", type=int, default=None, metavar="N")
    soak.add_argument(
        "--restarts",
        type=int,
        default=None,
        metavar="N",
        help="SIGKILL crash/restart cycles mid-run (default: 1)",
    )
    soak.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        metavar="N",
        help="server residency cap; small values force eviction churn",
    )
    soak.add_argument(
        "--verify-every",
        type=int,
        default=None,
        metavar="N",
        help="ops per tenant between online verification checkpoints",
    )
    soak.add_argument(
        "--degraded-after", type=int, default=None, metavar="K"
    )
    soak.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable state dir for the spawned server (default: a tempdir)",
    )
    soak.add_argument(
        "--url",
        default=None,
        help="soak an already-running server instead of spawning one",
    )
    soak.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write report.json, reproducer, diagnostics and a Prometheus "
        "scrape under DIR",
    )

    stream = sub.add_parser(
        "stream", help="feed random edit batches through the delta engine"
    )
    stream.add_argument("--schema", required=True)
    stream.add_argument("--rules", required=True)
    stream.add_argument("--batches", type=int, default=10)
    stream.add_argument("--batch-size", type=int, default=100)
    stream.add_argument("--seed", type=int, default=7)
    stream.add_argument(
        "--verify",
        action="store_true",
        help="cross-check every batch against full indexed re-detection",
    )
    stream.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json: one machine-readable document on stdout)",
    )
    stream.add_argument(
        "--timings",
        action="store_true",
        help=(
            "include per-batch wall-clock seconds in --format json output "
            "(omitted by default so the document is deterministic)"
        ),
    )
    _add_shards_argument(stream)
    _add_data_argument(stream)

    return parser


def _data_mapping(entries: Sequence[str]) -> Union[str, Mapping[str, str]]:
    """One bare path stays a path; ``relation=path`` entries become a map."""
    if len(entries) == 1 and "=" not in entries[0]:
        return entries[0]
    mapping: Dict[str, str] = {}
    for entry in entries:
        relation, sep, path = entry.partition("=")
        if not sep or not relation or not path:
            raise SystemExit(
                f"data argument {entry!r} is not of the form relation=path"
            )
        mapping[relation] = path
    return mapping


def _session(args, with_rules: bool = True) -> Session:
    shards = getattr(args, "shards", None)
    executor = getattr(args, "executor", None)
    if executor is None:
        # --shards alone opts the session into the parallel engine.
        executor = "parallel" if shards is not None else "indexed"
    return Session.from_files(
        args.schema,
        args.rules if with_rules else None,
        _data_mapping(args.data),
        executor=executor,
        shards=shards,
    )


def _cmd_detect(args) -> int:
    session = _session(args)
    report = session.detect()
    if args.format == "json":
        document = report.to_dict(include_violations=not args.summary_only)
        json.dump(document, sys.stdout, indent=2, default=str)
        print()
    else:
        if not args.summary_only:
            for violation in report.violations:
                print(violation.reason)
        print(report.summary())
    return 1 if report.total else 0


def _cmd_repair(args) -> int:
    session = _session(args)
    if args.relation is None and len(session.schema.relation_names) > 1:
        raise SystemExit(
            f"schema has relations {list(session.schema.relation_names)}; "
            "pass --relation to choose the one to write"
        )
    report = session.repair(strategy=args.strategy, max_passes=args.max_passes)
    relation = args.relation or session.schema.relation_names[0]
    dump_csv(report.repaired.relation(relation), args.output)
    unit = "cells" if args.strategy == "u" else "tuples"
    print(
        f"{report.changed} {unit} changed, cost {report.cost:.3f}, "
        f"resolved={report.resolved}",
        file=sys.stderr,
    )
    return 0 if report.resolved else 2


def _cmd_discover(args) -> int:
    session = _session(args, with_rules=False)
    discovered = session.discover(
        relation=args.relation,
        max_lhs=args.max_lhs,
        min_support=args.min_support,
    )
    documents = rules_to_list([d.cfd for d in discovered])
    for doc, found in zip(documents, discovered):
        doc["support"] = found.support
        doc["kind"] = found.kind
    json.dump(documents, sys.stdout, indent=2, default=str)
    print()
    return 0


def _cmd_stream(args) -> int:
    from repro.workloads.stream import StreamConfig

    session = _session(args)
    start = session.engine.total_violations()
    print(f"start: {start} violations", file=sys.stderr)
    config = StreamConfig(
        n_batches=args.batches, batch_size=args.batch_size, seed=args.seed
    )
    report = session.stream(config, verify=args.verify)
    if args.format == "json":
        json.dump(
            {
                "start_violations": start,
                # "seconds" is opt-in (--timings): without it the document
                # is deterministic — byte-identical across runs and shard
                # counts for a given seed.
                "batches": [
                    {
                        "batch": b.index,
                        "edits": b.edits,
                        "added": b.added,
                        "removed": b.removed,
                        "violations": b.total,
                        **({"seconds": b.seconds} if args.timings else {}),
                    }
                    for b in report.batches
                ],
                "final_violations": report.final_violations,
                "total_edits": report.total_edits,
                "verified": report.verified,
            },
            sys.stdout,
            indent=2,
        )
        print()
    else:
        for batch in report.batches:
            print(
                # ASCII only: this line goes to redirected stdout in pipelines,
                # where the locale encoding may not cover U+2212
                f"batch {batch.index}: {batch.edits} edits, "
                f"+{batch.added} -{batch.removed} violations, "
                f"{batch.total} total, {batch.seconds * 1e3:.2f} ms"
            )
    print(report.summary(), file=sys.stderr)
    return 1 if report.final_violations else 0


def _cmd_serve(args) -> int:
    from repro.server import (
        DEFAULT_DEGRADED_AFTER,
        DEFAULT_SNAPSHOT_EVERY,
        serve,
    )

    if args.snapshot_every is not None and args.state_dir is None:
        raise SystemExit("--snapshot-every requires --state-dir")
    return serve(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        data_root=args.data_root,
        state_dir=args.state_dir,
        snapshot_every=(
            args.snapshot_every
            if args.snapshot_every is not None
            else DEFAULT_SNAPSHOT_EVERY
        ),
        degraded_after=(
            args.degraded_after
            if args.degraded_after is not None
            else DEFAULT_DEGRADED_AFTER
        ),
        verbose=not args.quiet,
        legacy_threaded=args.legacy_threaded,
    )


def _cmd_soak(args) -> int:
    # all clock/randomness lives in repro.workloads.soak; the CLI module
    # stays deterministic (the static checker's REP001 scope)
    from repro.workloads.soak import run_from_args

    return run_from_args(args)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "detect": _cmd_detect,
        "repair": _cmd_repair,
        "discover": _cmd_discover,
        "stream": _cmd_stream,
        "serve": _cmd_serve,
        "soak": _cmd_soak,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
