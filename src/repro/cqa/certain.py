"""Consistent query answering by repair enumeration (paper §5.2).

The reference (exponential) semantics: a tuple is a *consistent answer* to
Q on D w.r.t. Σ iff it is in the answer to Q in **every** repair of D.
This module materializes the repair space (X-repairs; = S-repairs for
denial-class Σ) and intersects the query answers — intractable in general,
which is exactly why the rewriting of :mod:`repro.cqa.rewriting` matters;
the tests use this module as ground truth for the rewriting.
"""

from __future__ import annotations

from typing import Callable, Sequence, Set

from repro.deps.base import Dependency
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.query import Query
from repro.repair.xrepair import all_x_repairs

__all__ = ["certain_answers", "possible_answers"]

QueryLike = Query | Callable[[DatabaseInstance], RelationInstance]


def _answers(query: QueryLike, db: DatabaseInstance) -> Set[tuple]:
    result = query.evaluate(db) if isinstance(query, Query) else query(db)
    return {t.values() for t in result}


def certain_answers(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    query: QueryLike,
    limit: int = 100_000,
) -> Set[tuple]:
    """Tuples in Q's answer on *every* repair (the consistent answers)."""
    repairs = all_x_repairs(db, dependencies, limit)
    if not repairs:
        return set()
    answers = _answers(query, repairs[0])
    for repair in repairs[1:]:
        answers &= _answers(query, repair)
        if not answers:
            break
    return answers


def possible_answers(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    query: QueryLike,
    limit: int = 100_000,
) -> Set[tuple]:
    """Tuples in Q's answer on *some* repair (the possible answers)."""
    repairs = all_x_repairs(db, dependencies, limit)
    answers: Set[tuple] = set()
    for repair in repairs:
        answers |= _answers(query, repair)
    return answers
