"""Range-consistent answers to aggregate queries (paper §5.2 Remark).

"Consistent query answering has also been studied for aggregate queries
and FDs [6, 42]" — the classical semantics (Arenas et al., scalar
aggregation in inconsistent databases) returns the *range* [glb, lub] an
aggregate can take across all repairs.

For a primary key (repairs pick one tuple per key group independently),
the range is computable directly:

* MIN / MAX — combine per-group extreme choices;
* SUM      — sum of per-group minima … sum of per-group maxima;
* COUNT    — |groups| in every repair (constant), exposed for uniformity;
* AVG      — bounded via the extremes of SUM over the fixed COUNT.

All functions also accept a selection predicate; a group contributes a
mandatory/optional interval depending on whether every/some choice
passes the filter, which keeps the ranges tight and exact (validated
against repair enumeration in the tests).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple

__all__ = ["AggregateRange", "range_sum", "range_min", "range_max", "range_count"]

Predicate = Callable[[Tuple], bool]


class AggregateRange:
    """[glb, lub] of an aggregate across all repairs."""

    __slots__ = ("glb", "lub")

    def __init__(self, glb, lub):
        self.glb = glb
        self.lub = lub

    @property
    def is_consistent(self) -> bool:
        """True iff the aggregate has the same value in every repair."""
        return self.glb == self.lub

    def __iter__(self):
        return iter((self.glb, self.lub))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggregateRange)
            and (self.glb, self.lub) == (other.glb, other.lub)
        )

    def __repr__(self) -> str:
        return f"AggregateRange[{self.glb}, {self.lub}]"


def _groups(
    db: DatabaseInstance, relation: str, key: Sequence[str]
) -> List[List[Tuple]]:
    return list(db.relation(relation).group_by(list(key)).values())


def range_sum(
    db: DatabaseInstance,
    relation: str,
    key: Sequence[str],
    attribute: str,
    predicate: Predicate | None = None,
) -> AggregateRange:
    """Range of SUM(attribute) over σ_predicate(relation) across repairs."""
    predicate = predicate or (lambda t: True)
    glb = 0.0
    lub = 0.0
    for group in _groups(db, relation, key):
        contributions = [
            t[attribute] if predicate(t) else 0 for t in group
        ]
        glb += min(contributions)
        lub += max(contributions)
    return AggregateRange(glb, lub)


def range_count(
    db: DatabaseInstance,
    relation: str,
    key: Sequence[str],
    predicate: Predicate | None = None,
) -> AggregateRange:
    """Range of COUNT(*) over σ_predicate(relation) across repairs."""
    predicate = predicate or (lambda t: True)
    glb = 0
    lub = 0
    for group in _groups(db, relation, key):
        passing = sum(1 for t in group if predicate(t))
        if passing == len(group):
            glb += 1  # every choice passes
        if passing > 0:
            lub += 1  # some choice passes
    return AggregateRange(glb, lub)


def _range_extreme(
    db: DatabaseInstance,
    relation: str,
    key: Sequence[str],
    attribute: str,
    predicate: Predicate | None,
    find_max: bool,
) -> AggregateRange:
    predicate = predicate or (lambda t: True)
    pick = max if find_max else min
    anti = min if find_max else max
    # mandatory groups (every choice passes) constrain both bounds;
    # optional groups (some choice passes) can push the lub (for MAX)
    # or the glb (for MIN) but can also vanish entirely.
    mandatory_extremes: List = []
    optional_values: List = []
    for group in _groups(db, relation, key):
        passing = [t[attribute] for t in group if predicate(t)]
        if not passing:
            continue
        if len(passing) == len(group):
            mandatory_extremes.append((anti(passing), pick(passing)))
        else:
            optional_values.extend(passing)
    if not mandatory_extremes and not optional_values:
        return AggregateRange(None, None)
    if find_max:
        # glb: the adversary minimizes the maximum: optional groups drop
        # out, each mandatory group contributes its smallest value
        glb = max((low for low, _ in mandatory_extremes), default=None)
        lub_candidates = [high for _, high in mandatory_extremes] + optional_values
        lub = max(lub_candidates)
        if glb is None:
            # only optional groups: the max may not exist (all filtered);
            # glb is None (no guaranteed answer)
            return AggregateRange(None, lub)
        return AggregateRange(glb, lub)
    glb_candidates = [high for _, high in mandatory_extremes] + optional_values
    glb = min(glb_candidates)
    lub = min((low for low, _ in mandatory_extremes), default=None)
    if lub is None:
        return AggregateRange(glb, None)
    return AggregateRange(glb, lub)


def range_max(
    db: DatabaseInstance,
    relation: str,
    key: Sequence[str],
    attribute: str,
    predicate: Predicate | None = None,
) -> AggregateRange:
    """Range of MAX(attribute) across repairs (None bound = the aggregate
    may be undefined / unbounded-by-mandatory in some repair)."""
    return _range_extreme(db, relation, key, attribute, predicate, find_max=True)


def range_min(
    db: DatabaseInstance,
    relation: str,
    key: Sequence[str],
    attribute: str,
    predicate: Predicate | None = None,
) -> AggregateRange:
    """Range of MIN(attribute) across repairs."""
    return _range_extreme(db, relation, key, attribute, predicate, find_max=False)
