"""Consistent query answering (paper §5.2): exact repair-enumeration
semantics, the PTIME first-order rewriting for primary keys, and
range-consistent aggregate answers."""

from repro.cqa.aggregates import (
    AggregateRange,
    range_count,
    range_max,
    range_min,
    range_sum,
)
from repro.cqa.certain import certain_answers, possible_answers
from repro.cqa.rewriting import certain_sp, certain_spj

__all__ = [
    "AggregateRange",
    "certain_answers",
    "certain_sp",
    "certain_spj",
    "possible_answers",
    "range_count",
    "range_max",
    "range_min",
    "range_sum",
]
