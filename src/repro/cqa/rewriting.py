"""First-order query rewriting for CQA under primary keys (paper §5.2).

Theorem 5.2 collects the tractable islands of consistent query answering;
the PTIME results "are mostly developed by following a query rewriting
approach proposed in [7]", culminating in Fuxman–Miller's class Ctree [43].
This module implements the rewriting for the two shapes the benchmarks and
tests exercise, over **primary keys** (one key per relation; repairs pick
one tuple per key group):

* :func:`certain_sp` — select–project queries over a single key-violating
  relation: w is a certain answer iff some key group g exists whose
  *every* tuple satisfies the selection and projects to w;

* :func:`certain_spj` — the Ctree join shape π_W σ_cond (R1 ⋈ R2) where
  the join is *full non-key-to-key* (R1's foreign-key attributes cover
  R2's entire key, condition (c) of Ctree): w is certain iff some R1 key
  group g exists such that every t1 ∈ g satisfies its local condition,
  its R2 group (keyed by t1's fk values) is nonempty, and every t2 there
  satisfies the join-level condition and projects (with t1) to w.

Both run in polynomial (essentially linear) time; the test-suite validates
them against exhaustive repair enumeration on random instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Set, Tuple as PyTuple

from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import Condition, TrueCondition
from repro.relational.tuples import Tuple

__all__ = ["certain_sp", "certain_spj"]


def _groups(db: DatabaseInstance, relation: str, key: Sequence[str]) -> Dict[tuple, List[Tuple]]:
    return db.relation(relation).group_by(list(key))


def certain_sp(
    db: DatabaseInstance,
    relation: str,
    key: Sequence[str],
    projection: Sequence[str],
    condition: Condition | None = None,
) -> Set[tuple]:
    """Certain answers to π_projection σ_condition (relation) under the
    primary key ``key`` — the rewritten (PTIME) evaluation."""
    condition = condition or TrueCondition()
    answers: Set[tuple] = set()
    for group in _groups(db, relation, key).values():
        # every tuple of the group must pass the selection and agree on the
        # projection; otherwise some repair avoids the answer
        first = group[0]
        candidate = first[list(projection)]
        if all(
            condition.evaluate(t.as_dict()) and t[list(projection)] == candidate
            for t in group
        ):
            answers.add(candidate)
    return answers


def certain_spj(
    db: DatabaseInstance,
    left_relation: str,
    left_key: Sequence[str],
    right_relation: str,
    right_key: Sequence[str],
    join: Sequence[PyTuple[str, str]],
    projection: Sequence[PyTuple[str, str]],
    condition: Callable[[Tuple, Tuple], bool] | None = None,
) -> Set[tuple]:
    """Certain answers to the Ctree join query

        π_projection σ_condition (R1 ⋈_{R1.a = R2.b, ...} R2)

    under primary keys on both relations.  ``join`` lists (R1-attr, R2-attr)
    pairs and must cover R2's entire key (the Ctree "full non-key-to-key
    join" requirement — a ValueError otherwise).  ``projection`` entries are
    ("L", attr) / ("R", attr).  ``condition`` is an arbitrary boolean on the
    joined pair (evaluated tuple-wise).
    """
    join_right = [b for _, b in join]
    if set(join_right) != set(right_key):
        raise ValueError(
            "Ctree requires the join to cover the right relation's entire key: "
            f"join targets {sorted(set(join_right))} vs key {sorted(set(right_key))}"
        )
    condition = condition or (lambda t1, t2: True)
    right_groups = _groups(db, right_relation, right_key)
    # re-key right groups by the join attribute order
    key_position = {attr: i for i, attr in enumerate(right_key)}
    answers: Set[tuple] = set()

    def project(t1: Tuple, t2: Tuple) -> tuple:
        out = []
        for side, attr in projection:
            out.append(t1[attr] if side == "L" else t2[attr])
        return tuple(out)

    for group in _groups(db, left_relation, left_key).values():
        group_answers: Set[tuple] | None = None
        ok = True
        for t1 in group:
            fk = tuple(t1[a] for a, _ in join)
            # reorder fk to the right key's canonical order
            rekeyed = tuple(
                fk[[b for _, b in join].index(attr)] for attr in right_key
            )
            partner_group = right_groups.get(rekeyed)
            if not partner_group:
                ok = False
                break
            t1_answers: Set[tuple] = set()
            for t2 in partner_group:
                if not condition(t1, t2):
                    ok = False
                    break
                t1_answers.add(project(t1, t2))
            if not ok:
                break
            if len(t1_answers) != 1:
                # different repairs of R2's group give different outputs
                ok = False
                break
            group_answers = (
                t1_answers
                if group_answers is None
                else group_answers & t1_answers
            )
            if not group_answers:
                ok = False
                break
        if ok and group_answers:
            answers |= group_answers
    return answers
