"""A chase procedure for CINDs.

The implication problem for CINDs is EXPTIME-complete in general and
PSPACE-complete without finite-domain attributes (Theorems 4.2/4.3), so an
unbounded exact procedure is out of reach; the classical *chase* gives an
exact procedure whenever it terminates (e.g. for acyclic CINDs) and a
bounded semi-decision otherwise.

The chase works on a symbolic database whose cells are either constants
(from pattern tableaux) or labelled nulls — fresh values pairwise distinct
and distinct from every constant, which is the canonical choice for
counterexample construction in the absence of finite-domain attributes.
Starting from a seed tuple, every applicable CIND that lacks a witness adds
one, until fixpoint or until ``max_steps`` new tuples have been created.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.cind.model import CIND
from repro.errors import AnalysisBoundExceeded

__all__ = ["LabelledNull", "ChaseState", "chase"]


class LabelledNull:
    """A labelled null: a placeholder value distinct from all constants and
    from every other null with a different label."""

    __slots__ = ("label",)

    def __init__(self, label: int):
        self.label = label

    def __repr__(self) -> str:
        return f"⊥{self.label}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelledNull) and self.label == other.label

    def __hash__(self) -> int:
        return hash(("LabelledNull", self.label))


class ChaseState:
    """Symbolic database: relation name → list of attr→value dicts."""

    def __init__(self) -> None:
        self.relations: Dict[str, List[Dict[str, Any]]] = {}
        self._null_counter = itertools.count()

    def fresh_null(self) -> LabelledNull:
        return LabelledNull(next(self._null_counter))

    def add_tuple(self, relation: str, values: Mapping[str, Any]) -> Dict[str, Any]:
        row = dict(values)
        self.relations.setdefault(relation, []).append(row)
        return row

    def tuples(self, relation: str) -> List[Dict[str, Any]]:
        return self.relations.get(relation, [])

    def total_tuples(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{r}:{len(rows)}" for r, rows in self.relations.items())
        return f"ChaseState({inner})"


def _find_witness(
    state: ChaseState, cind: CIND, row: Mapping[str, Any], source: Mapping[str, Any]
) -> Optional[Dict[str, Any]]:
    rhs_pat = cind.rhs_pattern(row)
    wanted = tuple(source[a] for a in cind.lhs_attrs)
    for candidate in state.tuples(cind.rhs_relation):
        if tuple(candidate[a] for a in cind.rhs_attrs) != wanted:
            continue
        if all(candidate[a] == v for a, v in rhs_pat.items()):
            return dict(candidate)
    return None


def _applicable(cind: CIND, row: Mapping[str, Any], source: Mapping[str, Any]) -> bool:
    """Does the source tuple match the row's Xp pattern?  Labelled nulls do
    not match constants (the canonical fresh-value reading)."""
    return all(source.get(a) == v for a, v in cind.lhs_pattern(row).items())


def chase(
    state: ChaseState,
    cinds: Sequence[CIND],
    schemas: Mapping[str, Sequence[str]],
    max_steps: int = 10_000,
) -> ChaseState:
    """Run the CIND chase to fixpoint (mutates and returns ``state``).

    ``schemas`` maps relation name → attribute names, so newly created
    witnesses can be padded with fresh nulls on unconstrained attributes.
    Raises :class:`AnalysisBoundExceeded` after ``max_steps`` additions —
    cyclic CINDs may chase forever (the source of the PSPACE/EXPTIME lower
    bounds).
    """
    steps = 0
    changed = True
    while changed:
        changed = False
        for cind in cinds:
            for row in cind.tableau:
                # iterate over a snapshot: the chase may add to this relation
                for source in list(state.tuples(cind.lhs_relation)):
                    if not _applicable(cind, row, source):
                        continue
                    if _find_witness(state, cind, row, source) is not None:
                        continue
                    steps += 1
                    if steps > max_steps:
                        raise AnalysisBoundExceeded(
                            f"CIND chase exceeded {max_steps} steps; "
                            "the dependency set is likely cyclic"
                        )
                    witness: Dict[str, Any] = {}
                    for attr in schemas[cind.rhs_relation]:
                        witness[attr] = state.fresh_null()
                    for src_attr, dst_attr in zip(cind.lhs_attrs, cind.rhs_attrs):
                        witness[dst_attr] = source[src_attr]
                    for attr, value in cind.rhs_pattern(row).items():
                        witness[attr] = value
                    state.add_tuple(cind.rhs_relation, witness)
                    changed = True
    return state
