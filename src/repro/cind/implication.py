"""CIND implication via the chase (paper §4.1, Theorems 4.2/4.3/4.5).

To decide Σ ⊨ ψ for ψ = (R1[X; Xp] ⊆ R2[Y; Yp], tp):

1. seed a symbolic database with one R1 tuple t1 whose Xp attributes carry
   tp's constants, with pairwise-distinct labelled nulls elsewhere;
2. chase with Σ to fixpoint;
3. Σ ⊨ ψ (for this row) iff the fixpoint contains an R2 witness t2 with
   t1[X] = t2[Y] and t2[Yp] = tp[Yp].  Repeat per tableau row.

With labelled nulls kept distinct from all constants this is the canonical
counterexample construction, exact in the absence of finite-domain
attributes (the PSPACE case of Theorem 4.3; the chase bound surfaces the
EXPTIME/PSPACE cost).  With finite-domain attributes the answer "implied"
is always sound; "not implied" is sound unless a finite domain is so small
that the fresh-null seed is not realizable — callers can check
``seed_realizable`` for that corner.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.cind.chase import ChaseState, chase
from repro.cind.model import CIND
from repro.relational.schema import DatabaseSchema

__all__ = ["cind_implies", "seed_realizable", "consistency_is_trivial"]


def consistency_is_trivial() -> bool:
    """Theorem 4.1: any set of CINDs alone is always consistent (O(1)).

    The witness construction: chase a single seed tuple; the chase only
    *adds* tuples and never clashes (CINDs have no equality conclusions),
    so some satisfying nonempty instance always exists.  Exposed as a
    function so the Table-1 benchmark has a measurable O(1) row.
    """
    return True


def seed_realizable(db_schema: DatabaseSchema, cind: CIND) -> bool:
    """True iff every non-pattern attribute of ψ's LHS relation admits a
    value outside the constants of ψ (always true for infinite domains)."""
    schema = db_schema.relation(cind.lhs_relation)
    for row in cind.tableau:
        pattern = cind.lhs_pattern(row)
        for attr in schema.attribute_names:
            if attr in pattern:
                continue
            domain = schema.domain(attr)
            if domain.is_finite and domain.size() < 1:
                return False
    return True


def cind_implies(
    db_schema: DatabaseSchema,
    sigma: Sequence[CIND],
    target: CIND,
    max_steps: int = 10_000,
) -> bool:
    """Decide Σ ⊨ ψ by the chase (exact without finite-domain attributes).

    Raises :class:`~repro.errors.AnalysisBoundExceeded` if the chase does
    not terminate within ``max_steps`` (cyclic Σ).
    """
    for cind in list(sigma) + [target]:
        cind.check_schema(db_schema)
    schemas: Dict[str, Sequence[str]] = {
        rel.name: rel.attribute_names for rel in db_schema
    }
    for row in target.tableau:
        state = ChaseState()
        seed: Dict[str, Any] = {}
        lhs_schema = db_schema.relation(target.lhs_relation)
        for attr in lhs_schema.attribute_names:
            seed[attr] = state.fresh_null()
        for attr, value in target.lhs_pattern(row).items():
            seed[attr] = value
        seeded = state.add_tuple(target.lhs_relation, seed)
        chase(state, sigma, schemas, max_steps=max_steps)
        wanted = tuple(seeded[a] for a in target.lhs_attrs)
        rhs_pattern = target.rhs_pattern(row)
        found = False
        for candidate in state.tuples(target.rhs_relation):
            if tuple(candidate[a] for a in target.rhs_attrs) != wanted:
                continue
            if all(candidate[a] == v for a, v in rhs_pattern.items()):
                found = True
                break
        if not found:
            return False
    return True
