"""Conditional inclusion dependencies (paper §2.2, §4.1): model, detection,
chase, implication, and the CFD+CIND interaction heuristics."""

from repro.cind.chase import ChaseState, LabelledNull, chase
from repro.cind.implication import (
    cind_implies,
    consistency_is_trivial,
    seed_realizable,
)
from repro.cind.interaction import (
    InteractionResult,
    Verdict,
    check_joint_consistency,
)
from repro.cind.model import CIND, ind_as_cind

__all__ = [
    "CIND",
    "ChaseState",
    "InteractionResult",
    "LabelledNull",
    "Verdict",
    "chase",
    "check_joint_consistency",
    "cind_implies",
    "consistency_is_trivial",
    "ind_as_cind",
    "seed_realizable",
]
