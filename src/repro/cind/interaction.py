"""CFDs and CINDs taken together (paper Theorems 4.1/4.2/4.4).

Consistency and implication for CFDs + CINDs jointly are *undecidable*, so
— exactly as the paper prescribes ("heuristic algorithms for checking
consistency of CFDs and CINDs taken together can be found in [20]") — this
module provides a bounded model search that returns a three-valued verdict:

* ``CONSISTENT``   — a concrete nonempty instance satisfying all the CFDs
  and CINDs was constructed (a certificate; always sound);
* ``INCONSISTENT`` — the bounded search space was exhausted; sound whenever
  the CIND chase depth never hit the bound (reported in the verdict);
* ``UNKNOWN``      — the bound was hit, nothing can be concluded.

The search builds instances tuple-by-tuple: each relation's tuples draw
values from the exact CFD candidate sets (pattern constants + fresh), and
CIND obligations are discharged either by an existing tuple or by creating
a new one, depth-first with backtracking.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.cfd.consistency import attribute_constants, candidate_values
from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema

__all__ = ["Verdict", "InteractionResult", "check_joint_consistency"]


class Verdict(enum.Enum):
    """Three-valued outcome of the (undecidable) joint analysis."""

    CONSISTENT = "consistent"
    INCONSISTENT = "inconsistent"
    UNKNOWN = "unknown"


class InteractionResult:
    """Outcome of the joint CFD+CIND consistency check."""

    def __init__(
        self,
        verdict: Verdict,
        witness: Optional[DatabaseInstance],
        explored: int,
        bound_hit: bool,
    ):
        self.verdict = verdict
        self.witness = witness
        self.explored = explored
        self.bound_hit = bound_hit

    def __repr__(self) -> str:
        return (
            f"InteractionResult({self.verdict.value}, explored={self.explored}, "
            f"bound_hit={self.bound_hit})"
        )


def _cfd_ok_single(assignment: Dict[str, Any], cfds: Sequence[CFD]) -> bool:
    for cfd in cfds:
        for tp in cfd.tableau:
            if all(
                tp.get(a) is UNNAMED or assignment[a] == tp.get(a)
                for a in cfd.lhs
            ):
                for a in cfd.rhs:
                    expected = tp.get(a)
                    if expected is not UNNAMED and assignment[a] != expected:
                        return False
    return True


def _cfd_ok_pair(
    t1: Dict[str, Any], t2: Dict[str, Any], cfds: Sequence[CFD]
) -> bool:
    for cfd in cfds:
        for tp in cfd.tableau:
            if all(t1[a] == t2[a] for a in cfd.lhs) and all(
                tp.get(a) is UNNAMED or t1[a] == tp.get(a) for a in cfd.lhs
            ):
                if any(t1[a] != t2[a] for a in cfd.rhs):
                    return False
    return True


class _Searcher:
    def __init__(
        self,
        db_schema: DatabaseSchema,
        cfds_by_rel: Dict[str, List[CFD]],
        cinds: Sequence[CIND],
        max_tuples: int,
        max_nodes: int,
    ):
        self.db_schema = db_schema
        self.cfds_by_rel = cfds_by_rel
        self.cinds = cinds
        self.max_tuples = max_tuples
        self.max_nodes = max_nodes
        self.explored = 0
        self.bound_hit = False
        # exact candidate sets per relation/attribute (CFD + CIND constants)
        self.candidates: Dict[str, Dict[str, List[Any]]] = {}
        for rel in db_schema:
            constants = attribute_constants(cfds_by_rel.get(rel.name, []))
            for cind in cinds:
                for row in cind.tableau:
                    if cind.lhs_relation == rel.name:
                        for a, v in cind.lhs_pattern(row).items():
                            constants.setdefault(a, set()).add(v)
                    if cind.rhs_relation == rel.name:
                        for a, v in cind.rhs_pattern(row).items():
                            constants.setdefault(a, set()).add(v)
            self.candidates[rel.name] = {
                a: candidate_values(rel, a, constants.get(a, set()), fresh_count=2)
                for a in rel.attribute_names
            }

    def _tuple_choices(
        self, relation: str, pinned: Dict[str, Any]
    ) -> "itertools.product":
        rel = self.db_schema.relation(relation)
        options: List[List[Any]] = []
        for attr in rel.attribute_names:
            if attr in pinned:
                options.append([pinned[attr]])
            else:
                options.append(self.candidates[relation][attr])
        return itertools.product(*options)

    def _open_obligation(
        self, state: Dict[str, List[Dict[str, Any]]]
    ) -> Optional[PyTuple[CIND, Dict[str, Any], Dict[str, Any]]]:
        for cind in self.cinds:
            for row in cind.tableau:
                lhs_pat = cind.lhs_pattern(row)
                rhs_pat = cind.rhs_pattern(row)
                for t1 in state.get(cind.lhs_relation, []):
                    if not all(t1[a] == v for a, v in lhs_pat.items()):
                        continue
                    satisfied = False
                    for t2 in state.get(cind.rhs_relation, []):
                        if tuple(t2[a] for a in cind.rhs_attrs) == tuple(
                            t1[a] for a in cind.lhs_attrs
                        ) and all(t2[a] == v for a, v in rhs_pat.items()):
                            satisfied = True
                            break
                    if not satisfied:
                        return cind, dict(row), t1
        return None

    def _consistent_so_far(self, state: Dict[str, List[Dict[str, Any]]]) -> bool:
        for relation, rows in state.items():
            cfds = self.cfds_by_rel.get(relation, [])
            if not cfds:
                continue
            for row in rows:
                if not _cfd_ok_single(row, cfds):
                    return False
            for i, t1 in enumerate(rows):
                for t2 in rows[i + 1 :]:
                    if not _cfd_ok_pair(t1, t2, cfds) or not _cfd_ok_pair(
                        t2, t1, cfds
                    ):
                        return False
        return True

    def search(self, state: Dict[str, List[Dict[str, Any]]]) -> Optional[Dict]:
        self.explored += 1
        if self.explored > self.max_nodes:
            self.bound_hit = True
            return None
        if not self._consistent_so_far(state):
            return None
        obligation = self._open_obligation(state)
        if obligation is None:
            return state
        cind, row, t1 = obligation
        total = sum(len(rows) for rows in state.values())
        if total >= self.max_tuples:
            self.bound_hit = True
            return None
        pinned: Dict[str, Any] = dict(cind.rhs_pattern(row))
        for src, dst in zip(cind.lhs_attrs, cind.rhs_attrs):
            if dst in pinned and pinned[dst] != t1[src]:
                return None  # pattern clashes with the copied values
            pinned[dst] = t1[src]
        for values in self._tuple_choices(cind.rhs_relation, pinned):
            rel = self.db_schema.relation(cind.rhs_relation)
            new_tuple = dict(zip(rel.attribute_names, values))
            state.setdefault(cind.rhs_relation, []).append(new_tuple)
            result = self.search(state)
            if result is not None:
                return result
            state[cind.rhs_relation].pop()
        return None


def check_joint_consistency(
    db_schema: DatabaseSchema,
    cfds: Sequence[CFD],
    cinds: Sequence[CIND],
    nonempty_relation: str | None = None,
    max_tuples: int = 12,
    max_nodes: int = 200_000,
) -> InteractionResult:
    """Bounded consistency check for CFDs + CINDs taken together.

    ``nonempty_relation`` names the relation required to be nonempty
    (defaults to the first relation some CFD or CIND mentions).
    """
    cfds_by_rel: Dict[str, List[CFD]] = {}
    for cfd in cfds:
        cfds_by_rel.setdefault(cfd.relation_name, []).append(cfd)
    if nonempty_relation is None:
        if cfds:
            nonempty_relation = cfds[0].relation_name
        elif cinds:
            nonempty_relation = cinds[0].lhs_relation
        else:
            nonempty_relation = db_schema.relation_names[0]
    searcher = _Searcher(db_schema, cfds_by_rel, cinds, max_tuples, max_nodes)
    rel = db_schema.relation(nonempty_relation)
    for values in searcher._tuple_choices(nonempty_relation, {}):
        seed = dict(zip(rel.attribute_names, values))
        state: Dict[str, List[Dict[str, Any]]] = {nonempty_relation: [seed]}
        result = searcher.search(state)
        if result is not None:
            witness = DatabaseInstance(db_schema)
            for relation, rows in result.items():
                for row in rows:
                    witness.relation(relation).add(row)
            return InteractionResult(
                Verdict.CONSISTENT, witness, searcher.explored, searcher.bound_hit
            )
    verdict = Verdict.UNKNOWN if searcher.bound_hit else Verdict.INCONSISTENT
    return InteractionResult(verdict, None, searcher.explored, searcher.bound_hit)
