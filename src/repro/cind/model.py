"""Conditional inclusion dependencies: syntax and semantics (paper §2.2).

A CIND ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp) embeds the IND R1[X] ⊆ R2[Y] and
restricts/extends it with pattern attributes: Xp selects which R1 tuples
the inclusion applies to, Yp forces constants on the matching R2 tuples.
Pattern tableau cells are constants only (no '_'; wildcarding an attribute
is expressed by leaving it out of Xp/Yp).

    (D1, D2) ⊨ ψ  iff  for each tp ∈ Tp and t1 ∈ D1 with t1[Xp] = tp[Xp]
                       there is t2 ∈ D2 with t1[X] = t2[Y] and
                       t2[Yp] = tp[Yp].
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple as PyTuple

from repro.deps.base import Dependency, Violation
from repro.deps.ind import IND
from repro.engine.indexes import key_getter
from repro.errors import DependencyError
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema

__all__ = ["CIND", "ind_as_cind"]


class CIND(Dependency):
    """ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp)."""

    def __init__(
        self,
        lhs_relation: str,
        lhs_attrs: Sequence[str],
        rhs_relation: str,
        rhs_attrs: Sequence[str],
        lhs_pattern_attrs: Sequence[str] = (),
        rhs_pattern_attrs: Sequence[str] = (),
        tableau: Iterable[Mapping[str, Any]] = ({},),
        name: str | None = None,
    ):
        if len(lhs_attrs) != len(rhs_attrs):
            raise DependencyError(
                "CIND embedded-IND attribute lists must have equal length"
            )
        if not lhs_attrs:
            raise DependencyError("CIND embedded IND must be non-empty")
        self.lhs_relation = lhs_relation
        self.rhs_relation = rhs_relation
        self.lhs_attrs: PyTuple[str, ...] = tuple(lhs_attrs)
        self.rhs_attrs: PyTuple[str, ...] = tuple(rhs_attrs)
        self.lhs_pattern_attrs: PyTuple[str, ...] = tuple(lhs_pattern_attrs)
        self.rhs_pattern_attrs: PyTuple[str, ...] = tuple(rhs_pattern_attrs)
        overlap = set(self.lhs_attrs) & set(self.lhs_pattern_attrs)
        if overlap:
            raise DependencyError(
                f"attributes {sorted(overlap)} appear in both X and Xp"
            )
        overlap = set(self.rhs_attrs) & set(self.rhs_pattern_attrs)
        if overlap:
            raise DependencyError(
                f"attributes {sorted(overlap)} appear in both Y and Yp"
            )
        rows: List[Dict[str, Any]] = []
        # Pattern rows address LHS pattern attributes by name and RHS pattern
        # attributes by name; if an attribute appears on both sides (the
        # paper's A^L/A^R), qualify as "L.attr" / "R.attr".
        for row in tableau:
            normalized: Dict[str, Any] = {}
            for attr in self.lhs_pattern_attrs:
                key = attr if attr in row else f"L.{attr}"
                if key not in row:
                    raise DependencyError(
                        f"pattern row missing LHS pattern attribute {attr!r}"
                    )
                normalized[f"L.{attr}"] = row[key]
            for attr in self.rhs_pattern_attrs:
                key = attr if attr in row and attr not in self.lhs_pattern_attrs else f"R.{attr}"
                if key not in row:
                    raise DependencyError(
                        f"pattern row missing RHS pattern attribute {attr!r}"
                    )
                normalized[f"R.{attr}"] = row[key]
            rows.append(normalized)
        if not rows:
            raise DependencyError("CIND pattern tableau must be non-empty")
        self.tableau: PyTuple[Dict[str, Any], ...] = tuple(rows)
        self.name = name or (
            f"cind:{lhs_relation}{list(self.lhs_attrs)}⊆"
            f"{rhs_relation}{list(self.rhs_attrs)}"
        )

    @property
    def embedded_ind(self) -> IND:
        """The IND R1[X] ⊆ R2[Y] embedded in ψ."""
        return IND(self.lhs_relation, self.lhs_attrs, self.rhs_relation, self.rhs_attrs)

    def relations(self) -> PyTuple[str, ...]:
        if self.lhs_relation == self.rhs_relation:
            return (self.lhs_relation,)
        return (self.lhs_relation, self.rhs_relation)

    def check_schema(self, db_schema: DatabaseSchema) -> None:
        lhs = db_schema.relation(self.lhs_relation)
        rhs = db_schema.relation(self.rhs_relation)
        lhs.check_attributes(self.lhs_attrs)
        lhs.check_attributes(self.lhs_pattern_attrs)
        rhs.check_attributes(self.rhs_attrs)
        rhs.check_attributes(self.rhs_pattern_attrs)
        for row in self.tableau:
            for attr in self.lhs_pattern_attrs:
                lhs.domain(attr).validate(row[f"L.{attr}"])
            for attr in self.rhs_pattern_attrs:
                rhs.domain(attr).validate(row[f"R.{attr}"])

    def lhs_pattern(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        """Xp constants of one tableau row, keyed by plain attribute name."""
        return {a: row[f"L.{a}"] for a in self.lhs_pattern_attrs}

    def rhs_pattern(self, row: Mapping[str, Any]) -> Dict[str, Any]:
        """Yp constants of one tableau row, keyed by plain attribute name."""
        return {a: row[f"R.{a}"] for a in self.rhs_pattern_attrs}

    def violations(self, db: DatabaseInstance) -> Iterator[Violation]:
        source = db.relation(self.lhs_relation)
        target = db.relation(self.rhs_relation)
        # Target tuples indexed by Yp projection → set of Y projections,
        # built once per (relation, Yp, Y) signature and cached on the
        # relation, so it is shared across tableau rows *and* across every
        # CIND with the same signature (previously rebuilt per row).
        target_index = target.indexes.grouped_key_sets(
            self.rhs_pattern_attrs, self.rhs_attrs
        )
        empty: frozenset = frozenset()
        store = source.column_store
        layout = (
            source.indexes.group_layout(self.lhs_pattern_attrs)
            if store is not None and self.lhs_pattern_attrs
            else None
        )
        if store is not None and (layout is not None or not self.lhs_pattern_attrs):
            # Columnar: candidate rows come from the vectorized partition
            # (or all live rows for an unconditional LHS); membership is
            # decided once per distinct encoded X-key, and only violating
            # rows are materialized — in insertion order, as before.
            positions = [source.schema.index_of(a) for a in self.lhs_attrs]
            columns = [store.columns[p] for p in positions]
            decode = [store.decode[p] for p in positions]
            for row in self.tableau:
                lhs_pat = self.lhs_pattern(row)
                rhs_pat = self.rhs_pattern(row)
                matching_keys = target_index.get(
                    tuple(rhs_pat[a] for a in self.rhs_pattern_attrs), empty
                )
                if layout is not None:
                    rank = layout.rank_of_key(
                        tuple(lhs_pat[a] for a in self.lhs_pattern_attrs)
                    )
                    rows = layout.group_rows(rank) if rank is not None else ()
                else:
                    rows = store.iter_live_rows()
                verdicts: Dict[tuple, bool] = {}
                for r in rows:
                    codes = tuple(column[r] for column in columns)
                    bad = verdicts.get(codes)
                    if bad is None:
                        key = tuple(d[c] for d, c in zip(decode, codes))
                        bad = key not in matching_keys
                        verdicts[codes] = bad
                    if bad:
                        yield Violation(
                            self,
                            [(self.lhs_relation, store.tuple_at(r))],
                            f"{self.name}: no {self.rhs_relation} tuple matches "
                            f"on {list(self.rhs_attrs)} with pattern {rhs_pat}",
                        )
            return
        # Source tuples partitioned by Xp projection: each row touches only
        # the tuples it conditions on instead of scanning the relation.
        source_groups = (
            source.indexes.group_index(self.lhs_pattern_attrs)
            if self.lhs_pattern_attrs
            else None
        )
        key_of = key_getter(source.schema, self.lhs_attrs)
        for row in self.tableau:
            lhs_pat = self.lhs_pattern(row)
            rhs_pat = self.rhs_pattern(row)
            matching_keys = target_index.get(
                tuple(rhs_pat[a] for a in self.rhs_pattern_attrs), empty
            )
            candidates = (
                source_groups.get(
                    tuple(lhs_pat[a] for a in self.lhs_pattern_attrs), ()
                )
                if source_groups is not None
                else source
            )
            for t1 in candidates:
                if key_of(t1.values()) not in matching_keys:
                    yield Violation(
                        self,
                        [(self.lhs_relation, t1)],
                        f"{self.name}: no {self.rhs_relation} tuple matches on "
                        f"{list(self.rhs_attrs)} with pattern {rhs_pat}",
                    )

    def __repr__(self) -> str:
        return (
            f"CIND({self.lhs_relation}[{list(self.lhs_attrs)}; "
            f"{list(self.lhs_pattern_attrs)}] ⊆ {self.rhs_relation}"
            f"[{list(self.rhs_attrs)}; {list(self.rhs_pattern_attrs)}], "
            f"{len(self.tableau)} rows)"
        )

    def _key(self):
        return (
            self.lhs_relation,
            self.lhs_attrs,
            self.rhs_relation,
            self.rhs_attrs,
            self.lhs_pattern_attrs,
            self.rhs_pattern_attrs,
            tuple(frozenset(r.items()) for r in self.tableau),
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CIND) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


def ind_as_cind(ind: IND) -> CIND:
    """Embed a traditional IND as the CIND with empty pattern lists."""
    return CIND(
        ind.lhs_relation,
        ind.lhs_attrs,
        ind.rhs_relation,
        ind.rhs_attrs,
        tableau=({},),
        name=f"ind-as-cind:{ind!r}",
    )
