"""repro — conditional and matching dependencies for data quality.

A from-scratch implementation of the framework surveyed in

    Wenfei Fan. "Dependencies Revisited for Improving Data Quality."
    PODS 2008. DOI 10.1145/1376916.1376940

Subpackages
-----------
``repro.session``      the unified Session facade: detect/repair/discover/stream
``repro.server``       long-running HTTP/JSON service over warm named Sessions
``repro.client``       stdlib urllib client for the server's wire protocol
``repro.registry``     pluggable constraint registry: JSON codecs per class
``repro.relational``   typed domains, schemas, instances, algebra, queries
``repro.engine``       indexed execution: shared scans, batch planning, deltas,
                       sharded parallel detection (``repro.engine.parallel``)
``repro.deps``         FDs, INDs, denial constraints, Armstrong proofs
``repro.cfd``          conditional functional dependencies and eCFDs (§2.1/§2.3)
``repro.cind``         conditional inclusion dependencies (§2.2)
``repro.md``           matching dependencies and relative candidate keys (§3)
``repro.repair``       data repairing: X/S/U repairs, cost model (§5.1)
``repro.cqa``          consistent query answering (§5.2)
``repro.propagation``  CFD propagation through SPCU views (§4.1)
``repro.condensed``    condensed representations of repairs (§5.3)
``repro.workloads``    synthetic data generators with error injection
``repro.paper``        the paper's figures and examples as objects

The typical entry point is :class:`repro.session.Session` (also exported
here as ``repro.Session``), which owns an instance plus a rule set and
exposes the whole lifecycle over the indexed and delta engines.
"""

from repro.errors import (
    AnalysisBoundExceeded,
    DependencyError,
    DomainError,
    InconsistentDependenciesError,
    QueryError,
    RepairError,
    ReproError,
    SchemaError,
)

__version__ = "1.3.0"

__all__ = [
    "AnalysisBoundExceeded",
    "DependencyError",
    "DomainError",
    "InconsistentDependenciesError",
    "QueryError",
    "RepairError",
    "ReproError",
    "SchemaError",
    "Session",
    "__version__",
]


def __getattr__(name: str):
    # Lazy: Session pulls in the engine stack, which most type-level users
    # (schemas, implication analyses) never need at import time.
    if name == "Session":
        from repro.session import Session

        return Session
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
