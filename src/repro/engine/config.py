"""One executor/shards configuration schema for every layer.

Three layers accept the same two knobs — which detection executor a
session runs (``indexed`` / ``parallel`` / ``naive``) and how many hash
shards the parallel engine fans over:

* :class:`repro.session.Session` keyword arguments,
* the CLI flags ``--executor`` / ``--shards``,
* the wire protocol's ``{"engine": {"executor": ..., "shards": ...}}``
  object (session creation and ``detect`` bodies).

Historically each layer validated independently (the server accepted the
knobs as loose top-level body keys with its own error text).  This module
is the single source of truth: every layer funnels through
:func:`validate_executor` / :func:`validate_shards`, so an invalid value
produces the *same* error text whether it arrived as a Python kwarg, a
CLI flag or a wire field.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "EXECUTORS",
    "ENGINE_SCHEMA_HINT",
    "validate_executor",
    "validate_shards",
    "engine_config_from_document",
]

#: executor names accepted everywhere a detection path is selected
EXECUTORS: Tuple[str, ...] = ("indexed", "parallel", "naive")

#: the wire shape, quoted verbatim in rejection messages so a client that
#: sent the pre-/v1 loose keys learns the replacement schema from the error
ENGINE_SCHEMA_HINT = (
    '{"engine": {"executor": "indexed" | "parallel" | "naive", "shards": N}}'
)


def validate_executor(executor: Any) -> str:
    """Return ``executor`` when it names a known detection path.

    The error text is the canonical one shared by Session kwargs, CLI
    flags and wire fields.
    """
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    return str(executor)


def validate_shards(shards: Any) -> Optional[int]:
    """Return ``shards`` as an int >= 1 (``None`` passes through).

    ``bool`` is rejected explicitly: JSON ``true`` decodes to a Python
    bool, which *is* an int — accepting it would silently mean 1 shard.
    """
    if shards is None:
        return None
    if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
        raise ReproError(
            f"'shards' must be an integer >= 1, got {shards!r}"
        )
    return shards


def engine_config_from_document(
    document: Mapping[str, Any],
    *,
    default_executor: Optional[str] = None,
) -> Tuple[Optional[str], Optional[int]]:
    """Parse the wire ``{"engine": {...}}`` object out of a request body.

    Returns ``(executor, shards)`` with ``default_executor`` substituted
    when the object (or its ``executor`` key) is absent.  The pre-/v1
    loose top-level ``executor`` / ``shards`` keys are rejected with an
    error naming the replacement schema — silently ignoring them would
    let an old client believe its knobs took effect.
    """
    for legacy in ("executor", "shards"):
        if legacy in document:
            raise ReproError(
                f"top-level {legacy!r} was replaced by the engine object "
                f"in wire version 1; send {ENGINE_SCHEMA_HINT}"
            )
    engine = document.get("engine")
    if engine is None:
        return default_executor, None
    if not isinstance(engine, Mapping):
        raise ReproError(
            f"'engine' must be an object {ENGINE_SCHEMA_HINT}, "
            f"got {engine!r}"
        )
    unknown = sorted(set(engine) - {"executor", "shards"})
    if unknown:
        raise ReproError(
            f"unknown engine option(s) {unknown}; expected "
            f"{ENGINE_SCHEMA_HINT}"
        )
    executor: Optional[str] = engine.get("executor", default_executor)
    if executor is not None:
        executor = validate_executor(executor)
    return executor, validate_shards(engine.get("shards"))
