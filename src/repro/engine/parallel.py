"""Sharded parallel execution: detection fanned out over hash partitions.

The detection queries of the paper admit horizontal partitioning: every
FD/CFD/eCFD violation lives entirely inside one LHS-signature partition,
and every IND/CIND check for an inclusion key ``k`` only ever consults
target tuples whose key projection equals ``k``.  Hashing the signature's
key columns therefore decomposes detection into ``shards`` independent
jobs whose violation sets are disjoint and whose union is exactly the
serial result:

* **scan shards** — for each scan group, tuples are bucketed by
  ``stable_shard(t[signature])``, so each partition (group) lands wholly
  inside one shard and the compiled :class:`~repro.engine.scan.ScanTask`
  sweep runs per shard unchanged;
* **inclusion shards** — target tuples are bucketed by their Y projection
  and, per member dependency, source tuples by their X projection; a
  source key can only be provided by target tuples in the same shard, so
  each shard evaluates the member with its ordinary ``violations`` method
  over a shard-local instance;
* **non-decomposable work** — denial constraints (cross-shard tuple
  combinations), self-inclusions (source relation = target relation) and
  any fallback dependency run serially in the parent process.

On columnar relations (:mod:`repro.relational.columnar`) the work state
holds no ``Tuple`` objects at all: scan shards own sets of partition
*ranks* against the shared vectorized layout, inclusion shards own lists
of encoded row indices, and workers decode the rows they own straight
out of the fork-inherited column stores — only flagged/violating rows
are ever materialized, inside the worker.

Shard jobs are fanned out over a ``multiprocessing`` pool using the
``fork`` start method: the prepared work travels through the pool
initializer's ``initargs``, which fork passes by memory inheritance — so
workers (including respawned ones) receive tuples, schemas and compiled
tasks without pickling a byte of input; only the shard results travel
back, as plain value payloads rebound to the parent's dependency
objects.  Where ``fork`` is unavailable — or for ``shards=1`` — the same
jobs run through a deterministic in-process executor.

Determinism: shard assignment uses a salt-free CRC32 of the key's repr
(never the process-salted builtin ``hash``), and merged violations are
sorted by a canonical (dependency position, witnesses, reason) key, so
the report — including ``ViolationReport.to_dict()`` bytes — is identical
for every shard count and any worker scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import zlib
from typing import Any, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.deps.base import Dependency, Violation
from repro.engine.kernels import flagged_rows
from repro.engine.planner import DetectionPlan, plan_detection
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.tuples import Tuple

__all__ = [
    "ParallelExecutor",
    "ParallelStats",
    "default_pin_workers",
    "default_shards",
    "detect_violations_parallel",
    "resolve_shards",
    "stable_shard",
]

#: env var consulted when no explicit shard count is given (CI runs the
#: whole tier-1 suite once under REPRO_DEFAULT_SHARDS=2)
SHARDS_ENV = "REPRO_DEFAULT_SHARDS"

#: env var opting warm executors into the pinned worker pool (any
#: non-empty value other than "0"); the ``pin_workers`` kwarg wins
PIN_ENV = "REPRO_PIN_WORKERS"


def default_pin_workers() -> bool:
    """The process-wide pinning default (``REPRO_PIN_WORKERS`` or off)."""
    raw = os.environ.get(PIN_ENV, "").strip()
    return bool(raw) and raw != "0"


def default_shards() -> int:
    """The process-wide default shard count (``REPRO_DEFAULT_SHARDS`` or 1)."""
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def resolve_shards(shards: Optional[int]) -> int:
    """Explicit count wins; ``None`` falls back to :func:`default_shards`."""
    if shards is None:
        return default_shards()
    count = int(shards)
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return count


def _canonical_value(value: Any) -> str:
    """A text form congruent with equality: ``x == y`` ⇒ same string.

    Partition keys are dict keys, so Python's cross-type numeric equality
    applies: ``1 == 1.0 == True`` and ``0.0 == -0.0`` must all land in
    the same shard (``repr`` would split them).  Integral numbers
    normalize to their int repr, non-integral floats keep theirs; the
    type-tag prefixes keep e.g. the string ``"1"`` apart from the number.
    Unequal values mapping to one string is harmless — sharding only
    requires that *equal* keys agree.
    """
    if isinstance(value, (bool, int, float)):
        if isinstance(value, float) and not value.is_integer():
            return "f" + repr(value)  # also inf/nan (int() would raise)
        return "n" + repr(int(value))
    if isinstance(value, str):
        return "s" + value
    return "r" + repr(value)


def stable_shard(key: tuple, shards: int) -> int:
    """Deterministic shard of a partition/inclusion key.

    Uses CRC32 of a canonical encoding: unlike builtin ``hash`` this is
    not salted per process (PYTHONHASHSEED), so the parent and every pool
    worker — and every rerun — agree on the owner of each key; unlike raw
    ``repr`` the encoding respects dict-key equality across numeric types
    (see :func:`_canonical_value`).
    """
    if shards <= 1:
        return 0
    text = "\x1f".join(_canonical_value(v) for v in key)
    return zlib.crc32(text.encode("utf-8", "surrogatepass")) % shards


class ParallelStats:
    """What one parallel detection actually did, for tests and tuning."""

    __slots__ = ("shards", "pool_workers", "scan_jobs", "inclusion_jobs", "serial_deps")

    def __init__(self) -> None:
        self.shards = 0
        #: 0 when the deterministic in-process executor ran every job
        self.pool_workers = 0
        self.scan_jobs = 0
        self.inclusion_jobs = 0
        #: dependencies evaluated serially (fallback / self-inclusion)
        self.serial_deps = 0

    def __repr__(self) -> str:
        return (
            f"ParallelStats(shards={self.shards}, "
            f"pool_workers={self.pool_workers}, scan_jobs={self.scan_jobs}, "
            f"inclusion_jobs={self.inclusion_jobs}, "
            f"serial_deps={self.serial_deps})"
        )


# A violation crosses the process boundary in this neutral form:
# (dependency position, reason, ((relation, value-tuple), ...)).
_Payload = PyTuple[int, str, PyTuple[PyTuple[str, tuple], ...]]


def _payload(position: int, violation: Violation) -> _Payload:
    return (
        position,
        violation.reason,
        tuple((rel, t.values()) for rel, t in violation.tuples),
    )


def _payload_sort_key(payload: _Payload):
    position, reason, witnesses = payload
    # repr-based witness keys stay comparable across mixed value types.
    return (position, tuple((rel, repr(values)) for rel, values in witnesses), reason)


class _ScanJob:
    """One scan group prepared for sharded evaluation.

    Sharding assigns whole *partitions* (distinct signature keys from the
    relation's cached group index), not individual tuples: one CRC per
    distinct key instead of one per tuple, and workers receive ready-made
    partition maps — no per-shard regrouping.
    """

    __slots__ = ("shard_groups", "tasks")

    def __init__(self, shard_groups, tasks):
        #: per shard, {partition key: tuples} in first-seen key order
        self.shard_groups: List[dict] = shard_groups
        #: (dependency position, compiled ScanTask) in member order
        self.tasks = tasks


class _ColumnarScanJob:
    """One scan group prepared for sharded *columnar* evaluation.

    Nothing here holds a ``Tuple``: workers inherit the encoded column
    layout and the per-task flag vectors through fork and receive only
    the set of partition ranks they own.  Violating rows are materialized
    inside the worker, and only value payloads travel back.
    """

    __slots__ = ("layout", "shard_ranks", "items")

    def __init__(self, layout, shard_ranks, items):
        self.layout = layout
        #: per shard, the partition ranks it owns
        self.shard_ranks: List[set] = shard_ranks
        #: (dependency position, compiled ScanTask, TaskFlags) in member order
        self.items = items


class _InclusionJob:
    """One inclusion group prepared for sharded evaluation.

    Target tuples are bucketed by their Y-projection partition, and each
    member's source tuples by their X-projection partition — again one
    CRC per distinct key, via the cached group indexes.
    """

    __slots__ = ("target_name", "target_buckets", "members")

    def __init__(self, target_name, target_buckets, members):
        self.target_name = target_name
        #: per shard, target tuples whose Y projection hashes there
        self.target_buckets: List[List[Tuple]] = target_buckets
        #: (position, dependency, per-shard source tuple buckets)
        self.members = members


class _ColumnarInclusionJob:
    """One inclusion group prepared for sharded *columnar* evaluation.

    Buckets hold encoded row indices only; workers decode the rows they
    own straight out of the forked column stores into shard-local
    instances via ``extend_rows`` — no ``Tuple`` crosses the boundary.
    """

    __slots__ = ("target_name", "target_store", "target_rows", "members")

    def __init__(self, target_name, target_store, target_rows, members):
        self.target_name = target_name
        self.target_store = target_store
        #: per shard, target row indices whose Y projection hashes there
        self.target_rows: List[List[int]] = target_rows
        #: (position, dependency, source store, per-shard source row indices)
        self.members = members


class _WorkState:
    """Everything a shard job needs, inherited by pool workers via fork."""

    __slots__ = ("db", "shards", "scan_jobs", "inclusion_jobs")

    def __init__(self, db: DatabaseInstance, shards: int):
        self.db = db
        self.shards = shards
        self.scan_jobs: List[_ScanJob] = []
        self.inclusion_jobs: List[_InclusionJob] = []


def _build_work(
    db: DatabaseInstance, plan: DetectionPlan, shards: int
) -> PyTuple[_WorkState, List[PyTuple[int, Dependency]]]:
    """Bucket every decomposable group by shard; collect the serial rest."""
    work = _WorkState(db, shards)
    serial: List[PyTuple[int, Dependency]] = list(plan.fallback)

    for group in plan.scan_groups:
        relation = db.relation(group.relation_name)
        tasks = [
            (position, task)
            for position, dep in group.members
            for task in dep.scan_tasks(relation.schema)
        ]
        # Columnar relations shard whole partitions by *rank*: one CRC per
        # distinct key against the vectorized layout, and the work state
        # carries encoded columns plus precomputed flag vectors — never a
        # Tuple object.  Layout and flags are the same cached structures
        # the serial executor uses.
        layout = (
            relation.indexes.group_layout(group.signature)
            if all(
                task.columnar is not None and task.supports_incremental
                for _, task in tasks
            )
            else None
        )
        if layout is not None:
            buckets: List[set] = [set() for _ in range(shards)]
            for rank in range(layout.n_groups):
                buckets[stable_shard(layout.decoded_key(rank), shards)].add(rank)
            items = [
                (
                    position,
                    task,
                    relation.indexes.task_flags(group.signature, task.columnar),
                )
                for position, task in tasks
            ]
            work.scan_jobs.append(_ColumnarScanJob(layout, buckets, items))
            continue
        # The cached group index is shared with the serial executor, so
        # repeated detections pay the partitioning once.
        groups = relation.indexes.group_index(group.signature)
        shard_groups: List[dict] = [{} for _ in range(shards)]
        for key, tuples in groups.items():
            shard_groups[stable_shard(key, shards)][key] = tuples
        work.scan_jobs.append(_ScanJob(shard_groups, tasks))

    for group in plan.inclusion_groups:
        target = db.relation(group.relation_name)
        key_attrs = tuple(group.key_attrs)
        shardable = []
        for position, dep in group.members:
            if dep.lhs_relation == dep.rhs_relation:
                # A self-inclusion's source and target shard assignments
                # disagree tuple-by-tuple; evaluate it serially instead.
                serial.append((position, dep))
            else:
                shardable.append((position, dep, db.relation(dep.lhs_relation)))
        if not shardable:
            continue
        # Columnar relations ship encoded row indices: workers decode the
        # rows they own straight from the forked column stores.  One group
        # layout per (relation, attrs) — the same cached structure the
        # serial detectors use for their partition lookups.
        target_layout = (
            target.indexes.group_layout(key_attrs)
            if target.column_store is not None
            else None
        )
        if target_layout is not None and all(
            source.column_store is not None
            and source.indexes.group_layout(tuple(dep.lhs_attrs)) is not None
            for _, dep, source in shardable
        ):
            target_rows: List[List[int]] = [[] for _ in range(shards)]
            for rank in range(target_layout.n_groups):
                shard = stable_shard(target_layout.decoded_key(rank), shards)
                target_rows[shard].extend(target_layout.group_rows(rank))
            row_members = []
            for position, dep, source in shardable:
                source_layout = source.indexes.group_layout(tuple(dep.lhs_attrs))
                source_rows: List[List[int]] = [[] for _ in range(shards)]
                for rank in range(source_layout.n_groups):
                    shard = stable_shard(source_layout.decoded_key(rank), shards)
                    source_rows[shard].extend(source_layout.group_rows(rank))
                row_members.append((position, dep, source.column_store, source_rows))
            work.inclusion_jobs.append(
                _ColumnarInclusionJob(
                    group.relation_name, target.column_store, target_rows, row_members
                )
            )
            continue
        target_groups = target.indexes.group_index(key_attrs)
        target_buckets: List[List[Tuple]] = [[] for _ in range(shards)]
        for key, tuples in target_groups.items():
            target_buckets[stable_shard(key, shards)].extend(tuples)
        members = []
        for position, dep, source in shardable:
            source_groups = source.indexes.group_index(tuple(dep.lhs_attrs))
            source_buckets: List[List[Tuple]] = [[] for _ in range(shards)]
            for key, tuples in source_groups.items():
                source_buckets[stable_shard(key, shards)].extend(tuples)
            members.append((position, dep, source_buckets))
        work.inclusion_jobs.append(
            _InclusionJob(group.relation_name, target_buckets, members)
        )
    return work, serial


def _eval_columnar_scan_shard(job: _ColumnarScanJob, shard: int) -> List[_Payload]:
    """The executor's kernel path, restricted to one shard's ranks.

    Per-shard emission order differs from the serial executor's sweep
    order, which is irrelevant: the merged report is canonically sorted
    either way.  Only flagged rows (plus each flagged group's first
    tuple) are ever materialized, inside the worker.
    """
    layout = job.layout
    owned = job.shard_ranks[shard]
    tuple_at = layout.store.tuple_at
    payloads: List[_Payload] = []
    out: List[Violation] = []

    def emit(position, task, flags, rank: int) -> None:
        singles, pairs = flagged_rows(layout, flags, rank)
        for row in singles:
            task.single(tuple_at(row), out)
        if pairs:
            first = tuple_at(int(layout.rows_sorted[layout.starts[rank]]))
            for row in pairs:
                task.pair(first, tuple_at(row), out)
        payloads.extend(_payload(position, v) for v in out)
        out.clear()

    for position, task, flags in job.items:
        if task.lookup_key is not None:
            rank = layout.rank_of_key(task.lookup_key)
            if rank is not None and rank in owned:
                emit(position, task, flags, rank)
            continue
        for rank in flags.candidates.tolist():
            if rank not in owned:
                continue
            if int(layout.sizes[rank]) < 2 and task.skip_singletons:
                continue
            if task.matches(layout.decoded_key(rank)):
                emit(position, task, flags, rank)
    return payloads


def _eval_scan_shard(work: _WorkState, job_index: int, shard: int) -> List[_Payload]:
    """The executor's scan-group loop, restricted to one shard's partitions."""
    job = work.scan_jobs[job_index]
    if isinstance(job, _ColumnarScanJob):
        return _eval_columnar_scan_shard(job, shard)
    groups = job.shard_groups[shard]
    payloads: List[_Payload] = []
    out: List[Violation] = []
    sweep = []
    for position, task in job.tasks:
        if task.lookup_key is not None:
            group = groups.get(task.lookup_key)
            if group:
                task.evaluate(group, out)
                payloads.extend(_payload(position, v) for v in out)
                out.clear()
        else:
            sweep.append((position, task))
    if sweep:
        for key, group in groups.items():
            singleton = len(group) < 2
            for position, task in sweep:
                if singleton and task.skip_singletons:
                    continue
                if task.matches(key):
                    task.evaluate(group, out)
                    payloads.extend(_payload(position, v) for v in out)
                    out.clear()
    return payloads


def _eval_inclusion_shard(
    work: _WorkState, job_index: int, shard: int
) -> List[_Payload]:
    """Evaluate each member over a shard-local (source, target) instance.

    The shard instance holds the target tuples whose Y projection hashes
    here and the member's source tuples whose X projection hashes here;
    since an inclusion check on key ``k`` only consults target keys equal
    to ``k``, the member's own ``violations`` method is exact per shard.
    """
    job = work.inclusion_jobs[job_index]
    payloads: List[_Payload] = []
    # One shared target instance per (job, shard): members read it only
    # through its key indexes, so they reuse the same build.  Each member
    # still gets its own source instance — two members over one source
    # relation bucket *different* tuples (their X projections differ).
    if isinstance(job, _ColumnarInclusionJob):
        # Rows were validated when first interned in the parent store, so
        # the shard-local rebuild skips domain checks.
        target_store = job.target_store
        shared_target = RelationInstance(work.db.schema.relation(job.target_name))
        shared_target.extend_rows(
            (target_store.values_at(row) for row in job.target_rows[shard]),
            validate=False,
        )
        for position, dep, source_store, source_rows in job.members:
            shard_db = DatabaseInstance(work.db.schema)
            shard_db._relations[job.target_name] = shared_target
            shard_db.relation(dep.lhs_relation).extend_rows(
                (source_store.values_at(row) for row in source_rows[shard]),
                validate=False,
            )
            payloads.extend(_payload(position, v) for v in dep.violations(shard_db))
        return payloads
    shared_target = RelationInstance(
        work.db.schema.relation(job.target_name), job.target_buckets[shard]
    )
    for position, dep, source_buckets in job.members:
        shard_db = DatabaseInstance(work.db.schema)
        shard_db._relations[job.target_name] = shared_target
        source = shard_db.relation(dep.lhs_relation)
        for t in source_buckets[shard]:
            source.add(t)
        payloads.extend(_payload(position, v) for v in dep.violations(shard_db))
    return payloads


def _run_job(work: _WorkState, spec: PyTuple[str, int, int]) -> List[_Payload]:
    kind, job_index, shard = spec
    if kind == "scan":
        return _eval_scan_shard(work, job_index, shard)
    return _eval_inclusion_shard(work, job_index, shard)


#: per-worker work state, set by the pool initializer at (re)spawn time
_WORK: Optional[_WorkState] = None


def _init_worker(work: _WorkState) -> None:
    """Pool initializer: receives the work state through fork, no pickling.

    Going through ``initializer``/``initargs`` (rather than a parent
    global snapshotted at pool creation) matters for robustness: when the
    pool replaces a dead worker, the respawned process runs the
    initializer again and gets the same work state.
    """
    global _WORK
    _WORK = work


def _pool_run_job(spec: PyTuple[str, int, int]) -> List[_Payload]:
    if _WORK is None:
        raise RuntimeError("pool worker started without inherited work state")
    return _run_job(_WORK, spec)


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork (e.g. Windows)
        return None


def _pinned_worker_main(work: _WorkState, inbox, results) -> None:
    """Loop of one pinned worker: inherited work state, private inbox.

    Every job this worker will ever run arrived with the fork — repeated
    dispatches of the same shard hit memory this process has already
    touched (buckets, column stores, compiled tasks), which is the whole
    point of pinning.  ``None`` on the inbox is the shutdown signal.
    """
    while True:
        item = inbox.get()
        if item is None:
            return
        seq, spec = item
        try:
            results.put((seq, _run_job(work, spec), None))
        except BaseException as exc:  # surface, don't kill the worker
            results.put((seq, None, f"{type(exc).__name__}: {exc}"))


class _PinnedPool:
    """``n`` persistent fork workers with shard→worker pinning.

    Unlike ``multiprocessing.Pool`` (whose scheduler hands jobs to
    whichever worker is free), every shard ``s`` is dispatched to worker
    ``s % n`` on *every* detection: the shard's buckets — inherited once
    through fork — stay resident in exactly one worker's memory, so a
    warm server re-detecting an unchanged session touches hot pages
    instead of faulting the shard state into a different process each
    time.  Results come back on one shared queue tagged with a sequence
    number; the parent re-sorts, so scheduling never affects the report.
    """

    def __init__(self, context, workers: int, work: _WorkState) -> None:
        self.workers = workers
        self._results = context.Queue()
        self._inboxes = []
        self._procs = []
        for _ in range(workers):
            inbox = context.Queue()
            proc = context.Process(
                target=_pinned_worker_main,
                args=(work, inbox, self._results),
                daemon=True,
            )
            proc.start()
            self._inboxes.append(inbox)
            self._procs.append(proc)

    def run(self, specs: List[PyTuple[str, int, int]]) -> List[List[_Payload]]:
        """Dispatch every spec to its pinned worker; return results in
        spec order."""
        for seq, spec in enumerate(specs):
            shard = spec[2]
            self._inboxes[shard % self.workers].put((seq, spec))
        chunks: List[Optional[List[_Payload]]] = [None] * len(specs)
        for _ in range(len(specs)):
            while True:
                try:
                    seq, chunk, error = self._results.get(timeout=1.0)
                    break
                except queue.Empty:
                    dead = [p.pid for p in self._procs if not p.is_alive()]
                    if dead:
                        raise RuntimeError(
                            f"pinned worker(s) {dead} died mid-detection"
                        ) from None
            if error is not None:
                raise RuntimeError(f"pinned worker failed: {error}")
            chunks[seq] = chunk
        return chunks  # type: ignore[return-value]

    def close(self) -> None:
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except Exception:  # repro: allow[REP006] — best-effort
                pass  # shutdown: a worker's queue may already be gone
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for inbox in self._inboxes:
            inbox.close()
        self._results.close()


class ParallelExecutor:
    """Sharded batch detection with a process pool and an inline fallback.

    ``shards`` partitions the work (``None``: the ``REPRO_DEFAULT_SHARDS``
    default); ``workers`` sizes the pool (``None``: ``min(shards, cpu)``);
    ``use_pool`` forces the pool on/off (``None``: auto — pool only when
    ``shards > 1``, ``fork`` is available and more than one worker would
    run).  Whatever the knobs, the merged report is byte-identical.

    The executor is *warm*: the shard buckets, the serial results and the
    worker pool are cached against a fingerprint of (database identity,
    dependency identities, relation versions), so repeated ``detect``
    calls on an unchanged instance — the monitoring shape a server layer
    drives — pay only the fan-out and merge.  Any observed mutation
    rebuilds everything, including the pool (whose workers inherited the
    now-stale buckets).  Call :meth:`close` (or use the executor as a
    context manager) to release pool processes deterministically.
    """

    def __init__(
        self,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        use_pool: Optional[bool] = None,
        pin_workers: Optional[bool] = None,
    ):
        self.shards = resolve_shards(shards)
        if workers is not None and workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self.use_pool = use_pool
        #: shard→worker pinning (``None``: the REPRO_PIN_WORKERS default).
        #: Only meaningful when the pool runs at all; the report is
        #: byte-identical either way.
        self.pin_workers = (
            default_pin_workers() if pin_workers is None else bool(pin_workers)
        )
        self.stats = ParallelStats()
        self._fingerprint = None
        #: strong refs backing the fingerprint's id()s — while the cache
        #: is live these objects cannot be collected, so a recycled id can
        #: never alias a new database/dependency into a stale cache hit
        self._pinned: tuple = ()
        self._plan: Optional[DetectionPlan] = None
        self._work: Optional[_WorkState] = None
        self._specs: List[PyTuple[str, int, int]] = []
        self._serial_payloads: List[_Payload] = []
        self._serial_count = 0
        self._pool = None
        self._pool_size = 0

    def _pool_workers(self) -> int:
        if self.workers is not None:
            return self.workers
        return max(1, min(self.shards, os.cpu_count() or 1))

    def close(self) -> None:
        """Release the worker pool and drop all cached shard state."""
        if self._pool is not None:
            if isinstance(self._pool, _PinnedPool):
                self._pool.close()
            else:
                self._pool.terminate()
                self._pool.join()
            self._pool = None
        self._pool_size = 0
        self._fingerprint = None
        self._pinned = ()
        self._plan = None
        self._work = None
        self._specs = []
        self._serial_payloads = []
        self._serial_count = 0

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real contract
        try:
            if isinstance(self._pool, _PinnedPool):
                self._pool.close()
            elif self._pool is not None:
                self._pool.terminate()
        except Exception:  # repro: allow[REP006] — interpreter-teardown
            pass  # __del__ must never raise; close() is the real contract

    def _prepare(self, db: DatabaseInstance, dependencies: Sequence[Dependency]):
        fingerprint = (
            id(db),
            tuple(id(dep) for dep in dependencies),
            tuple((rel.schema.name, rel.version) for rel in db),
        )
        if fingerprint == self._fingerprint:
            return
        self.close()
        self._pinned = (db, tuple(dependencies))
        self._plan = plan_detection(dependencies)
        self._work, serial = _build_work(db, self._plan, self.shards)
        self._specs = [
            ("scan", index, shard)
            for index in range(len(self._work.scan_jobs))
            for shard in range(self.shards)
        ] + [
            ("inclusion", index, shard)
            for index in range(len(self._work.inclusion_jobs))
            for shard in range(self.shards)
        ]
        # Non-decomposable work runs in the parent over the full instance;
        # the fingerprint guards the cache exactly like the shard buckets.
        self._serial_count = len(serial)
        self._serial_payloads = [
            _payload(position, v)
            for position, dep in serial
            for v in dep.violations(db)
        ]
        context = _fork_context()
        pool_workers = self._pool_workers()
        pooled = (
            self.use_pool
            if self.use_pool is not None
            else (self.shards > 1 and pool_workers > 1 and context is not None)
        )
        if pooled and context is not None and self._specs:
            if self.pin_workers:
                # Persistent processes with shard→worker pinning: the
                # work state still travels by fork inheritance, and each
                # shard's buckets stay resident in one worker for the
                # lifetime of this fingerprint.
                self._pool = _PinnedPool(context, pool_workers, self._work)
            else:
                # With the fork start method, initargs reach workers by
                # memory inheritance — tuples, schemas and compiled task
                # closures are never pickled.
                self._pool = context.Pool(
                    processes=pool_workers,
                    initializer=_init_worker,
                    initargs=(self._work,),
                )
            self._pool_size = pool_workers
        self._fingerprint = fingerprint

    def prewarm(
        self, db: DatabaseInstance, dependencies: Iterable[Dependency]
    ) -> None:
        """Build shard buckets, serial results and the worker pool *now*.

        A server layer calls this right after a write commits so the
        first ``detect`` that follows pays only fan-out and merge — the
        same work :meth:`detect` would do lazily on its first call."""
        self._prepare(db, list(dependencies))

    def detect(self, db: DatabaseInstance, dependencies: Iterable[Dependency]):
        """Plan, shard, fan out, and merge one detection over ``db``."""
        from repro.cfd.detect import DetectionReport

        deps = list(dependencies)
        self._prepare(db, deps)
        assert self._plan is not None and self._work is not None

        stats = self.stats = ParallelStats()
        stats.shards = self.shards
        stats.scan_jobs = len(self._work.scan_jobs) * self.shards
        stats.inclusion_jobs = len(self._work.inclusion_jobs) * self.shards
        stats.serial_deps = self._serial_count

        payloads: List[_Payload] = list(self._serial_payloads)
        if isinstance(self._pool, _PinnedPool):
            for chunk in self._pool.run(self._specs):
                payloads.extend(chunk)
            stats.pool_workers = self._pool_size
        elif self._pool is not None:
            for chunk in self._pool.map(_pool_run_job, self._specs):
                payloads.extend(chunk)
            stats.pool_workers = self._pool_size
        else:
            work = self._work
            for spec in self._specs:
                payloads.extend(_run_job(work, spec))

        payloads.sort(key=_payload_sort_key)
        violations = [
            Violation(
                self._plan.dependencies[position],
                [
                    (rel, Tuple(db.schema.relation(rel), values, validate=False))
                    for rel, values in witnesses
                ],
                reason,
            )
            for position, reason, witnesses in payloads
        ]
        return DetectionReport(violations)


def detect_violations_parallel(
    db: DatabaseInstance,
    dependencies: Iterable[Dependency],
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    use_pool: Optional[bool] = None,
):
    """One-shot sharded parallel detection (see :class:`ParallelExecutor`).

    Builds a fresh executor, detects once and closes it — hold a
    :class:`ParallelExecutor` yourself to amortize shard buckets and pool
    startup across repeated detections.
    """
    with ParallelExecutor(shards, workers, use_pool) as executor:
        return executor.detect(db, dependencies)
