"""The delta engine: incremental violation maintenance under batched edits.

The repair loop of §5 is detect → edit → re-detect, and PR 1's engine only
re-checks *single-tuple* repair probes incrementally.  This module closes
the gap for arbitrary batched edits: a :class:`Changeset` (inserts, deletes
and cell updates) is applied to the versioned relation instances, and the
:class:`DeltaEngine` answers with a :class:`ViolationDelta` — exactly which
violations the batch created and which it resolved — while keeping the full
current violation set available at all times.

The maintenance strategy follows the same signature-sharing idea as the
batch executor, localized to what the delta touches:

* **FD/CFD/eCFD** — every violation (single-tuple or pair) lives entirely
  inside one LHS-signature partition, so the engine keeps its own partition
  map per scan group, patches it in place (preserving relation insertion
  order, so a rebuild would produce the identical structure), and
  re-evaluates the compiled scan tasks only on the partition keys the
  batch touched;
* **IND/CIND** — the engine keeps a reference-counted target key index per
  (target relation, Yp, Y) signature and, per dependency tableau row, the
  set of source tuples demanding each key.  A batch then resolves to key
  *gains* (count 0 → >0: violations of the demanders disappear) and key
  *losses* (count >0 → 0: the surviving demanders become violations), plus
  the added/removed source tuples themselves — all hash lookups;
* **anything else** (denial constraints, MDs, …) falls back to a targeted
  re-scan, and only when the batch touches one of the dependency's
  relations.

Every ``apply`` also hands back the ``undo`` changeset that reverts the
batch, which is what lets repair search trees (:mod:`repro.repair.xrepair`,
:mod:`repro.repair.srepair`) explore edits without copying the database.

With ``shards > 1`` the maintained state is split across hash shards of
the same signature-aligned partitioning the parallel executor uses
(:mod:`repro.engine.parallel`): every scan group keeps one
:class:`_ScanState` per shard holding the partition keys that hash there,
every inclusion group one key-filtered :class:`_InclusionState` per shard,
and ``apply`` routes each effective op to the shard owning its key before
patching.  The maintained violation multiset is identical for every shard
count; ``REPRO_DEFAULT_SHARDS`` sets the default.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple as PyTuple,
)

from repro.deps.base import Dependency, Violation
from repro.engine.indexes import key_getter
from repro.engine.parallel import resolve_shards, stable_shard
from repro.engine.planner import InclusionGroup, ScanGroup, plan_detection
from repro.errors import DependencyError, ReproError
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.tuples import Tuple

if TYPE_CHECKING:
    from repro.cfd.detect import DetectionReport

__all__ = [
    "Changeset",
    "DeltaEngine",
    "DeltaStats",
    "StaleEngineError",
    "ViolationDelta",
    "violation_multiset",
]


def violation_multiset(violations: Iterable[Violation]) -> Counter:
    """The canonical identity multiset for comparing violation reports.

    One definition shared by every divergence check — the differential
    test harness, ``run_stream(verify=True)``, and the incremental
    benchmark — so they all enforce the same invariant: the dependency
    *object* (``id``), plus the ordered witness tuples (so even
    pair-violation orientation must agree).
    """
    return Counter((id(v.dependency), v.tuples) for v in violations)


class StaleEngineError(ReproError):
    """The underlying database was mutated behind the engine's back.

    The delta engine maintains derived state (partitions, key counts,
    violation sets) that is only valid for the relation versions it last
    saw.  Route every mutation through :meth:`DeltaEngine.apply`, or call
    :meth:`DeltaEngine.refresh` after mutating the instances directly.
    """


class Changeset:
    """An ordered batch of edits against a database instance.

    Three operations, chainable::

        Changeset().insert("R", {"A": 1}).delete("R", t).update("R", t, B=2)

    An update is a *cell edit*: the target tuple is replaced by
    ``t.replace(**cells)``.  Application is sequential and follows set
    semantics — inserting a present tuple or deleting an absent one is a
    recorded no-op, so a changeset can be replayed safely.
    """

    __slots__ = ("_ops",)

    _INSERT, _DELETE, _UPDATE = "insert", "delete", "update"

    def __init__(self) -> None:
        self._ops: List[PyTuple[str, str, Any]] = []

    def insert(self, relation: str, row: Tuple | Mapping | Sequence) -> "Changeset":
        self._ops.append((self._INSERT, relation, row))
        return self

    def delete(self, relation: str, t: Tuple | Mapping | Sequence) -> "Changeset":
        self._ops.append((self._DELETE, relation, t))
        return self

    def update(
        self, relation: str, t: Tuple | Mapping | Sequence, **cells: Any
    ) -> "Changeset":
        if not cells:
            raise ValueError("update requires at least one cell assignment")
        self._ops.append((self._UPDATE, relation, (t, cells)))
        return self

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def relations(self) -> List[str]:
        """Relation names mentioned by the batch, in first-mention order."""
        return list(dict.fromkeys(rel for _, rel, _ in self._ops))

    @staticmethod
    def _coerce(relation: RelationInstance, t: Tuple | Mapping | Sequence) -> Tuple:
        if isinstance(t, Tuple):
            return t
        return Tuple(relation.schema, t)

    def apply_to(
        self, db: DatabaseInstance
    ) -> Dict[str, List[PyTuple[str, Tuple]]]:
        """Mutate ``db`` and return the *effective* primitive ops per relation.

        Effective ops are ``("add", t)`` / ``("remove", t)`` pairs in
        application order, with set-semantics no-ops dropped: inserting a
        present tuple or deleting an absent one records nothing, and an
        update whose replacement collides with an existing tuple records
        only the removal.  Updating an *absent* tuple raises ``KeyError``
        (unlike a delete, an update has no sensible no-op reading — the
        caller's view of the cell is stale).  Application is atomic: if any
        op fails, the already-applied prefix is rolled back before the
        error propagates, so the database is never left half-edited.
        """
        effective: Dict[str, List[PyTuple[str, Tuple]]] = {}
        try:
            for kind, rel_name, payload in self._ops:
                relation = db.relation(rel_name)
                ops = effective.setdefault(rel_name, [])
                if kind == self._INSERT:
                    t = self._coerce(relation, payload)
                    if t not in relation:
                        relation.add(t)
                        ops.append(("add", t))
                elif kind == self._DELETE:
                    t = self._coerce(relation, payload)
                    if t in relation:
                        relation.remove(t)
                        ops.append(("remove", t))
                else:  # update
                    old, cells = payload
                    old = self._coerce(relation, old)
                    if old not in relation:
                        raise KeyError(f"update target {old!r} not in {rel_name}")
                    new = old.replace(**cells)
                    if new == old:
                        continue
                    relation.remove(old)
                    ops.append(("remove", old))
                    if new not in relation:
                        relation.add(new)
                        ops.append(("add", new))
        except Exception:
            for rel_name, ops in effective.items():
                relation = db.relation(rel_name)
                for kind, t in reversed(ops):
                    if kind == "add":
                        relation.remove(t)
                    else:
                        relation.add(t)
            raise
        return {rel: ops for rel, ops in effective.items() if ops}

    @staticmethod
    def inverse_of(effective: Mapping[str, List[PyTuple[str, Tuple]]]) -> "Changeset":
        """The changeset undoing ``effective`` ops (reversed, add↔remove)."""
        undo = Changeset()
        flat = [
            (rel, kind, t)
            for rel, ops in effective.items()
            for kind, t in ops
        ]
        for rel, kind, t in reversed(flat):
            if kind == "add":
                undo.delete(rel, t)
            else:
                undo.insert(rel, t)
        return undo

    # -- wire format ------------------------------------------------------

    @staticmethod
    def _row_to_dict(row: Tuple | Mapping | Sequence) -> Any:
        if isinstance(row, Tuple):
            return row.as_dict()
        if isinstance(row, Mapping):
            return dict(row)
        return list(row)

    def to_dict(self) -> Dict[str, Any]:
        """The batch as a JSON-ready document: ``{"ops": [...]}``.

        Each op is ``{"op": "insert"|"delete"|"update", "relation": name,
        "row": {attr: value}}``, updates carrying an extra ``"cells"``
        mapping of the edited attributes.  Tuple payloads render through
        ``Tuple.as_dict``, so a changeset built from live tuples (e.g. an
        undo changeset) serializes the same way as one built from mappings.
        """
        ops: List[Dict[str, Any]] = []
        for kind, rel_name, payload in self._ops:
            if kind == self._UPDATE:
                row, cells = payload
                ops.append(
                    {
                        "op": kind,
                        "relation": rel_name,
                        "row": self._row_to_dict(row),
                        "cells": dict(cells),
                    }
                )
            else:
                ops.append(
                    {
                        "op": kind,
                        "relation": rel_name,
                        "row": self._row_to_dict(payload),
                    }
                )
        return {"ops": ops}

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Changeset":
        """Parse a :meth:`to_dict` document back into a changeset.

        Rows stay plain mappings/sequences; they are coerced to typed
        tuples against the live schema at apply time, so a document can be
        parsed without a database at hand.  Raises
        :class:`~repro.errors.DependencyError` on a malformed document,
        naming the offending op index.
        """
        ops = document.get("ops")
        if not isinstance(ops, Sequence) or isinstance(ops, (str, bytes)):
            raise DependencyError(
                "changeset document needs an 'ops' list, got "
                f"{type(ops).__name__}"
            )
        changeset = cls()
        for i, op in enumerate(ops):
            if not isinstance(op, Mapping):
                raise DependencyError(f"changeset op #{i} is not a mapping")
            kind = op.get("op")
            rel_name = op.get("relation")
            row = op.get("row")
            if not isinstance(rel_name, str):
                raise DependencyError(
                    f"changeset op #{i} needs a 'relation' name"
                )
            if not isinstance(row, (Mapping, Sequence)) or isinstance(
                row, (str, bytes)
            ):
                raise DependencyError(
                    f"changeset op #{i} needs a 'row' mapping or list"
                )
            if kind == cls._INSERT:
                changeset.insert(rel_name, row)
            elif kind == cls._DELETE:
                changeset.delete(rel_name, row)
            elif kind == cls._UPDATE:
                cells = op.get("cells")
                if not isinstance(cells, Mapping) or not cells:
                    raise DependencyError(
                        f"changeset op #{i} (update) needs a non-empty "
                        "'cells' mapping"
                    )
                # append directly rather than via update(**cells): an
                # attribute literally named "relation" or "t" would
                # collide with the method's positional parameters
                changeset._ops.append(
                    (cls._UPDATE, rel_name, (row, dict(cells)))
                )
            else:
                raise DependencyError(
                    f"changeset op #{i} has unknown op {kind!r}; expected "
                    "'insert', 'delete' or 'update'"
                )
        return changeset

    def __repr__(self) -> str:
        kinds = Counter(kind for kind, _, _ in self._ops)
        inner = ", ".join(f"{k}×{n}" for k, n in sorted(kinds.items()))
        return f"Changeset({len(self._ops)} ops: {inner or 'empty'})"


class ViolationDelta:
    """What one applied changeset did to the violation set."""

    __slots__ = ("added", "removed", "undo", "remaining")

    def __init__(
        self,
        added: List[Violation],
        removed: List[Violation],
        undo: Changeset,
        remaining: int,
    ) -> None:
        self.added = added
        self.removed = removed
        self.undo = undo
        #: total violations in the maintained set *after* the batch
        self.remaining = remaining

    @property
    def clean_after(self) -> bool:
        """True iff the database satisfies Σ after the batch."""
        return self.remaining == 0

    @property
    def net(self) -> int:
        return len(self.added) - len(self.removed)

    def __repr__(self) -> str:
        return (
            f"ViolationDelta(+{len(self.added)} −{len(self.removed)}, "
            f"{self.remaining} remaining)"
        )


class DeltaStats:
    """What incremental maintenance actually did, for tests and tuning."""

    __slots__ = (
        "batches",
        "ops_applied",
        "keys_patched",
        "keys_reevaluated",
        "inclusion_keys_touched",
        "fallback_rescans",
    )

    def __init__(self) -> None:
        self.batches = 0
        self.ops_applied = 0
        #: partition keys updated in O(1) per op (pair pivot survived)
        self.keys_patched = 0
        #: partition keys that needed a full re-sweep (pivot removed / new)
        self.keys_reevaluated = 0
        self.inclusion_keys_touched = 0
        self.fallback_rescans = 0

    def __repr__(self) -> str:
        return (
            f"DeltaStats(batches={self.batches}, ops={self.ops_applied}, "
            f"keys_patched={self.keys_patched}, "
            f"keys_reevaluated={self.keys_reevaluated}, "
            f"inclusion_keys_touched={self.inclusion_keys_touched}, "
            f"fallback_rescans={self.fallback_rescans})"
        )


class _ScanState:
    """Maintained partition + violations for one (relation, signature) group.

    ``groups`` mirrors what ``RelationIndexes.group_index`` would build from
    scratch — keys in first-seen order, tuples in relation insertion order
    within each group — but stores each group as an insertion-ordered dict
    of tuples, so patching is O(1) per op.  Patching replays the effective
    ops in order, which preserves exactly the rebuild invariant (a
    removed-then-readded tuple moves to the end of its group in the
    relation too).

    Violations are updated per touched partition key on one of two paths:

    * **incremental** — every FD/CFD/eCFD violation is either a
      single-tuple check or a first-vs-other pair check
      (``ScanTask.single`` / ``.pair``).  As long as the partition's
      *first* tuple survives the batch, each added tuple contributes
      exactly ``single(t) + pair(first, t)`` and each removed tuple
      retracts exactly the same — O(1) per op, no re-sweep;
    * **re-evaluate** — if the batch removes the partition's first tuple
      (the pair pivot changes) or the partition is new, the partition is
      re-swept and the violation multisets diffed.
    """

    __slots__ = (
        "relation_name",
        "signature",
        "key_of",
        "tasks",
        "incremental_ok",
        "groups",
        "violations",
        "_universal",
        "_conditional",
    )

    def __init__(
        self,
        relation: RelationInstance,
        scan_group: ScanGroup,
        tuples: Optional[Iterable[Tuple]] = None,
    ) -> None:
        self.relation_name = scan_group.relation_name
        self.signature = scan_group.signature
        self.key_of = key_getter(relation.schema, self.signature)
        self.tasks: List[PyTuple[int, Any]] = [
            (position, task)
            for position, dep in scan_group.members
            for task in dep.scan_tasks(relation.schema)
        ]
        self.incremental_ok = all(
            task.supports_incremental for _, task in self.tasks
        )
        # Tasks that match every partition key (all-wildcard patterns) are
        # split out once; only the rest pay a per-key pattern check.
        self._universal: List[PyTuple[int, Any]] = [
            (position, task)
            for position, task in self.tasks
            if task.lookup_key is None
            and not task.key_constants
            and task.match_fn is None
        ]
        self._conditional: List[PyTuple[int, Any]] = [
            entry for entry in self.tasks if entry not in self._universal
        ]
        self.groups: Dict[tuple, Dict[Tuple, None]] = {}
        # ``tuples`` restricts the state to a shard's bucket (in relation
        # insertion order); every partition key lands wholly inside one
        # shard, so each sub-state patches exactly as the unsharded one.
        for t in relation if tuples is None else tuples:
            self.groups.setdefault(self.key_of(t.values()), {})[t] = None
        self.violations: Dict[tuple, List[PyTuple[int, Violation]]] = {}
        for key, group in self.groups.items():
            found = self._evaluate(key, list(group))
            if found:
                self.violations[key] = found

    def iter_found(self) -> Iterator[PyTuple[int, Violation]]:
        """All stored (position, violation) entries, per-partition order."""
        for found in self.violations.values():
            yield from found

    def _applicable(self, key: tuple) -> List[PyTuple[int, Any]]:
        """The member tasks whose pattern admits this partition key."""
        if not self._conditional:
            return self._universal
        chosen = list(self._universal)
        for position, task in self._conditional:
            if task.lookup_key is not None:
                if task.lookup_key != key:
                    continue
            elif not task.matches(key):
                continue
            chosen.append((position, task))
        return chosen

    def _evaluate(
        self, key: tuple, group: Sequence[Tuple]
    ) -> List[PyTuple[int, Violation]]:
        singleton = len(group) < 2
        found: List[PyTuple[int, Violation]] = []
        for position, task in self._applicable(key):
            if singleton and task.skip_singletons:
                continue
            out: List[Violation] = []
            task.evaluate(group, out)
            found.extend((position, v) for v in out)
        return found

    @staticmethod
    def _contribution(
        tasks: Sequence[PyTuple[int, Any]], first: Tuple, t: Tuple
    ) -> List[PyTuple[int, Violation]]:
        """The violations tuple ``t`` contributes to its partition, given
        the partition's (surviving, distinct) first tuple."""
        found: List[PyTuple[int, Violation]] = []
        out: List[Violation] = []
        for position, task in tasks:
            task.single(t, out)
            task.pair(first, t, out)
            if out:
                for v in out:
                    found.append((position, v))
                out.clear()
        return found

    def apply(
        self, ops: Sequence[PyTuple[str, Tuple]], stats: DeltaStats
    ) -> PyTuple[List[PyTuple[int, Violation]], List[PyTuple[int, Violation]]]:
        """Patch partitions with the batch and update touched keys."""
        by_key: Dict[tuple, List[PyTuple[str, Tuple]]] = {}
        for kind, t in ops:
            by_key.setdefault(self.key_of(t.values()), []).append((kind, t))
        added: List[PyTuple[int, Violation]] = []
        removed: List[PyTuple[int, Violation]] = []
        for key, key_ops in by_key.items():
            group = self.groups.get(key)
            first = next(iter(group)) if group else None
            pivot_safe = (
                self.incremental_ok
                and first is not None
                and not any(kind == "remove" and t == first for kind, t in key_ops)
            )
            if pivot_safe:
                stats.keys_patched += 1
                tasks = self._applicable(key)
                stored = self.violations.get(key)
                if stored is None:
                    stored = self.violations[key] = []
                for kind, t in key_ops:
                    contribution = self._contribution(tasks, first, t)
                    if kind == "add":
                        group[t] = None
                        stored.extend(contribution)
                        added.extend(contribution)
                    else:
                        del group[t]
                        for entry in contribution:
                            stored.remove(entry)
                        removed.extend(contribution)
                if not stored:
                    del self.violations[key]
            else:
                # The pair pivot changes (or the partition is new): replay
                # the ops structurally and re-sweep the partition.
                stats.keys_reevaluated += 1
                if group is None:
                    group = self.groups[key] = {}
                for kind, t in key_ops:
                    if kind == "add":
                        group[t] = None
                    else:
                        del group[t]
                if not group:
                    del self.groups[key]
                old = self.violations.pop(key, [])
                new = self._evaluate(key, list(group)) if group else []
                if new:
                    self.violations[key] = new
                if old == new:
                    continue
                gained = Counter(new) - Counter(old)
                lost = Counter(old) - Counter(new)
                added.extend(gained.elements())
                removed.extend(lost.elements())
        return added, removed


class _InclusionRow:
    """Maintained demand/violation state for one tableau row of one IND/CIND."""

    __slots__ = ("position", "dep", "lhs_pat", "yp_key", "reason", "demand", "violating")

    def __init__(
        self,
        position: int,
        dep: Dependency,
        lhs_pat: Dict[str, Any],
        rhs_pat: Dict[str, Any],
    ) -> None:
        from repro.cind.model import CIND

        self.position = position
        self.dep = dep
        self.lhs_pat = list(lhs_pat.items())
        if isinstance(dep, CIND):
            self.yp_key = tuple(rhs_pat[a] for a in dep.rhs_pattern_attrs)
            self.reason = (
                f"{dep.name}: no {dep.rhs_relation} tuple matches on "
                f"{list(dep.rhs_attrs)} with pattern {rhs_pat}"
            )
        else:
            self.yp_key = ()
            self.reason = (
                f"no {dep.rhs_relation} tuple matches on {list(dep.rhs_attrs)}"
            )
        #: demanded key → source tuples matching Xp, in insertion order
        self.demand: Dict[tuple, Dict[Tuple, None]] = {}
        #: source tuple → its live Violation record
        self.violating: Dict[Tuple, Violation] = {}

    def matches_source(self, t: Tuple) -> bool:
        return all(t[a] == v for a, v in self.lhs_pat)

    def make_violation(self, t: Tuple) -> Violation:
        return Violation(self.dep, [(self.dep.lhs_relation, t)], self.reason)


class _InclusionState:
    """One (target relation, Yp, Y) signature: shared counted key index."""

    __slots__ = (
        "relation_name",
        "yp_of",
        "y_of",
        "provided",
        "rows",
        "sources",
        "_shard",
    )

    def __init__(
        self,
        db: DatabaseInstance,
        inclusion_group: InclusionGroup,
        shard: Optional[PyTuple[int, int]] = None,
    ) -> None:
        from repro.cind.model import CIND

        self.relation_name = inclusion_group.relation_name
        #: (shard index, shard count) — restricts this state to inclusion
        #: keys hashing to the index; source X and target Y projections of
        #: one key always hash alike, so per-key state stays shard-local.
        self._shard = shard
        target = db.relation(self.relation_name)
        self.yp_of = key_getter(target.schema, inclusion_group.group_attrs)
        self.y_of = key_getter(target.schema, inclusion_group.key_attrs)
        #: Yp projection → (Y projection → provider count)
        # Seeded from the relation's cached counted key index (built from
        # encoded columns on columnar stores, shared across states with the
        # same signature); copied because apply() mutates the counts.
        self.provided: Dict[tuple, Dict[tuple, int]] = {}
        base = target.indexes.grouped_key_counts(
            inclusion_group.group_attrs, inclusion_group.key_attrs
        )
        if self._shard is None:
            self.provided = {yp: dict(counts) for yp, counts in base.items()}
        else:
            for yp, counts in base.items():
                owned = {y: n for y, n in counts.items() if self._owns_key(y)}
                if owned:
                    self.provided[yp] = owned

        self.rows: List[_InclusionRow] = []
        #: source relation → (key getter on X, rows reading that source)
        self.sources: Dict[str, PyTuple[Any, List[_InclusionRow]]] = {}
        for position, dep in inclusion_group.members:
            if isinstance(dep, CIND):
                row_specs = [
                    (dep.lhs_pattern(row), dep.rhs_pattern(row))
                    for row in dep.tableau
                ]
            else:
                row_specs = [({}, {})]
            for lhs_pat, rhs_pat in row_specs:
                row = _InclusionRow(position, dep, lhs_pat, rhs_pat)
                self.rows.append(row)
                source = db.relation(dep.lhs_relation)
                entry = self.sources.get(dep.lhs_relation)
                if entry is None:
                    entry = self.sources[dep.lhs_relation] = (
                        {},  # per-attribute-list key getters, see below
                        [],
                    )
                getters, rows = entry
                if dep.lhs_attrs not in getters:
                    getters[dep.lhs_attrs] = key_getter(source.schema, dep.lhs_attrs)
                rows.append(row)
        # Initial demand/violation state: one pass per source relation.
        for source_name, (getters, rows) in self.sources.items():
            source = db.relation(source_name)
            for t in source:
                for row in rows:
                    if not row.matches_source(t):
                        continue
                    key = getters[row.dep.lhs_attrs](t.values())
                    if not self._owns_key(key):
                        continue
                    row.demand.setdefault(key, {})[t] = None
                    if not self._is_provided(row.yp_key, key):
                        row.violating[t] = row.make_violation(t)

    def _owns_key(self, key: tuple) -> bool:
        # Hot: called once per (row, op) during sharded apply routing.
        if self._shard is None:
            return True
        index, count = self._shard
        return stable_shard(key, count) == index

    def _is_provided(self, yp_key: tuple, y_key: tuple) -> bool:
        counts = self.provided.get(yp_key)
        return bool(counts) and counts.get(y_key, 0) > 0

    @staticmethod
    def _net(ops: Sequence[PyTuple[str, Tuple]]) -> PyTuple[List[Tuple], List[Tuple]]:
        """Net (removed, added) tuples of an effective op sequence."""
        removed: Dict[Tuple, None] = {}
        added: Dict[Tuple, None] = {}
        for kind, t in ops:
            if kind == "add":
                if t in removed:
                    del removed[t]
                else:
                    added[t] = None
            else:
                if t in added:
                    del added[t]
                else:
                    removed[t] = None
        return list(removed), list(added)

    def apply(
        self,
        effective: Mapping[str, Sequence[PyTuple[str, Tuple]]],
        stats: DeltaStats,
    ) -> PyTuple[List[PyTuple[int, Violation]], List[PyTuple[int, Violation]]]:
        added_v: List[PyTuple[int, Violation]] = []
        removed_v: List[PyTuple[int, Violation]] = []

        # 1. Net source removals leave the demand maps first, so key losses
        #    below only ever strand *surviving* demanders.
        for source_name, (getters, rows) in self.sources.items():
            ops = effective.get(source_name)
            if not ops:
                continue
            net_removed, _ = self._net(ops)
            for t in net_removed:
                for row in rows:
                    if not row.matches_source(t):
                        continue
                    key = getters[row.dep.lhs_attrs](t.values())
                    if not self._owns_key(key):
                        continue
                    demanders = row.demand.get(key)
                    if demanders is not None:
                        demanders.pop(t, None)
                        if not demanders:
                            del row.demand[key]
                    violation = row.violating.pop(t, None)
                    if violation is not None:
                        removed_v.append((row.position, violation))

        # 2. Target key count transitions: a key gained (0 → >0) clears the
        #    violations of its demanders; a key lost (>0 → 0) creates them.
        target_ops = effective.get(self.relation_name)
        if target_ops:
            transitions: Dict[PyTuple[tuple, tuple], int] = {}
            for kind, t in target_ops:
                values = t.values()
                yp, y = self.yp_of(values), self.y_of(values)
                if not self._owns_key(y):
                    continue
                counts = self.provided.setdefault(yp, {})
                before = counts.get(y, 0)
                transitions.setdefault((yp, y), before)
                after = before + (1 if kind == "add" else -1)
                if after:
                    counts[y] = after
                else:
                    counts.pop(y, None)
                    if not counts:
                        del self.provided[yp]
            for (yp, y), before in transitions.items():
                now = self._is_provided(yp, y)
                was = before > 0
                if was == now:
                    continue
                stats.inclusion_keys_touched += 1
                for row in self.rows:
                    if row.yp_key != yp:
                        continue
                    for t in row.demand.get(y, ()):  # iterates demander tuples
                        if now:
                            violation = row.violating.pop(t, None)
                            if violation is not None:
                                removed_v.append((row.position, violation))
                        elif t not in row.violating:
                            violation = row.make_violation(t)
                            row.violating[t] = violation
                            added_v.append((row.position, violation))

        # 3. Net source additions check against the post-batch key index.
        for source_name, (getters, rows) in self.sources.items():
            ops = effective.get(source_name)
            if not ops:
                continue
            _, net_added = self._net(ops)
            for t in net_added:
                for row in rows:
                    if not row.matches_source(t):
                        continue
                    key = getters[row.dep.lhs_attrs](t.values())
                    if not self._owns_key(key):
                        continue
                    row.demand.setdefault(key, {})[t] = None
                    if not self._is_provided(row.yp_key, key):
                        violation = row.make_violation(t)
                        row.violating[t] = violation
                        added_v.append((row.position, violation))
        return added_v, removed_v


class _ShardedScanState:
    """One scan group split into shard-local :class:`_ScanState` children.

    Each child owns the partition keys hashing to its shard (see
    :func:`repro.engine.parallel.stable_shard`); since an FD/CFD/eCFD
    violation never crosses a partition, the children's violation sets are
    disjoint and their union equals the unsharded state's.  ``apply``
    routes each effective op to the shard owning its partition key and
    patches only the touched children — the seam a pool of per-shard
    maintenance workers binds to.
    """

    __slots__ = ("relation_name", "signature", "key_of", "shards", "states")

    def __init__(
        self, relation: RelationInstance, scan_group: ScanGroup, shards: int
    ) -> None:
        self.relation_name = scan_group.relation_name
        self.signature = scan_group.signature
        self.key_of = key_getter(relation.schema, self.signature)
        self.shards = shards
        buckets: List[List[Tuple]] = [[] for _ in range(shards)]
        for t in relation:
            buckets[stable_shard(self.key_of(t.values()), shards)].append(t)
        self.states = [
            _ScanState(relation, scan_group, tuples=bucket) for bucket in buckets
        ]

    @property
    def groups(self) -> Dict[tuple, Dict[Tuple, None]]:
        """Merged view of the shard-local partition maps (shard-major)."""
        merged: Dict[tuple, Dict[Tuple, None]] = {}
        for state in self.states:
            merged.update(state.groups)
        return merged

    @property
    def violations(self) -> Dict[tuple, List[PyTuple[int, Violation]]]:
        """Merged view of the shard-local violation maps (shard-major)."""
        merged: Dict[tuple, List[PyTuple[int, Violation]]] = {}
        for state in self.states:
            merged.update(state.violations)
        return merged

    def iter_found(self) -> Iterator[PyTuple[int, Violation]]:
        """All stored (position, violation) entries without a merge copy."""
        for state in self.states:
            yield from state.iter_found()

    def apply(
        self, ops: Sequence[PyTuple[str, Tuple]], stats: DeltaStats
    ) -> PyTuple[List[PyTuple[int, Violation]], List[PyTuple[int, Violation]]]:
        routed: List[List[PyTuple[str, Tuple]]] = [[] for _ in range(self.shards)]
        for kind, t in ops:
            routed[stable_shard(self.key_of(t.values()), self.shards)].append(
                (kind, t)
            )
        added: List[PyTuple[int, Violation]] = []
        removed: List[PyTuple[int, Violation]] = []
        for state, shard_ops in zip(self.states, routed):
            if shard_ops:
                gained, lost = state.apply(shard_ops, stats)
                added.extend(gained)
                removed.extend(lost)
        return added, removed


class _ShardedInclusionState:
    """One inclusion group split into shard-filtered children.

    Each child :class:`_InclusionState` owns the inclusion keys hashing to
    its shard — both the demand side (source X projections) and the supply
    side (target Y projections), which agree for any key that can match.
    ``apply`` hands the batch to every child; each filters down to the
    keys it owns, so every op is processed exactly once per tableau row.
    """

    __slots__ = ("relation_name", "sources", "states")

    def __init__(
        self, db: DatabaseInstance, inclusion_group: InclusionGroup, shards: int
    ) -> None:
        self.states = [
            _InclusionState(db, inclusion_group, shard=(index, shards))
            for index in range(shards)
        ]
        self.relation_name = inclusion_group.relation_name
        #: source relation names (the engine only consults the keys)
        self.sources = self.states[0].sources

    @property
    def rows(self) -> List[_InclusionRow]:
        return [row for state in self.states for row in state.rows]

    def apply(
        self,
        effective: Mapping[str, Sequence[PyTuple[str, Tuple]]],
        stats: DeltaStats,
    ) -> PyTuple[List[PyTuple[int, Violation]], List[PyTuple[int, Violation]]]:
        # Unlike scan groups, ops cannot be pre-routed per shard: one
        # source op owes its key to each tableau row's own X projection,
        # so the owning shard varies per (row, op).  Every child gets the
        # batch and filters at key level via _owns_key.
        added: List[PyTuple[int, Violation]] = []
        removed: List[PyTuple[int, Violation]] = []
        for state in self.states:
            gained, lost = state.apply(effective, stats)
            added.extend(gained)
            removed.extend(lost)
        return added, removed


class DeltaEngine:
    """Maintain the violation set of Σ over a database under batched edits.

    Construction runs one full (indexed-equivalent) detection pass and
    stores it in per-signature form; every :meth:`apply` then updates the
    set in time proportional to the data the batch touches.  The maintained
    multiset of violations is equal to what a fresh
    :func:`~repro.engine.executor.detect_violations_indexed` run would
    report on the current instance (the differential test harness pins this
    against the naive oracle as well).
    """

    def __init__(
        self,
        db: DatabaseInstance,
        dependencies: Sequence[Dependency],
        shards: Optional[int] = None,
    ) -> None:
        self._db = db
        self._shards = resolve_shards(shards)
        self._plan = plan_detection(dependencies)
        self.dependencies: List[Dependency] = self._plan.dependencies
        self.stats = DeltaStats()
        if self._shards == 1:
            self._scan_states: List[Any] = [
                _ScanState(db.relation(group.relation_name), group)
                for group in self._plan.scan_groups
            ]
            self._inclusion_states: List[Any] = [
                _InclusionState(db, group)
                for group in self._plan.inclusion_groups
            ]
        else:
            self._scan_states = [
                _ShardedScanState(
                    db.relation(group.relation_name), group, self._shards
                )
                for group in self._plan.scan_groups
            ]
            self._inclusion_states = [
                _ShardedInclusionState(db, group, self._shards)
                for group in self._plan.inclusion_groups
            ]
        self._fallback: List[PyTuple[int, Dependency, List[Violation]]] = [
            (position, dep, list(dep.violations(db)))
            for position, dep in self._plan.fallback
        ]
        self._total = sum(
            1 for state in self._scan_states for _ in state.iter_found()
        )
        self._total += sum(
            len(row.violating)
            for state in self._inclusion_states
            for row in state.rows
        )
        self._total += sum(len(found) for _, _, found in self._fallback)
        self._versions: Dict[str, int] = {
            rel.schema.name: rel.version for rel in db
        }

    # -- introspection ---------------------------------------------------

    @property
    def database(self) -> DatabaseInstance:
        return self._db

    @property
    def shards(self) -> int:
        """How many hash shards the maintained state is split across."""
        return self._shards

    def total_violations(self) -> int:
        return self._total

    def is_clean(self) -> bool:
        return self._total == 0

    def violations(self) -> List[Violation]:
        """The full current violation multiset, grouped per dependency in
        input order (order within a dependency is maintenance order, not
        necessarily a fresh detection's order — the multisets are equal)."""
        results: List[List[Violation]] = [[] for _ in self.dependencies]
        for state in self._scan_states:
            for position, violation in state.iter_found():
                results[position].append(violation)
        for state in self._inclusion_states:
            for row in state.rows:
                results[row.position].extend(row.violating.values())
        for position, _, found in self._fallback:
            results[position].extend(found)
        return [v for sub in results for v in sub]

    def report(self) -> "DetectionReport":
        """Current violations as a :class:`~repro.cfd.detect.DetectionReport`."""
        from repro.cfd.detect import DetectionReport

        return DetectionReport(self.violations())

    def partitions(
        self, relation_name: str, signature: PyTuple[str, ...]
    ) -> Optional[Dict[tuple, Dict[Tuple, None]]]:
        """The maintained partition map for a tracked scan signature, or
        ``None`` if no scan group uses it.  Values are insertion-ordered
        mappings of tuples (read-only by contract).  With ``shards > 1``
        the returned mapping is a merged snapshot (shard-major key order):
        the per-key group dicts are the live maintained objects, but keys
        created or dropped by later ``apply`` calls are not reflected —
        re-fetch after mutating."""
        for state in self._scan_states:
            if state.relation_name == relation_name and state.signature == signature:
                return state.groups
        return None

    # -- maintenance -----------------------------------------------------

    def _check_versions(self) -> None:
        for relation in self._db:
            name = relation.schema.name
            if self._versions.get(name) != relation.version:
                raise StaleEngineError(
                    f"relation {name!r} is at version {relation.version}, "
                    f"engine expected {self._versions.get(name)}; apply edits "
                    "through DeltaEngine.apply or call refresh()"
                )

    def refresh(self) -> None:
        """Rebuild all maintained state from the current instance."""
        self.__init__(self._db, self.dependencies, shards=self._shards)

    def apply(self, changeset: Changeset) -> ViolationDelta:
        """Apply the batch to the database and return the violation delta.

        If the changeset fails mid-application (e.g. an update targeting an
        absent tuple), ``apply_to`` rolls the database back to its prior
        *content*; the rollback can reorder tuples, so the engine rebuilds
        its maintained state before re-raising — the database and the
        violation set stay consistent either way.
        """
        self._check_versions()
        try:
            effective = changeset.apply_to(self._db)
        except Exception:
            self.refresh()
            raise
        undo = Changeset.inverse_of(effective)
        self.stats.batches += 1
        self.stats.ops_applied += sum(len(ops) for ops in effective.values())

        added: List[PyTuple[int, Violation]] = []
        removed: List[PyTuple[int, Violation]] = []
        if effective:
            touched = set(effective)
            for state in self._scan_states:
                ops = effective.get(state.relation_name)
                if ops:
                    gained, lost = state.apply(ops, self.stats)
                    added.extend(gained)
                    removed.extend(lost)
            for inclusion in self._inclusion_states:
                if inclusion.relation_name in touched or any(
                    name in touched for name in inclusion.sources
                ):
                    gained, lost = inclusion.apply(effective, self.stats)
                    added.extend(gained)
                    removed.extend(lost)
            for index, (position, dep, old) in enumerate(self._fallback):
                if touched.intersection(dep.relations()):
                    self.stats.fallback_rescans += 1
                    new = list(dep.violations(self._db))
                    self._fallback[index] = (position, dep, new)
                    gained = Counter(new) - Counter(old)
                    lost = Counter(old) - Counter(new)
                    added.extend((position, v) for v in gained.elements())
                    removed.extend((position, v) for v in lost.elements())

        self._total += len(added) - len(removed)
        for rel in self._db:
            self._versions[rel.schema.name] = rel.version
        if added and removed:
            # Net out violations that only existed transiently inside the
            # batch (e.g. insert-then-delete), so the reported delta
            # describes what the batch did to the violation set, not which
            # internal maintenance path happened to run.
            gained = Counter(added)
            lost = Counter(removed)
            added = list((gained - lost).elements())
            removed = list((lost - gained).elements())
        added.sort(key=lambda pv: pv[0])
        removed.sort(key=lambda pv: pv[0])
        return ViolationDelta(
            [v for _, v in added], [v for _, v in removed], undo, self._total
        )

    def probe(self, changeset: Changeset) -> ViolationDelta:
        """Apply, record the delta, and revert — a what-if without a copy."""
        delta = self.apply(changeset)
        self.apply(delta.undo)
        return delta

    def __repr__(self) -> str:
        return (
            f"DeltaEngine({len(self.dependencies)} deps, "
            f"{len(self._scan_states)} scan groups, "
            f"{len(self._inclusion_states)} inclusion groups, "
            f"{self._shards} shards, "
            f"{self._total} current violations, {self.stats!r})"
        )
