"""Batch detection execution over shared indexes.

The executor walks a :class:`~repro.engine.planner.DetectionPlan`:

* for each scan group it fetches the one shared partition of the relation,
  resolves fully-constant pattern tuples by direct hash lookup, and sweeps
  the remaining pattern tuples of *all* member dependencies over the
  partition in a single pass;
* for each inclusion group it warms the shared target key index once and
  runs every member against it;
* fallback dependencies run through their own ``violations`` method.

Violations are reassembled in input-dependency order, so the resulting
:class:`~repro.cfd.detect.DetectionReport` groups per dependency exactly
like a naive per-dependency loop — only the work is shared.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.deps.base import Dependency, Violation
from repro.engine.planner import DetectionPlan, plan_detection
from repro.relational.instance import DatabaseInstance

__all__ = ["ExecutionStats", "execute_plan", "detect_violations_indexed"]


class ExecutionStats:
    """What one plan execution actually did, for tests and tuning."""

    __slots__ = ("partitions_built", "constant_lookups", "swept_patterns", "groups_swept")

    def __init__(self) -> None:
        self.partitions_built = 0
        self.constant_lookups = 0
        self.swept_patterns = 0
        self.groups_swept = 0

    def __repr__(self) -> str:
        return (
            f"ExecutionStats(partitions_built={self.partitions_built}, "
            f"constant_lookups={self.constant_lookups}, "
            f"swept_patterns={self.swept_patterns}, "
            f"groups_swept={self.groups_swept})"
        )


def execute_plan(
    db: DatabaseInstance,
    plan: DetectionPlan,
    stats: ExecutionStats | None = None,
):
    """Run the plan on ``db`` and aggregate a DetectionReport."""
    from repro.cfd.detect import DetectionReport
    from repro.cind.model import CIND

    stats = stats if stats is not None else ExecutionStats()
    results: List[List[Violation]] = [[] for _ in plan.dependencies]

    for scan in plan.scan_groups:
        relation = db.relation(scan.relation_name)
        # Compile every member's pattern rows once against the relation
        # schema; fully-constant rows resolve by one hash lookup, the rest
        # join the shared sweep.
        lookups: List[tuple] = []
        sweep: List[tuple] = []
        for position, dep in scan.members:
            for task in dep.scan_tasks(relation.schema):
                if task.lookup_key is not None:
                    lookups.append((position, task))
                else:
                    sweep.append((position, task))
        stats.partitions_built += 1
        stats.constant_lookups += len(lookups)
        stats.swept_patterns += len(sweep)
        # Kernel path: when the relation is columnar and every task of the
        # scan group declares its columnar decomposition, the vectorized
        # layout replaces the hash partition entirely.  The kernels flag
        # exactly the violating rows (code comparisons are congruent with
        # the value comparisons the closures make), so the executor
        # materializes only flagged rows — plus each flagged group's first
        # tuple — and routes them through the original ``single``/``pair``
        # closures in legacy emission order: groups in first-seen key
        # order, tasks in member order, singles before pairs within each
        # group.  Emitted violations are identical, object for object, to
        # the legacy sweep below.
        layout = (
            relation.indexes.group_layout(scan.signature)
            if all(
                task.columnar is not None and task.supports_incremental
                for _, task in lookups + sweep
            )
            else None
        )
        if layout is not None:
            from repro.engine.kernels import flagged_rows

            indexes = relation.indexes
            tuple_at = layout.store.tuple_at

            def emit(task, flags, rank: int, out: List[Violation], first=None):
                singles, pairs = flagged_rows(layout, flags, rank)
                for row in singles:
                    task.single(tuple_at(row), out)
                if pairs:
                    if first is None:
                        first = tuple_at(int(layout.rows_sorted[layout.starts[rank]]))
                    for row in pairs:
                        task.pair(first, tuple_at(row), out)
                return first

            for position, task in lookups:
                rank = layout.rank_of_key(task.lookup_key)
                if rank is not None:
                    emit(task, indexes.task_flags(scan.signature, task.columnar),
                         rank, results[position])
            if not sweep:
                continue
            flagged: List[tuple] = []
            union: set = set()
            for position, task in sweep:
                flags = indexes.task_flags(scan.signature, task.columnar)
                flagged.append((position, task, flags))
                union |= flags.candidate_set
            for rank in sorted(union):
                stats.groups_swept += 1
                singleton = int(layout.sizes[rank]) < 2
                key = layout.decoded_key(rank)
                first = None
                for position, task, flags in flagged:
                    if rank not in flags.candidate_set:
                        continue
                    if singleton and task.skip_singletons:
                        continue
                    if task.matches(key):
                        first = emit(task, flags, rank, results[position], first)
            continue
        groups = relation.indexes.group_index(scan.signature)
        for position, task in lookups:
            group = groups.get(task.lookup_key)
            if group:
                task.evaluate(group, results[position])
        if not sweep:
            continue
        # One pass over the shared partitions evaluates every remaining
        # pattern row of every member dependency.
        for key, group in groups.items():
            stats.groups_swept += 1
            singleton = len(group) < 2
            for position, task in sweep:
                if singleton and task.skip_singletons:
                    continue
                if task.matches(key):
                    task.evaluate(group, results[position])

    for inclusion in plan.inclusion_groups:
        # Warm the shared target index once; members hit the cache.
        target_indexes = db.relation(inclusion.relation_name).indexes
        if any(isinstance(dep, CIND) for _, dep in inclusion.members):
            target_indexes.grouped_key_sets(
                inclusion.group_attrs, inclusion.key_attrs
            )
        if any(not isinstance(dep, CIND) for _, dep in inclusion.members):
            target_indexes.key_set(inclusion.key_attrs)
        stats.partitions_built += 1
        for position, dep in inclusion.members:
            results[position].extend(dep.violations(db))

    for position, dep in plan.fallback:
        results[position].extend(dep.violations(db))

    return DetectionReport([v for sub in results for v in sub])


def detect_violations_indexed(
    db: DatabaseInstance, dependencies: Iterable[Dependency]
):
    """Plan + execute: batch violation detection over shared indexes."""
    return execute_plan(db, plan_detection(dependencies))
