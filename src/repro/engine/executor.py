"""Batch detection execution over shared indexes.

The executor walks a :class:`~repro.engine.planner.DetectionPlan`:

* for each scan group it fetches the one shared partition of the relation,
  resolves fully-constant pattern tuples by direct hash lookup, and sweeps
  the remaining pattern tuples of *all* member dependencies over the
  partition in a single pass;
* for each inclusion group it warms the shared target key index once and
  runs every member against it;
* fallback dependencies run through their own ``violations`` method.

Violations are reassembled in input-dependency order, so the resulting
:class:`~repro.cfd.detect.DetectionReport` groups per dependency exactly
like a naive per-dependency loop — only the work is shared.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.deps.base import Dependency, Violation
from repro.engine.planner import DetectionPlan, plan_detection
from repro.relational.instance import DatabaseInstance

__all__ = ["ExecutionStats", "execute_plan", "detect_violations_indexed"]


class ExecutionStats:
    """What one plan execution actually did, for tests and tuning."""

    __slots__ = ("partitions_built", "constant_lookups", "swept_patterns", "groups_swept")

    def __init__(self) -> None:
        self.partitions_built = 0
        self.constant_lookups = 0
        self.swept_patterns = 0
        self.groups_swept = 0

    def __repr__(self) -> str:
        return (
            f"ExecutionStats(partitions_built={self.partitions_built}, "
            f"constant_lookups={self.constant_lookups}, "
            f"swept_patterns={self.swept_patterns}, "
            f"groups_swept={self.groups_swept})"
        )


def execute_plan(
    db: DatabaseInstance,
    plan: DetectionPlan,
    stats: ExecutionStats | None = None,
):
    """Run the plan on ``db`` and aggregate a DetectionReport."""
    from repro.cfd.detect import DetectionReport
    from repro.cind.model import CIND

    stats = stats if stats is not None else ExecutionStats()
    results: List[List[Violation]] = [[] for _ in plan.dependencies]

    for scan in plan.scan_groups:
        relation = db.relation(scan.relation_name)
        groups = relation.indexes.group_index(scan.signature)
        stats.partitions_built += 1
        # Compile every member's pattern rows once against the relation
        # schema; fully-constant rows resolve by one hash lookup, the rest
        # join the shared sweep.
        sweep: List[tuple] = []
        for position, dep in scan.members:
            for task in dep.scan_tasks(relation.schema):
                if task.lookup_key is not None:
                    stats.constant_lookups += 1
                    group = groups.get(task.lookup_key)
                    if group:
                        task.evaluate(group, results[position])
                else:
                    sweep.append((position, task))
        if not sweep:
            continue
        stats.swept_patterns += len(sweep)
        # One pass over the shared partitions evaluates every remaining
        # pattern row of every member dependency.
        for key, group in groups.items():
            stats.groups_swept += 1
            singleton = len(group) < 2
            for position, task in sweep:
                if singleton and task.skip_singletons:
                    continue
                if task.matches(key):
                    task.evaluate(group, results[position])

    for inclusion in plan.inclusion_groups:
        # Warm the shared target index once; members hit the cache.
        target_indexes = db.relation(inclusion.relation_name).indexes
        if any(isinstance(dep, CIND) for _, dep in inclusion.members):
            target_indexes.grouped_key_sets(
                inclusion.group_attrs, inclusion.key_attrs
            )
        if any(not isinstance(dep, CIND) for _, dep in inclusion.members):
            target_indexes.key_set(inclusion.key_attrs)
        stats.partitions_built += 1
        for position, dep in inclusion.members:
            results[position].extend(dep.violations(db))

    for position, dep in plan.fallback:
        results[position].extend(dep.violations(db))

    return DetectionReport([v for sub in results for v in sub])


def detect_violations_indexed(
    db: DatabaseInstance, dependencies: Iterable[Dependency]
):
    """Plan + execute: batch violation detection over shared indexes."""
    return execute_plan(db, plan_detection(dependencies))
