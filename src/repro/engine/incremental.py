"""Incremental consistency re-checking for single-tuple edits.

Repair checking (X-repair maximality, U-repair local minimality) asks the
same question over and over: *starting from a database known to satisfy Σ,
does it still satisfy Σ after putting one tuple back / reverting one cell?*
The naive answer copies the whole database and re-runs every detector; the
incremental answer observes that a single-tuple change can only create
violations in the partitions it touches:

* removing a tuple never creates FD/CFD/eCFD violations (their violation
  sets are monotone in the relation), so only the *added* tuple's
  LHS-partition needs re-evaluation;
* an added tuple can violate an inclusion dependency only as its own
  source tuple;
* removing a tuple from an inclusion *target* can strand exactly the
  source tuples demanding its key — a hash-index lookup, not a scan;
* adding a target tuple never creates inclusion violations.

Dependency classes outside FD/CFD/eCFD/IND/CIND fall back to a materialized
trial copy, checked fully, so the result is exact for arbitrary mixes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.deps.base import Dependency
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple

__all__ = ["IncrementalChecker"]


class IncrementalChecker:
    """Re-check Σ after one remove/add against a consistent base.

    The base database must satisfy every dependency at construction time
    (both call sites in :mod:`repro.repair.checking` establish this before
    probing); ``consistent_after`` then answers for the hypothetical
    instance ``db − removed + added`` on one relation without materializing
    it (except for fallback dependency classes).
    """

    def __init__(self, db: DatabaseInstance, dependencies: Sequence[Dependency]):
        from repro.cfd.ecfd import ECFD
        from repro.cfd.model import CFD
        from repro.cind.model import CIND
        from repro.deps.fd import FD
        from repro.deps.ind import IND

        self._db = db
        # Scan deps are compiled once here: (signature, tasks) per dep, so
        # each probe is pure group evaluation with no recompilation.
        self._scans: Dict[str, List[tuple]] = {}
        self._sources: Dict[str, List[Dependency]] = {}
        self._targets: Dict[str, List[Dependency]] = {}
        self._fallback: List[Dependency] = []
        for dep in dependencies:
            if isinstance(dep, (CFD, ECFD, FD)):
                schema = db.relation(dep.relation_name).schema
                self._scans.setdefault(dep.relation_name, []).append(
                    (dep.scan_signature, dep.scan_tasks(schema))
                )
            elif isinstance(dep, (CIND, IND)):
                self._sources.setdefault(dep.lhs_relation, []).append(dep)
                self._targets.setdefault(dep.rhs_relation, []).append(dep)
            else:
                self._fallback.append(dep)

    # -- helpers ---------------------------------------------------------

    def _provided(
        self,
        relation_name: str,
        combined_attrs: List[str],
        combined_key: tuple,
        removed: Optional[Tuple],
        added: Optional[Tuple],
        changed_relation: str,
    ) -> bool:
        """Does the modified target still hold a tuple projecting to
        ``combined_key`` on ``combined_attrs``?"""
        providers = (
            self._db.relation(relation_name)
            .indexes.group_index(combined_attrs)
            .get(combined_key, ())
        )
        same_relation = relation_name == changed_relation
        for t in providers:
            if not (same_relation and t == removed):
                return True
        return (
            same_relation
            and added is not None
            and added[combined_attrs] == combined_key
        )

    def _inclusion_attrs(self, dep) -> List[tuple]:
        """(lhs_pattern, rhs_pattern) pairs, one per row, over IND/CIND."""
        from repro.cind.model import CIND

        if isinstance(dep, CIND):
            return [
                (dep.lhs_pattern(row), dep.rhs_pattern(row)) for row in dep.tableau
            ]
        return [({}, {})]  # plain IND: one unconditional row

    # -- the check -------------------------------------------------------

    def consistent_after(
        self,
        relation_name: str,
        removed: Optional[Tuple] = None,
        added: Optional[Tuple] = None,
    ) -> bool:
        """Σ ⊨ (db − removed + added) on ``relation_name``?"""
        from repro.cind.model import CIND

        if removed == added:
            return True
        relation = self._db.relation(relation_name)
        if added is not None and added in relation and added != removed:
            # Set semantics: the addition is a no-op; only the removal acts.
            added = None
            if removed is None:
                return True

        # 1. FD/CFD/eCFD: only the added tuple's LHS-partition can go bad.
        if added is not None:
            for signature, tasks in self._scans.get(relation_name, ()):
                key = added[list(signature)]
                base_group = relation.indexes.group_index(signature).get(key, ())
                group = [t for t in base_group if t != removed]
                group.append(added)
                singleton = len(group) < 2
                for task in tasks:
                    if singleton and task.skip_singletons:
                        continue
                    if task.lookup_key is not None:
                        if task.lookup_key != key:
                            continue
                    elif not task.matches(key):
                        continue
                    found: list = []
                    task.evaluate(group, found)
                    if found:
                        return False

        # 2. Inclusions where the changed relation is the source: only the
        #    added tuple can newly demand a missing target key.
        if added is not None:
            for dep in self._sources.get(relation_name, ()):
                is_cind = isinstance(dep, CIND)
                for lhs_pat, rhs_pat in self._inclusion_attrs(dep):
                    if is_cind and any(
                        added[a] != v for a, v in lhs_pat.items()
                    ):
                        continue
                    combined_attrs = list(dep.rhs_pattern_attrs) + list(
                        dep.rhs_attrs
                    ) if is_cind else list(dep.rhs_attrs)
                    combined_key = (
                        tuple(rhs_pat[a] for a in dep.rhs_pattern_attrs)
                        if is_cind
                        else ()
                    ) + added[list(dep.lhs_attrs)]
                    if not self._provided(
                        dep.rhs_relation,
                        combined_attrs,
                        combined_key,
                        removed,
                        added,
                        relation_name,
                    ):
                        return False

        # 3. Inclusions where the changed relation is the target: removing
        #    a provider strands exactly the source tuples demanding its key.
        if removed is not None:
            for dep in self._targets.get(relation_name, ()):
                is_cind = isinstance(dep, CIND)
                for lhs_pat, rhs_pat in self._inclusion_attrs(dep):
                    if is_cind and any(
                        removed[a] != v for a, v in rhs_pat.items()
                    ):
                        continue  # removed tuple was no provider for this row
                    combined_attrs = list(dep.rhs_pattern_attrs) + list(
                        dep.rhs_attrs
                    ) if is_cind else list(dep.rhs_attrs)
                    combined_key = removed[combined_attrs]
                    if self._provided(
                        dep.rhs_relation,
                        combined_attrs,
                        combined_key,
                        removed,
                        added,
                        relation_name,
                    ):
                        continue  # another tuple still provides the key
                    # The key is gone: any surviving source tuple demanding
                    # it witnesses a violation.
                    demand_key = removed[list(dep.rhs_attrs)]
                    source = self._db.relation(dep.lhs_relation)
                    demanders = source.indexes.group_index(
                        tuple(dep.lhs_attrs)
                    ).get(demand_key, ())
                    source_changed = dep.lhs_relation == relation_name
                    for t1 in demanders:
                        if source_changed and t1 == removed:
                            continue
                        if is_cind and any(
                            t1[a] != v for a, v in lhs_pat.items()
                        ):
                            continue
                        return False

        # 4. Everything else: materialize the trial for the fallback deps.
        if self._fallback:
            trial = self._db.copy()
            if removed is not None:
                trial.relation(relation_name).discard(removed)
            if added is not None:
                trial.relation(relation_name).add(added)
            for dep in self._fallback:
                if not dep.holds_on(trial):
                    return False
        return True
