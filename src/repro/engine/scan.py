"""Compiled scan tasks: positional pattern evaluation over partitions.

A :class:`ScanTask` is one tableau row (or FD / eCFD) compiled against a
concrete relation schema: attribute names are resolved to value positions
once, so the per-group inner loop is pure tuple indexing.  FD, CFD and
eCFD expose ``scan_tasks(schema)``; both their own ``violations`` methods
and the batch executor evaluate through the same compiled tasks, so the
fast path and the facade cannot diverge.

Task anatomy:

* ``lookup_key`` — set when the pattern is constant on the whole scan
  signature: the single matching partition is a hash lookup, no sweep;
* ``key_constants`` / ``match_fn`` — for swept patterns, how to decide
  from a partition *key* alone whether the group participates (pattern
  matching on X depends only on t[X]);
* ``skip_singletons`` — true when the row can only produce pair
  violations, letting the sweep skip size-1 groups without a call;
* ``evaluate(group, out)`` — append the row's violations within one
  matching partition to ``out``;
* ``single(t, out)`` / ``pair(first, other, out)`` — the same semantics
  decomposed per tuple: every FD/CFD/eCFD violation is either a
  *single-tuple* check on one tuple or a *first-vs-other* pair check
  against the partition's first tuple, and ``evaluate`` is exactly "run
  ``single`` on every member, then ``pair`` on every non-first member".
  The delta engine (:mod:`repro.engine.delta`) uses the decomposition to
  update a partition's violations in O(1) per edited tuple instead of
  re-sweeping the partition.
* ``columnar`` — an optional :class:`ColumnarSpec` declaring the same
  semantics a third way, as primitive checks over encoded columns, so the
  vectorized kernels (:mod:`repro.engine.kernels`) can decide *which*
  partitions could violate without touching a ``Tuple``; tasks without a
  spec (denial / custom constraints) keep the per-tuple sweep.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple as PyTuple

__all__ = ["ColumnarSpec", "ScanTask", "run_scan_tasks"]


class ColumnarSpec:
    """A task's semantics as primitive checks over encoded columns.

    Every FD/CFD/eCFD task decomposes into:

    * ``pair_attrs`` — attributes whose disagreement with the partition's
      first tuple is a pair violation (the embedded FD's RHS);
    * ``singles`` — per-row checks: ``("eq", attr, c)`` flags rows whose
      value differs from the constant ``c``; ``("set", attr, values,
      negated)`` flags rows failing the eCFD set pattern;
    * ``key_checks`` — which partitions participate, decided from the key
      alone: ``("eq", i, c)`` requires signature position ``i`` to equal
      ``c``; ``("set", i, values, negated)`` applies a set pattern.

    Specs are value-hashable so kernel results can be cached per
    (signature, spec) across recompiled task closures.
    """

    __slots__ = ("pair_attrs", "singles", "key_checks", "_key")

    def __init__(
        self,
        pair_attrs: Sequence[str] = (),
        singles: Sequence[tuple] = (),
        key_checks: Sequence[tuple] = (),
    ):
        self.pair_attrs: PyTuple[str, ...] = tuple(pair_attrs)
        self.singles: PyTuple[tuple, ...] = tuple(singles)
        self.key_checks: PyTuple[tuple, ...] = tuple(key_checks)
        self._key = (self.pair_attrs, self.singles, self.key_checks)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnarSpec) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        return (
            f"ColumnarSpec(pair={list(self.pair_attrs)}, "
            f"{len(self.singles)} singles, {len(self.key_checks)} key checks)"
        )


class ScanTask:
    """One compiled pattern row ready to run against shared partitions."""

    __slots__ = (
        "lookup_key",
        "key_constants",
        "match_fn",
        "skip_singletons",
        "evaluate",
        "single",
        "pair",
        "columnar",
    )

    def __init__(
        self,
        lookup_key: Optional[tuple],
        key_constants: Sequence[PyTuple[int, object]],
        evaluate: Callable[[Sequence, list], None],
        skip_singletons: bool = False,
        match_fn: Optional[Callable[[tuple], bool]] = None,
        single: Optional[Callable[[object, list], None]] = None,
        pair: Optional[Callable[[object, object, list], None]] = None,
        columnar: Optional[ColumnarSpec] = None,
    ):
        self.lookup_key = lookup_key
        self.key_constants = list(key_constants)
        self.match_fn = match_fn
        self.skip_singletons = skip_singletons
        self.evaluate = evaluate
        # Per-tuple decomposition (see module docstring); both present ⟺
        # the task supports incremental partition maintenance.
        self.single = single
        self.pair = pair
        # Encoded-column decomposition; present ⟺ the vectorized kernels
        # can pre-filter partitions for this task.
        self.columnar = columnar

    @property
    def supports_incremental(self) -> bool:
        return self.single is not None and self.pair is not None

    def matches(self, key: tuple) -> bool:
        """Does the partition with this key participate in the row?"""
        if self.match_fn is not None:
            return self.match_fn(key)
        for position, value in self.key_constants:
            if key[position] != value:
                return False
        return True

    def __repr__(self) -> str:
        if self.lookup_key is not None:
            return f"ScanTask(lookup {self.lookup_key})"
        return (
            f"ScanTask(sweep, {len(self.key_constants)} key constants, "
            f"skip_singletons={self.skip_singletons})"
        )


def run_scan_tasks(
    groups: Mapping[tuple, Sequence], tasks: Iterable[ScanTask]
) -> Iterator:
    """Drive compiled tasks over one partition map, yielding violations.

    This is the single-dependency sweep driver shared by
    ``FD/CFD/ECFD.violations`` (the batch executor interleaves many
    dependencies' tasks per partition, so it keeps its own loop).  Lookup
    tasks resolve by hash probe; sweep tasks visit each partition key once,
    skipping singleton groups for pair-only rows.  Yields group-by-group so
    ``holds_on`` short-circuits at the first violating partition.
    """
    for task in tasks:
        if task.lookup_key is not None:
            group = groups.get(task.lookup_key)
            if group:
                out: list = []
                task.evaluate(group, out)
                yield from out
            continue
        for key, group in groups.items():
            if len(group) < 2 and task.skip_singletons:
                continue
            if task.matches(key):
                out = []
                task.evaluate(group, out)
                if out:
                    yield from out
