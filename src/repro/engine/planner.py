"""Batch detection planning: group dependencies by shared scan signatures.

Given an arbitrary mix of dependencies, the planner decides which index
each one needs and groups them so every index is built exactly once:

* FDs, CFDs and eCFDs over the same relation with the same canonical LHS
  signature form one :class:`ScanGroup` — the relation is partitioned once
  on that signature and every pattern tuple of every member is evaluated
  against the shared partitions (the in-memory analogue of the paper's
  merged detection queries);
* INDs and CINDs with the same target (relation, Yp, Y) signature form one
  :class:`InclusionGroup` — the target key index is built once and reused
  across every tableau row of every member;
* anything else (denial constraints, MDs, …) goes to the fallback list and
  runs through its own ``violations`` method.

The plan records each dependency's position in the input so the executor
can emit violations grouped per dependency in input order, exactly like the
naive per-dependency loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple as PyTuple

from repro.deps.base import Dependency
from repro.engine.indexes import canonical_signature

__all__ = ["ScanGroup", "InclusionGroup", "DetectionPlan", "plan_detection"]


class ScanGroup:
    """Dependencies sharing one (relation, canonical-LHS) partition."""

    __slots__ = ("relation_name", "signature", "members")

    def __init__(self, relation_name: str, signature: PyTuple[str, ...]):
        self.relation_name = relation_name
        self.signature = signature
        self.members: List[PyTuple[int, Dependency]] = []

    def __repr__(self) -> str:
        return (
            f"ScanGroup({self.relation_name} on {list(self.signature)}, "
            f"{len(self.members)} deps)"
        )


class InclusionGroup:
    """Inclusion dependencies sharing one target key index.

    ``group_attrs`` is the Yp pattern signature (empty for plain INDs) and
    ``key_attrs`` the Y attribute list, in declared order — inclusion keys
    are positional (X↔Y correspondence), so order is part of the signature.
    """

    __slots__ = ("relation_name", "group_attrs", "key_attrs", "members")

    def __init__(
        self,
        relation_name: str,
        group_attrs: PyTuple[str, ...],
        key_attrs: PyTuple[str, ...],
    ):
        self.relation_name = relation_name
        self.group_attrs = group_attrs
        self.key_attrs = key_attrs
        self.members: List[PyTuple[int, Dependency]] = []

    def __repr__(self) -> str:
        return (
            f"InclusionGroup({self.relation_name}[{list(self.key_attrs)}] "
            f"grouped by {list(self.group_attrs)}, {len(self.members)} deps)"
        )


class DetectionPlan:
    """The grouped execution plan for one batch of dependencies."""

    def __init__(self, dependencies: Sequence[Dependency]):
        self.dependencies: List[Dependency] = list(dependencies)
        self.scan_groups: List[ScanGroup] = []
        self.inclusion_groups: List[InclusionGroup] = []
        self.fallback: List[PyTuple[int, Dependency]] = []

    @property
    def shared_scans(self) -> int:
        """How many per-dependency scans the plan merges away."""
        return sum(len(g.members) - 1 for g in self.scan_groups) + sum(
            len(g.members) - 1 for g in self.inclusion_groups
        )

    def describe(self) -> str:
        lines = [
            f"DetectionPlan: {len(self.dependencies)} dependencies, "
            f"{len(self.scan_groups)} scan groups, "
            f"{len(self.inclusion_groups)} inclusion groups, "
            f"{len(self.fallback)} fallback"
        ]
        for g in self.scan_groups:
            names = [getattr(d, "name", repr(d)) for _, d in g.members]
            lines.append(
                f"  scan {g.relation_name} ⊣ {list(g.signature)}: {names}"
            )
        for g in self.inclusion_groups:
            names = [getattr(d, "name", repr(d)) for _, d in g.members]
            lines.append(
                f"  inclusion into {g.relation_name}[{list(g.key_attrs)}; "
                f"{list(g.group_attrs)}]: {names}"
            )
        for _, d in self.fallback:
            lines.append(f"  fallback: {getattr(d, 'name', repr(d))}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"DetectionPlan({len(self.dependencies)} deps → "
            f"{len(self.scan_groups)} scans + {len(self.inclusion_groups)} "
            f"inclusions + {len(self.fallback)} fallback)"
        )


def plan_detection(dependencies: Iterable[Dependency]) -> DetectionPlan:
    """Group the dependency set by the indexes each member needs."""
    from repro.cfd.ecfd import ECFD
    from repro.cfd.model import CFD
    from repro.cind.model import CIND
    from repro.deps.fd import FD
    from repro.deps.ind import IND

    plan = DetectionPlan(list(dependencies))
    scans: Dict[PyTuple[str, PyTuple[str, ...]], ScanGroup] = {}
    inclusions: Dict[
        PyTuple[str, PyTuple[str, ...], PyTuple[str, ...]], InclusionGroup
    ] = {}

    def scan_group(relation: str, signature: PyTuple[str, ...]) -> ScanGroup:
        key = (relation, signature)
        group = scans.get(key)
        if group is None:
            group = scans[key] = ScanGroup(relation, signature)
            plan.scan_groups.append(group)
        return group

    def inclusion_group(
        relation: str,
        group_attrs: PyTuple[str, ...],
        key_attrs: PyTuple[str, ...],
    ) -> InclusionGroup:
        key = (relation, group_attrs, key_attrs)
        group = inclusions.get(key)
        if group is None:
            group = inclusions[key] = InclusionGroup(
                relation, group_attrs, key_attrs
            )
            plan.inclusion_groups.append(group)
        return group

    for position, dep in enumerate(plan.dependencies):
        if isinstance(dep, (CFD, ECFD, FD)):
            signature = canonical_signature(dep.lhs)
            scan_group(dep.relation_name, signature).members.append(
                (position, dep)
            )
        elif isinstance(dep, CIND):
            inclusion_group(
                dep.rhs_relation, dep.rhs_pattern_attrs, dep.rhs_attrs
            ).members.append((position, dep))
        elif isinstance(dep, IND):
            inclusion_group(dep.rhs_relation, (), dep.rhs_attrs).members.append(
                (position, dep)
            )
        else:
            plan.fallback.append((position, dep))
    return plan
