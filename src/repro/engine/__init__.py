"""Indexed execution engine: one shared scan layer under every detector.

Layering (see ``docs/engine.md``):

* **storage** — :class:`~repro.relational.instance.RelationInstance` owns a
  mutation version counter and lazily-built hash indexes
  (:mod:`repro.engine.indexes`);
* **planning** — :mod:`repro.engine.planner` groups a dependency set by the
  indexes its members share (relation + canonical LHS signature for
  FD/CFD/eCFD, target key signature for IND/CIND);
* **execution** — :mod:`repro.engine.executor` partitions each relation
  once per signature and evaluates every pattern tuple of every member
  against the shared partitions;
* **incremental** — :mod:`repro.engine.incremental` re-checks consistency
  after single-tuple edits touching only the affected partitions;
* **delta** — :mod:`repro.engine.delta` maintains the full violation set
  under batched inserts/deletes/cell-updates (:class:`Changeset`),
  returning added/removed violations per batch (used by repair and the
  streaming workload);
* **parallel** — :mod:`repro.engine.parallel` shards every scan and
  inclusion group by a stable hash of its key columns, fans the shard
  jobs out over a ``multiprocessing`` pool (deterministic in-process
  fallback), and merges per-shard violations canonically; the delta
  layer reuses the same sharding to keep shard-local state;
* **reference** — :mod:`repro.engine.naive` keeps the original full-scan
  detectors as the correctness oracle and benchmark baseline.
"""

from repro.engine.delta import (
    Changeset,
    DeltaEngine,
    DeltaStats,
    StaleEngineError,
    ViolationDelta,
    violation_multiset,
)
from repro.engine.executor import (
    ExecutionStats,
    detect_violations_indexed,
    execute_plan,
)
from repro.engine.incremental import IncrementalChecker
from repro.engine.indexes import IndexStats, RelationIndexes, canonical_signature
from repro.engine.naive import detect_violations_naive, naive_violations
from repro.engine.parallel import (
    ParallelExecutor,
    ParallelStats,
    default_shards,
    detect_violations_parallel,
    resolve_shards,
    stable_shard,
)
from repro.engine.planner import (
    DetectionPlan,
    InclusionGroup,
    ScanGroup,
    plan_detection,
)
from repro.engine.scan import ScanTask, run_scan_tasks

__all__ = [
    "Changeset",
    "DeltaEngine",
    "DeltaStats",
    "DetectionPlan",
    "ExecutionStats",
    "StaleEngineError",
    "ViolationDelta",
    "InclusionGroup",
    "IncrementalChecker",
    "IndexStats",
    "ParallelExecutor",
    "ParallelStats",
    "RelationIndexes",
    "ScanGroup",
    "ScanTask",
    "canonical_signature",
    "default_shards",
    "detect_violations_indexed",
    "detect_violations_naive",
    "detect_violations_parallel",
    "execute_plan",
    "naive_violations",
    "plan_detection",
    "resolve_shards",
    "run_scan_tasks",
    "stable_shard",
    "violation_multiset",
]
