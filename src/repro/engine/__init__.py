"""Indexed execution engine: one shared scan layer under every detector.

Layering (see ``docs/engine.md``):

* **storage** — :class:`~repro.relational.instance.RelationInstance` owns a
  mutation version counter and lazily-built hash indexes
  (:mod:`repro.engine.indexes`);
* **planning** — :mod:`repro.engine.planner` groups a dependency set by the
  indexes its members share (relation + canonical LHS signature for
  FD/CFD/eCFD, target key signature for IND/CIND);
* **execution** — :mod:`repro.engine.executor` partitions each relation
  once per signature and evaluates every pattern tuple of every member
  against the shared partitions;
* **incremental** — :mod:`repro.engine.incremental` re-checks consistency
  after single-tuple edits touching only the affected partitions;
* **delta** — :mod:`repro.engine.delta` maintains the full violation set
  under batched inserts/deletes/cell-updates (:class:`Changeset`),
  returning added/removed violations per batch (used by repair and the
  streaming workload);
* **reference** — :mod:`repro.engine.naive` keeps the original full-scan
  detectors as the correctness oracle and benchmark baseline.
"""

from repro.engine.delta import (
    Changeset,
    DeltaEngine,
    DeltaStats,
    StaleEngineError,
    ViolationDelta,
    violation_multiset,
)
from repro.engine.executor import (
    ExecutionStats,
    detect_violations_indexed,
    execute_plan,
)
from repro.engine.incremental import IncrementalChecker
from repro.engine.indexes import IndexStats, RelationIndexes, canonical_signature
from repro.engine.naive import detect_violations_naive, naive_violations
from repro.engine.planner import (
    DetectionPlan,
    InclusionGroup,
    ScanGroup,
    plan_detection,
)
from repro.engine.scan import ScanTask, run_scan_tasks

__all__ = [
    "Changeset",
    "DeltaEngine",
    "DeltaStats",
    "DetectionPlan",
    "ExecutionStats",
    "StaleEngineError",
    "ViolationDelta",
    "InclusionGroup",
    "IncrementalChecker",
    "IndexStats",
    "RelationIndexes",
    "ScanGroup",
    "ScanTask",
    "canonical_signature",
    "detect_violations_indexed",
    "detect_violations_naive",
    "execute_plan",
    "naive_violations",
    "plan_detection",
    "run_scan_tasks",
    "violation_multiset",
]
