"""Reference scan-based detectors (the pre-engine algorithms).

These are the original per-dependency, per-tableau-row full-scan detectors,
kept verbatim as the correctness oracle for the indexed engine: property
tests assert that :func:`repro.engine.executor.execute_plan` returns the
exact same violation set, and ``benchmarks/bench_engine_scaling.py`` uses
them as the baseline for the asymptotic comparison.

Do not use these in production paths — ``Dependency.violations`` is the
indexed implementation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.deps.base import Dependency, Violation
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple

__all__ = ["naive_violations", "detect_violations_naive"]


def _cfd_violations(cfd, db: DatabaseInstance) -> Iterator[Violation]:
    relation = db.relation(cfd.relation_name)
    lhs = list(cfd.lhs)
    rhs = list(cfd.rhs)
    for tp in cfd.tableau:
        # Select Dtp = tuples matching tp on X — one full scan per row.
        selected = [t for t in relation if tp.matches_tuple(t, lhs)]
        rhs_constants = tp.constants_on(rhs)
        for t in selected:
            bad = {a: c for a, c in rhs_constants.items() if t[a] != c}
            if bad:
                yield Violation(
                    cfd,
                    [(cfd.relation_name, t)],
                    f"{cfd.name}: tuple matches {tp!r} on LHS but has "
                    f"{ {a: t[a] for a in bad} } instead of {bad}",
                )
        groups: Dict[tuple, List[Tuple]] = {}
        for t in selected:
            groups.setdefault(t[lhs], []).append(t)
        for group in groups.values():
            if len(group) < 2:
                continue
            first = group[0]
            for other in group[1:]:
                if first[rhs] != other[rhs]:
                    yield Violation(
                        cfd,
                        [(cfd.relation_name, first), (cfd.relation_name, other)],
                        f"{cfd.name}: tuples agree on {lhs} (matching "
                        f"{tp!r}) but differ on {rhs}",
                    )


def _ecfd_violations(ecfd, db: DatabaseInstance) -> Iterator[Violation]:
    from repro.cfd.ecfd import _matches

    relation = db.relation(ecfd.relation_name)
    selected = [t for t in relation if ecfd.lhs_matches(t)]
    for t in selected:
        bad = [a for a in ecfd.rhs if not _matches(t[a], ecfd.pattern[a])]
        if bad:
            yield Violation(
                ecfd,
                [(ecfd.relation_name, t)],
                f"{ecfd.name}: RHS pattern fails on {bad}",
            )
    groups: Dict[tuple, List[Tuple]] = {}
    for t in selected:
        groups.setdefault(t[list(ecfd.lhs)], []).append(t)
    for group in groups.values():
        first = group[0]
        for other in group[1:]:
            if first[list(ecfd.rhs)] != other[list(ecfd.rhs)]:
                yield Violation(
                    ecfd,
                    [(ecfd.relation_name, first), (ecfd.relation_name, other)],
                    f"{ecfd.name}: agree on {list(ecfd.lhs)} but differ on "
                    f"{list(ecfd.rhs)}",
                )


def _fd_violations(fd, db: DatabaseInstance) -> Iterator[Violation]:
    relation = db.relation(fd.relation_name)
    for _, group in relation.group_by(fd.lhs).items():
        if len(group) < 2:
            continue
        first = group[0]
        for other in group[1:]:
            if first[list(fd.rhs)] != other[list(fd.rhs)]:
                yield Violation(
                    fd,
                    [(fd.relation_name, first), (fd.relation_name, other)],
                    f"tuples agree on {list(fd.lhs)} but differ on {list(fd.rhs)}",
                )


def _ind_violations(ind, db: DatabaseInstance) -> Iterator[Violation]:
    target = {t[list(ind.rhs_attrs)] for t in db.relation(ind.rhs_relation)}
    for t in db.relation(ind.lhs_relation):
        if t[list(ind.lhs_attrs)] not in target:
            yield Violation(
                ind,
                [(ind.lhs_relation, t)],
                f"no {ind.rhs_relation} tuple matches on "
                f"{list(ind.rhs_attrs)}",
            )


def _cind_violations(cind, db: DatabaseInstance) -> Iterator[Violation]:
    source = db.relation(cind.lhs_relation)
    target = db.relation(cind.rhs_relation)
    for row in cind.tableau:
        lhs_pat = cind.lhs_pattern(row)
        rhs_pat = cind.rhs_pattern(row)
        # Rebuilds the target index once per tableau row — the hotspot the
        # engine removes.
        matching_keys = {
            t2[list(cind.rhs_attrs)]
            for t2 in target
            if all(t2[a] == v for a, v in rhs_pat.items())
        }
        for t1 in source:
            if not all(t1[a] == v for a, v in lhs_pat.items()):
                continue
            if t1[list(cind.lhs_attrs)] not in matching_keys:
                yield Violation(
                    cind,
                    [(cind.lhs_relation, t1)],
                    f"{cind.name}: no {cind.rhs_relation} tuple matches on "
                    f"{list(cind.rhs_attrs)} with pattern {rhs_pat}",
                )


def naive_violations(dep: Dependency, db: DatabaseInstance) -> Iterator[Violation]:
    """The original full-scan detector for ``dep`` (falls back to
    ``dep.violations`` for dependency classes without a scan baseline)."""
    from repro.cfd.ecfd import ECFD
    from repro.cfd.model import CFD
    from repro.cind.model import CIND
    from repro.deps.fd import FD
    from repro.deps.ind import IND

    if isinstance(dep, CFD):
        return _cfd_violations(dep, db)
    if isinstance(dep, ECFD):
        return _ecfd_violations(dep, db)
    if isinstance(dep, FD):
        return _fd_violations(dep, db)
    if isinstance(dep, CIND):
        return _cind_violations(dep, db)
    if isinstance(dep, IND):
        return _ind_violations(dep, db)
    return dep.violations(db)


def detect_violations_naive(db: DatabaseInstance, dependencies: Iterable[Dependency]):
    """Per-dependency full scans aggregated into a DetectionReport."""
    from repro.cfd.detect import DetectionReport

    found: List[Violation] = []
    for dep in dependencies:
        found.extend(naive_violations(dep, db))
    return DetectionReport(found)
