"""Lazily-built, mutation-invalidated hash indexes over relation instances.

This is the storage layer of the indexed execution engine: every detector
(FD, CFD, eCFD, IND, CIND, MD blocking) asks the relation for the index it
needs instead of re-scanning tuples.  Indexes are cached per
:class:`~repro.relational.instance.RelationInstance` and keyed by the
attribute signature, so two dependencies sharing a left-hand side share one
partition of the data — the in-memory analogue of the paper's merged
SQL detection queries, which touch the relation a fixed number of times no
matter how many pattern tuples the tableaux hold.

Invalidation is by version counter: ``RelationInstance`` bumps ``version``
on every effective ``add``/``remove``/``discard``, and the index cache
drops everything the next time it is consulted after a mutation.  ``copy``
and ``filter`` build fresh instances, which start with empty caches.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple as PyTuple

from repro.relational.tuples import Tuple

__all__ = ["canonical_signature", "key_getter", "IndexStats", "RelationIndexes"]


def canonical_signature(attributes: Iterable[str]) -> PyTuple[str, ...]:
    """Order-insensitive attribute signature (sorted, duplicate-free).

    Partitioning on ``{A, B}`` and on ``{B, A}`` yields the same groups, so
    every engine component normalizes attribute sets to this form before
    asking for an index — that is what lets dependencies with permuted
    left-hand sides share one partition.
    """
    return tuple(sorted(dict.fromkeys(attributes)))


def key_getter(schema: Any, attributes: Sequence[str]):
    """Compile ``values → key tuple`` projection for ``attributes``.

    The single authority for key shape across the engine: every index key
    and every membership probe must be built by this helper so they agree.
    ``itemgetter`` with one index returns a scalar, so the single-attribute
    case wraps it to keep keys uniformly tuples; the empty signature maps
    everything to ``()`` (empty-LHS dependencies: one global group).
    """
    positions = [schema.index_of(a) for a in attributes]
    if not positions:
        return lambda values: ()
    if len(positions) == 1:
        get = itemgetter(positions[0])
        return lambda values: (get(values),)
    return itemgetter(*positions)


class IndexStats:
    """Build/hit counters, exposed for tests and plan introspection."""

    __slots__ = ("builds", "hits", "invalidations")

    def __init__(self) -> None:
        self.builds = 0
        self.hits = 0
        self.invalidations = 0

    def __repr__(self) -> str:
        return (
            f"IndexStats(builds={self.builds}, hits={self.hits}, "
            f"invalidations={self.invalidations})"
        )


class RelationIndexes:
    """Per-instance cache of hash indexes and columnar projections.

    All returned structures are **read-only by contract**: they are shared
    between every detector that asks for the same signature, and mutating
    them would corrupt later lookups.  Groups preserve relation insertion
    order (first-seen key order, insertion order within each group), which
    keeps violation reports deterministic.
    """

    def __init__(self, relation: Any):
        self._relation = relation
        self._version = relation.version
        self._groups: Dict[PyTuple[str, ...], Dict[tuple, List[Tuple]]] = {}
        self._key_sets: Dict[PyTuple[str, ...], FrozenSet[tuple]] = {}
        self._grouped_keys: Dict[
            PyTuple[PyTuple[str, ...], PyTuple[str, ...]],
            Dict[tuple, FrozenSet[tuple]],
        ] = {}
        self._projections: Dict[PyTuple[str, ...], List[tuple]] = {}
        self.stats = IndexStats()

    def _sync(self) -> None:
        if self._version != self._relation.version:
            self._groups.clear()
            self._key_sets.clear()
            self._grouped_keys.clear()
            self._projections.clear()
            self._version = self._relation.version
            self.stats.invalidations += 1

    def _key_getter(self, attrs: PyTuple[str, ...]):
        return key_getter(self._relation.schema, attrs)

    def group_index(self, attributes: Sequence[str]) -> Mapping[tuple, Sequence[Tuple]]:
        """Hash partition: projection on ``attributes`` → tuples with it."""
        self._sync()
        attrs = tuple(attributes)
        groups = self._groups.get(attrs)
        if groups is None:
            self.stats.builds += 1
            key_of = self._key_getter(attrs)
            groups = {}
            setdefault = groups.setdefault
            for t in self._relation:
                setdefault(key_of(t.values()), []).append(t)
            self._groups[attrs] = groups
        else:
            self.stats.hits += 1
        return groups

    def key_set(self, attributes: Sequence[str]) -> FrozenSet[tuple]:
        """Distinct projections on ``attributes`` (IND/CIND membership)."""
        self._sync()
        attrs = tuple(attributes)
        keys = self._key_sets.get(attrs)
        if keys is None:
            self.stats.builds += 1
            key_of = self._key_getter(attrs)
            keys = frozenset(key_of(t.values()) for t in self._relation)
            self._key_sets[attrs] = keys
        else:
            self.stats.hits += 1
        return keys

    def grouped_key_sets(
        self, group_attributes: Sequence[str], key_attributes: Sequence[str]
    ) -> Mapping[tuple, FrozenSet[tuple]]:
        """Per ``group_attributes`` value, the key set on ``key_attributes``.

        This is the CIND target index: grouped by the Yp projection, keyed
        by the Y projection, built once per (relation, Yp, Y) and reused
        across every tableau row of every CIND with that signature.
        """
        self._sync()
        cache_key = (tuple(group_attributes), tuple(key_attributes))
        grouped = self._grouped_keys.get(cache_key)
        if grouped is None:
            self.stats.builds += 1
            group_of = self._key_getter(cache_key[0])
            key_of = self._key_getter(cache_key[1])
            raw: Dict[tuple, set] = {}
            for t in self._relation:
                values = t.values()
                raw.setdefault(group_of(values), set()).add(key_of(values))
            grouped = {k: frozenset(v) for k, v in raw.items()}
            self._grouped_keys[cache_key] = grouped
        else:
            self.stats.hits += 1
        return grouped

    def projection(self, attributes: Sequence[str]) -> Sequence[tuple]:
        """Columnar projection: one value tuple per relation tuple, in order."""
        self._sync()
        attrs = tuple(attributes)
        column = self._projections.get(attrs)
        if column is None:
            self.stats.builds += 1
            key_of = self._key_getter(attrs)
            column = [key_of(t.values()) for t in self._relation]
            self._projections[attrs] = column
        else:
            self.stats.hits += 1
        return column

    def __repr__(self) -> str:
        return (
            f"RelationIndexes({self._relation.schema.name}@v{self._version}, "
            f"{len(self._groups)} groups, {len(self._key_sets)} key sets, "
            f"{len(self._grouped_keys)} grouped key sets, {self.stats!r})"
        )
