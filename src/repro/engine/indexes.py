"""Lazily-built, mutation-invalidated hash indexes over relation instances.

This is the storage layer of the indexed execution engine: every detector
(FD, CFD, eCFD, IND, CIND, MD blocking) asks the relation for the index it
needs instead of re-scanning tuples.  Indexes are cached per
:class:`~repro.relational.instance.RelationInstance` and keyed by the
attribute signature, so two dependencies sharing a left-hand side share one
partition of the data — the in-memory analogue of the paper's merged
SQL detection queries, which touch the relation a fixed number of times no
matter how many pattern tuples the tableaux hold.

Invalidation is by version counter: ``RelationInstance`` bumps ``version``
on every effective ``add``/``remove``/``discard``, and the index cache
drops everything the next time it is consulted after a mutation.  ``copy``
and ``filter`` build fresh instances, which start with empty caches.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple as PyTuple

from repro.engine import kernels
from repro.relational.tuples import Tuple

__all__ = ["canonical_signature", "key_getter", "IndexStats", "RelationIndexes"]


def canonical_signature(attributes: Iterable[str]) -> PyTuple[str, ...]:
    """Order-insensitive attribute signature (sorted, duplicate-free).

    Partitioning on ``{A, B}`` and on ``{B, A}`` yields the same groups, so
    every engine component normalizes attribute sets to this form before
    asking for an index — that is what lets dependencies with permuted
    left-hand sides share one partition.
    """
    return tuple(sorted(dict.fromkeys(attributes)))


def key_getter(schema: Any, attributes: Sequence[str]):
    """Compile ``values → key tuple`` projection for ``attributes``.

    The single authority for key shape across the engine: every index key
    and every membership probe must be built by this helper so they agree.
    ``itemgetter`` with one index returns a scalar, so the single-attribute
    case wraps it to keep keys uniformly tuples; the empty signature maps
    everything to ``()`` (empty-LHS dependencies: one global group).
    """
    positions = [schema.index_of(a) for a in attributes]
    if not positions:
        return lambda values: ()
    if len(positions) == 1:
        get = itemgetter(positions[0])
        return lambda values: (get(values),)
    return itemgetter(*positions)


def _code_rows(store: Any, schema: Any, attrs: Sequence[str]):
    """Encoded key tuples per live row, in insertion order.

    Returns ``(positions, rows)`` where each row is the tuple of interned
    codes on ``attrs`` — the columnar analogue of ``key_of(t.values())``,
    built from the code columns without materializing any ``Tuple``.
    Codes are equality-congruent with values, so deduplicating or grouping
    on code tuples decides exactly what value tuples would.
    """
    positions = [schema.index_of(a) for a in attrs]
    columns = [store.columns[p].tolist() for p in positions]
    if store.dead:
        alive = store.alive
        live = [i for i in range(store.n_rows) if alive[i]]
        if not columns:
            return positions, [()] * len(live)
        return positions, [tuple(col[i] for col in columns) for i in live]
    if not columns:
        return positions, [()] * store.n_rows
    if len(columns) == 1:
        return positions, [(c,) for c in columns[0]]
    return positions, list(zip(*columns))


def _decoder(store: Any, positions: Sequence[int]):
    """Compile ``code tuple → value tuple`` for one projection."""
    tables = [store.decode[p] for p in positions]

    def decode(codes: tuple) -> tuple:
        return tuple(table[c] for table, c in zip(tables, codes))

    return decode


class IndexStats:
    """Build/hit counters, exposed for tests and plan introspection."""

    __slots__ = ("builds", "hits", "invalidations")

    def __init__(self) -> None:
        self.builds = 0
        self.hits = 0
        self.invalidations = 0

    def __repr__(self) -> str:
        return (
            f"IndexStats(builds={self.builds}, hits={self.hits}, "
            f"invalidations={self.invalidations})"
        )


class RelationIndexes:
    """Per-instance cache of hash indexes and columnar projections.

    All returned structures are **read-only by contract**: they are shared
    between every detector that asks for the same signature, and mutating
    them would corrupt later lookups.  Groups preserve relation insertion
    order (first-seen key order, insertion order within each group), which
    keeps violation reports deterministic.
    """

    def __init__(self, relation: Any):
        self._relation = relation
        self._version = relation.version
        self._groups: Dict[PyTuple[str, ...], Dict[tuple, List[Tuple]]] = {}
        self._key_sets: Dict[PyTuple[str, ...], FrozenSet[tuple]] = {}
        self._grouped_keys: Dict[
            PyTuple[PyTuple[str, ...], PyTuple[str, ...]],
            Dict[tuple, FrozenSet[tuple]],
        ] = {}
        self._projections: Dict[PyTuple[str, ...], List[tuple]] = {}
        self._layouts: Dict[PyTuple[str, ...], Any] = {}
        self._sweeps: Dict[tuple, Any] = {}
        self._grouped_counts: Dict[tuple, Dict[tuple, Dict[tuple, int]]] = {}
        self.stats = IndexStats()

    def _sync(self) -> None:
        if self._version != self._relation.version:
            self._groups.clear()
            self._key_sets.clear()
            self._grouped_keys.clear()
            self._projections.clear()
            self._layouts.clear()
            self._sweeps.clear()
            self._grouped_counts.clear()
            self._version = self._relation.version
            self.stats.invalidations += 1

    @property
    def _store(self) -> Any:
        return getattr(self._relation, "column_store", None)

    def _key_getter(self, attrs: PyTuple[str, ...]):
        return key_getter(self._relation.schema, attrs)

    def group_index(self, attributes: Sequence[str]) -> Mapping[tuple, Sequence[Tuple]]:
        """Hash partition: projection on ``attributes`` → tuples with it."""
        self._sync()
        attrs = tuple(attributes)
        groups = self._groups.get(attrs)
        if groups is None:
            self.stats.builds += 1
            key_of = self._key_getter(attrs)
            groups = {}
            setdefault = groups.setdefault
            for t in self._relation:
                setdefault(key_of(t.values()), []).append(t)
            self._groups[attrs] = groups
        else:
            self.stats.hits += 1
        return groups

    def key_set(self, attributes: Sequence[str]) -> FrozenSet[tuple]:
        """Distinct projections on ``attributes`` (IND/CIND membership)."""
        self._sync()
        attrs = tuple(attributes)
        keys = self._key_sets.get(attrs)
        if keys is None:
            self.stats.builds += 1
            store = self._store
            if store is not None:
                # Dedupe on code tuples, decode each distinct key once.
                positions, rows = _code_rows(store, self._relation.schema, attrs)
                decode = _decoder(store, positions)
                # repro: allow[REP001] — the set feeds a frozenset, so
                # iteration order cannot reach any output
                keys = frozenset(decode(codes) for codes in set(rows))
            else:
                key_of = self._key_getter(attrs)
                keys = frozenset(key_of(t.values()) for t in self._relation)
            self._key_sets[attrs] = keys
        else:
            self.stats.hits += 1
        return keys

    def grouped_key_sets(
        self, group_attributes: Sequence[str], key_attributes: Sequence[str]
    ) -> Mapping[tuple, FrozenSet[tuple]]:
        """Per ``group_attributes`` value, the key set on ``key_attributes``.

        This is the CIND target index: grouped by the Yp projection, keyed
        by the Y projection, built once per (relation, Yp, Y) and reused
        across every tableau row of every CIND with that signature.
        """
        self._sync()
        cache_key = (tuple(group_attributes), tuple(key_attributes))
        grouped = self._grouped_keys.get(cache_key)
        if grouped is None:
            self.stats.builds += 1
            store = self._store
            raw: Dict[tuple, set] = {}
            if store is not None:
                schema = self._relation.schema
                g_positions, g_rows = _code_rows(store, schema, cache_key[0])
                k_positions, k_rows = _code_rows(store, schema, cache_key[1])
                for g, k in zip(g_rows, k_rows):
                    raw.setdefault(g, set()).add(k)
                decode_g = _decoder(store, g_positions)
                decode_k = _decoder(store, k_positions)
                grouped = {
                    decode_g(g): frozenset(decode_k(k) for k in keys)
                    for g, keys in raw.items()
                }
            else:
                group_of = self._key_getter(cache_key[0])
                key_of = self._key_getter(cache_key[1])
                for t in self._relation:
                    values = t.values()
                    raw.setdefault(group_of(values), set()).add(key_of(values))
                grouped = {k: frozenset(v) for k, v in raw.items()}
            self._grouped_keys[cache_key] = grouped
        else:
            self.stats.hits += 1
        return grouped

    def projection(self, attributes: Sequence[str]) -> Sequence[tuple]:
        """Columnar projection: one value tuple per relation tuple, in order."""
        self._sync()
        attrs = tuple(attributes)
        column = self._projections.get(attrs)
        if column is None:
            self.stats.builds += 1
            store = self._store
            if store is not None:
                positions, rows = _code_rows(store, self._relation.schema, attrs)
                decode = _decoder(store, positions)
                column = [decode(codes) for codes in rows]
            else:
                key_of = self._key_getter(attrs)
                column = [key_of(t.values()) for t in self._relation]
            self._projections[attrs] = column
        else:
            self.stats.hits += 1
        return column

    def group_layout(self, attributes: Sequence[str]) -> Optional[Any]:
        """Vectorized partition layout for one signature, or ``None``.

        Available only on columnar stores with numpy present; callers fall
        back to :meth:`group_index` otherwise.  A layout build counts as
        one index build — it plays the same role as the hash partition, so
        the build/hit accounting (and the tests pinning it) carry over.
        """
        self._sync()
        store = self._store
        if store is None or not kernels.AVAILABLE:
            return None
        attrs = tuple(attributes)
        layout = self._layouts.get(attrs)
        if layout is None:
            self.stats.builds += 1
            layout = kernels.build_layout(store, self._relation.schema, attrs)
            self._layouts[attrs] = layout
        else:
            self.stats.hits += 1
        return layout

    def task_flags(self, attributes: Sequence[str], spec: Any) -> Any:
        """Kernel flags for one ``ColumnarSpec`` (cached by spec value).

        Scan tasks are recompiled per detect, so the cache is keyed by the
        spec's *value*: a warm re-detect reuses the kernel result without
        touching the columns.  Deliberately outside the build/hit counters
        — it is derived from the layout, not an index of its own.
        """
        self._sync()
        attrs = tuple(attributes)
        cache_key = (attrs, spec)
        flags = self._sweeps.get(cache_key)
        if flags is None:
            layout = self._layouts.get(attrs)
            if layout is None:
                layout = self.group_layout(attrs)
            flags = kernels.task_flags(layout, self._relation.schema, spec)
            self._sweeps[cache_key] = flags
        return flags

    def grouped_key_counts(
        self, group_attributes: Sequence[str], key_attributes: Sequence[str]
    ) -> Mapping[tuple, Mapping[tuple, int]]:
        """Per ``group_attributes`` value, multiplicity of each key value.

        The delta engine's inclusion-state seed: like
        :meth:`grouped_key_sets` but counting rows per key, so incremental
        removals know when the last provider of a key disappears.  Returned
        mappings are shared and read-only; callers who mutate must copy.
        """
        self._sync()
        cache_key = (tuple(group_attributes), tuple(key_attributes))
        counts = self._grouped_counts.get(cache_key)
        if counts is None:
            store = self._store
            counts = {}
            if store is not None:
                schema = self._relation.schema
                g_positions, g_rows = _code_rows(store, schema, cache_key[0])
                k_positions, k_rows = _code_rows(store, schema, cache_key[1])
                raw: Dict[tuple, Dict[tuple, int]] = {}
                for g, k in zip(g_rows, k_rows):
                    bucket = raw.setdefault(g, {})
                    bucket[k] = bucket.get(k, 0) + 1
                decode_g = _decoder(store, g_positions)
                decode_k = _decoder(store, k_positions)
                counts = {
                    decode_g(g): {decode_k(k): n for k, n in kc.items()}
                    for g, kc in raw.items()
                }
            else:
                group_of = self._key_getter(cache_key[0])
                key_of = self._key_getter(cache_key[1])
                for t in self._relation:
                    values = t.values()
                    bucket = counts.setdefault(group_of(values), {})
                    key = key_of(values)
                    bucket[key] = bucket.get(key, 0) + 1
            self._grouped_counts[cache_key] = counts
        return counts

    def __repr__(self) -> str:
        return (
            f"RelationIndexes({self._relation.schema.name}@v{self._version}, "
            f"{len(self._groups)} groups, {len(self._key_sets)} key sets, "
            f"{len(self._grouped_keys)} grouped key sets, {self.stats!r})"
        )
