"""Vectorized scan kernels over encoded columns.

The indexed executor's inner loop — "for every partition, for every
pattern row, compare tuples" — is where the per-tuple interpreter constant
lives.  This module replaces that loop's *decision* work with array
arithmetic over the :class:`~repro.relational.columnar.ColumnStore` code
columns, leaving only the (sparse) violating partitions to be materialized
and evaluated through the ordinary compiled
:class:`~repro.engine.scan.ScanTask` path:

* :class:`GroupLayout` partitions a relation on a scan signature in one
  vectorized pass: rows are ranked by *first-seen* key order (the exact
  iteration order of the legacy hash partition), and per-group segment
  boundaries expose every column as ``column[order]`` slices;
* :func:`task_flags` evaluates one task's
  :class:`~repro.engine.scan.ColumnarSpec` against a layout and returns
  per-row violation flags plus the ranks of every group holding one:
  pair checks compare each segment against its first element, constant/set
  checks compare against interned codes (a constant never interned simply
  matches no code).

Because codes are equality-congruent with values, code comparisons decide
exactly what the decoded comparisons would — the flags are *exact*, not a
superset.  The executor materializes only flagged rows (plus each flagged
group's first tuple) and routes them through the original task's
``single``/``pair`` closures in legacy emission order — singles over the
group in insertion order, then pairs against the group's first tuple — so
violation objects, their order and their rendered bytes are identical to
the legacy sweep's.

Everything degrades gracefully: without numpy (``AVAILABLE`` is False) or
on object-storage instances the executor keeps the legacy per-tuple path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple as PyTuple

try:  # numpy is optional; kernels self-disable without it
    import numpy as _np
except Exception:  # pragma: no cover - exercised on numpy-less installs
    _np = None

AVAILABLE = _np is not None

__all__ = [
    "AVAILABLE",
    "GroupLayout",
    "TaskFlags",
    "build_layout",
    "flagged_rows",
    "task_flags",
]


def flagged_rows(layout: "GroupLayout", flags: "TaskFlags", rank: int):
    """Flagged original row ids within one group: ``(singles, pairs)``.

    Both lists are in insertion order; the group's first row can appear in
    ``singles`` but never in ``pairs`` (it cannot differ from itself).
    """
    start = int(layout.starts[rank])
    end = start + int(layout.sizes[rank])
    rows = layout.rows_sorted
    singles: list = []
    pairs: list = []
    if flags.single_rows is not None:
        singles = [int(r) for r in rows[start:end][flags.single_rows[start:end]]]
    if flags.pair_rows is not None:
        pairs = [int(r) for r in rows[start:end][flags.pair_rows[start:end]]]
    return singles, pairs


class GroupLayout:
    """One relation partitioned on one signature, in vector form.

    ``order`` sorts the live rows by group rank (stable, so insertion
    order survives within each group); ``starts``/``sizes`` delimit the
    per-group segments; ``key_codes[i]`` holds each group's code on the
    i-th signature attribute.  Group rank follows first-seen key order —
    the iteration order of the legacy dict-based partition.
    """

    __slots__ = (
        "store",
        "positions",
        "rows_sorted",
        "seg_starts",
        "seg_sizes",
        "perm",
        "starts",
        "sizes",
        "key_codes",
        "n_groups",
        "n_rows",
        "_sorted_columns",
        "_rank_index",
    )

    def __init__(self, store, positions, rows_sorted, seg_starts, seg_sizes, perm):
        self.store = store
        self.positions: PyTuple[int, ...] = positions
        self.rows_sorted = rows_sorted
        # Segments in sorted-key order (monotonic starts — the form
        # ``ufunc.reduceat`` needs) …
        self.seg_starts = seg_starts
        self.seg_sizes = seg_sizes
        # … and the permutation mapping first-seen group rank → segment,
        # giving rank-indexed views for the executor.
        self.perm = perm
        self.starts = seg_starts[perm]
        self.sizes = seg_sizes[perm]
        self.key_codes: List[Any] = []
        self.n_groups = len(seg_starts)
        self.n_rows = len(rows_sorted)
        self._sorted_columns: Dict[int, Any] = {}
        self._rank_index: Optional[Dict[tuple, int]] = None

    def sorted_column(self, position: int):
        """Codes of one attribute over live rows, in group-segment order."""
        column = self._sorted_columns.get(position)
        if column is None:
            full = _np.frombuffer(self.store.columns[position], dtype=_np.int64)
            column = full[self.rows_sorted]
            self._sorted_columns[position] = column
        return column

    def group_rows(self, rank: int) -> List[int]:
        """Original row indices of one group, in insertion order."""
        start = self.starts[rank]
        return [int(r) for r in self.rows_sorted[start : start + self.sizes[rank]]]

    def materialize(self, rank: int) -> list:
        """One group as ``Tuple`` objects (the report boundary)."""
        tuple_at = self.store.tuple_at
        return [tuple_at(row) for row in self.group_rows(rank)]

    def decoded_key(self, rank: int) -> tuple:
        """The group's partition key, decoded in signature order."""
        decode = self.store.decode
        return tuple(
            decode[p][int(codes[rank])]
            for p, codes in zip(self.positions, self.key_codes)
        )

    def rank_of_key(self, key: tuple) -> Optional[int]:
        """Rank of the group holding ``key`` (hash-lookup resolution).

        A key with any never-interned value has no group; otherwise the
        lazily-built code-key index answers in O(1).
        """
        encode = self.store.encode
        codes = []
        for p, value in zip(self.positions, key):
            code = encode[p].get(value)
            if code is None:
                return None
            codes.append(code)
        if self._rank_index is None:
            columns = [c.tolist() for c in self.key_codes]
            self._rank_index = {
                key_codes: rank
                for rank, key_codes in enumerate(zip(*columns))
            } if columns else {(): 0} if self.n_groups else {}
        return self._rank_index.get(tuple(codes))


def build_layout(store, schema, signature: Sequence[str]) -> Optional[GroupLayout]:
    """Vectorized partition of ``store`` on ``signature`` (one stable sort)."""
    if _np is None:
        return None
    positions = tuple(schema.index_of(a) for a in signature)
    n_physical = store.n_rows
    if store.dead:
        live = _np.frombuffer(bytes(store.alive), dtype=_np.uint8)
        rows = _np.flatnonzero(live).astype(_np.int64)
    else:
        rows = _np.arange(n_physical, dtype=_np.int64)
    n = len(rows)
    empty = _np.empty(0, dtype=_np.int64)
    if n == 0:
        layout = GroupLayout(store, positions, rows, empty, empty, empty)
        layout.key_codes = [empty for _ in positions]
        return layout
    columns = [
        _np.frombuffer(store.columns[p], dtype=_np.int64)[rows] for p in positions
    ]
    if not columns:
        # Empty signature: one global group holding every live row.
        return GroupLayout(
            store,
            positions,
            rows,
            _np.zeros(1, dtype=_np.int64),
            _np.array([n], dtype=_np.int64),
            _np.zeros(1, dtype=_np.int64),
        )
    if len(columns) == 1:
        combined = columns[0]
    else:
        # Mix multi-attribute keys into one int64 when the code spaces
        # fit; otherwise lexsort the raw columns.
        radix = 1
        for p in positions:
            radix *= max(1, len(store.decode[p]))
        if radix < (1 << 62):
            combined = columns[0]
            for p, column in zip(positions[1:], columns[1:]):
                combined = combined * max(1, len(store.decode[p])) + column
        else:  # pragma: no cover - needs ~2**62 distinct key combinations
            combined = None
    boundaries = _np.empty(n, dtype=bool)
    boundaries[0] = True
    if combined is not None:
        order = _np.argsort(combined, kind="stable")
        sorted_key = combined[order]
        _np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundaries[1:])
    else:  # pragma: no cover
        order = _np.lexsort(tuple(reversed(columns)))
        boundaries[1:] = False
        for column in columns:
            sorted_key = column[order]
            boundaries[1:] |= sorted_key[1:] != sorted_key[:-1]
    seg_starts = _np.flatnonzero(boundaries)
    seg_sizes = _np.diff(_np.append(seg_starts, n))
    # The sort is stable, so each segment's first element carries the
    # group's earliest original position; ranking segments by it yields
    # the legacy partition's first-seen iteration order.
    first_seen = order[seg_starts]
    perm = _np.argsort(first_seen)
    layout = GroupLayout(store, positions, rows[order], seg_starts, seg_sizes, perm)
    layout.key_codes = [column[order][layout.starts] for column in columns]
    return layout


def _encoded(store, position: int, value: Any) -> int:
    """The interned code of ``value`` in one column, or -1 (matches none)."""
    code = store.encode[position].get(value)
    return -1 if code is None else code


def _member_codes(store, position: int, values) -> Any:
    """Codes of the pattern-set values that are interned in the column."""
    codes = [
        code
        for code in (store.encode[position].get(v) for v in values)
        if code is not None
    ]
    return _np.array(codes, dtype=_np.int64)


class TaskFlags:
    """Exact violation flags of one spec against one layout.

    ``single_rows`` / ``pair_rows`` are booleans over the layout's sorted
    rows (``None`` when the spec has no checks of that kind); a set row
    *is* a violation of that kind, decided on codes.  ``candidates`` holds
    the ranks of groups that match the key checks and contain at least one
    flagged row — the only groups the executor has to visit.
    """

    __slots__ = ("single_rows", "pair_rows", "candidates", "_candidate_set")

    def __init__(self, single_rows, pair_rows, candidates):
        self.single_rows = single_rows
        self.pair_rows = pair_rows
        self.candidates = candidates
        self._candidate_set: Optional[set] = None

    @property
    def candidate_set(self) -> set:
        """Candidate ranks as a Python set (cached for warm re-detects)."""
        if self._candidate_set is None:
            self._candidate_set = set(self.candidates.tolist())
        return self._candidate_set


def task_flags(layout: GroupLayout, schema, spec) -> TaskFlags:
    """Evaluate one :class:`~repro.engine.scan.ColumnarSpec` exactly.

    Code comparisons are congruent with the value comparisons the task
    closures perform (equal values share a code); the one scalar quirk —
    ``x != c`` is always true for a NaN constant — is special-cased, so
    the flags match the legacy per-tuple checks row for row.
    """
    store = layout.store
    n_groups = layout.n_groups
    empty = _np.empty(0, dtype=_np.int64)
    if n_groups == 0:
        return TaskFlags(None, None, empty)

    match = None
    for kind, sig_index, *payload in spec.key_checks:
        codes = layout.key_codes[sig_index]
        if kind == "eq":
            check = codes == _encoded(store, layout.positions[sig_index], payload[0])
        else:  # "set"
            values, negated = payload
            inside = _np.isin(
                codes, _member_codes(store, layout.positions[sig_index], values)
            )
            check = ~inside if negated else inside
        match = check if match is None else (match & check)
        if not match.any():
            return TaskFlags(None, None, empty)

    single_rows = None
    for kind, attr, *payload in spec.singles:
        position = schema.index_of(attr)
        column = layout.sorted_column(position)
        if kind == "eq":
            constant = payload[0]
            if constant != constant:  # NaN: scalar `!=` flags every row
                bad = _np.ones(layout.n_rows, dtype=bool)
            else:
                bad = column != _encoded(store, position, constant)
        else:  # "set"
            values, negated = payload
            inside = _np.isin(column, _member_codes(store, position, values))
            bad = inside if negated else ~inside
        single_rows = bad if single_rows is None else (single_rows | bad)

    pair_rows = None
    for attr in spec.pair_attrs:
        position = schema.index_of(attr)
        column = layout.sorted_column(position)
        firsts = column[layout.seg_starts]
        differs = column != _np.repeat(firsts, layout.seg_sizes)
        pair_rows = differs if pair_rows is None else (pair_rows | differs)

    # Per-group "any flagged row", reduced over the monotonic segment
    # starts, then permuted into first-seen rank order.
    violating_seg = _np.zeros(n_groups, dtype=bool)
    if single_rows is not None:
        violating_seg |= _np.logical_or.reduceat(single_rows, layout.seg_starts)
    if pair_rows is not None:
        violating_seg |= _np.logical_or.reduceat(pair_rows, layout.seg_starts)
    violating = violating_seg[layout.perm]
    if match is not None:
        violating &= match
    return TaskFlags(single_rows, pair_rows, _np.flatnonzero(violating))
