"""Master-data repair (paper §5.1, Remark).

"A more reasonable way is to conduct repairing based on master data
(reference data) [30, 62] ... At the very least this involves object
identification to match tuples in Dr and those in D that refer to the
same object ... matching dependencies and relative candidate keys may
help us conduct data repairing and object identification in a uniform
dependency-based framework."

This module implements exactly that pipeline:

1. **identify** — match each dirty tuple against the master relation with
   matching rules (MDs/RCKs from the dirty schema to the master schema);
2. **repair** — for every matched tuple, copy the master's values into
   the dirty tuple over a declared attribute correspondence, but only for
   cells that actually differ (each copy is logged with its
   w(t,A)·dis(v,v′) cost);
3. tuples with no master match (or with ambiguous matches, by default)
   are left untouched and reported.

Master repair composes with the CFD machinery: run it first to pull
trusted values, then :func:`repro.repair.urepair.repair_cfds` for the
residual violations.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.md.model import MD
from repro.md.blocking import Blocker
from repro.md.model import MatchInterpretation
from repro.relational.instance import RelationInstance
from repro.relational.tuples import Tuple
from repro.repair.models import CellChange, CostModel

__all__ = ["MasterRepairResult", "repair_with_master_data"]


class MasterRepairResult:
    """Outcome of a master-data repair pass."""

    def __init__(
        self,
        repaired: RelationInstance,
        changes: List[CellChange],
        matched: int,
        unmatched: List[Tuple],
        ambiguous: List[Tuple],
    ):
        self.repaired = repaired
        self.changes = changes
        self.matched = matched
        self.unmatched = unmatched
        self.ambiguous = ambiguous

    @property
    def cost(self) -> float:
        return sum(c.cost for c in self.changes)

    def __repr__(self) -> str:
        return (
            f"MasterRepairResult({self.matched} matched, "
            f"{len(self.unmatched)} unmatched, {len(self.ambiguous)} ambiguous, "
            f"{len(self.changes)} cells copied, cost={self.cost:.3f})"
        )


def _master_matches(
    dirty_tuple: Tuple,
    rules: Sequence[MD],
    blockers: Sequence[Blocker],
) -> List[Tuple]:
    interpretation = MatchInterpretation()
    found: Dict[Tuple, None] = {}
    for rule, blocker in zip(rules, blockers):
        for master_tuple in blocker.candidates(dirty_tuple):
            if rule.premise_holds(dirty_tuple, master_tuple, interpretation):
                found.setdefault(master_tuple, None)
    return list(found)


def repair_with_master_data(
    dirty: RelationInstance,
    master: RelationInstance,
    rules: Sequence[MD],
    correspondence: Mapping[str, str],
    cost_model: CostModel | None = None,
    on_ambiguous: str = "skip",
) -> MasterRepairResult:
    """Repair ``dirty`` by copying values from matched ``master`` tuples.

    ``rules`` are matching rules from the dirty schema (left) to the
    master schema (right); ``correspondence`` maps dirty attributes to the
    master attributes whose values should overwrite them.

    ``on_ambiguous`` controls tuples matching several distinct master
    tuples: ``"skip"`` (default) leaves them untouched and reports them;
    ``"first"`` uses the first match (master order is deterministic).
    """
    if on_ambiguous not in ("skip", "first"):
        raise ValueError("on_ambiguous must be 'skip' or 'first'")
    for dirty_attr, master_attr in correspondence.items():
        dirty.schema.attribute(dirty_attr)
        master.schema.attribute(master_attr)

    cost_model = cost_model or CostModel()
    blockers = [Blocker(rule, master) for rule in rules]
    repaired = RelationInstance(dirty.schema)
    changes: List[CellChange] = []
    unmatched: List[Tuple] = []
    ambiguous: List[Tuple] = []
    matched = 0

    for t in dirty:
        candidates = _master_matches(t, rules, blockers)
        if not candidates:
            unmatched.append(t)
            repaired.add(t)
            continue
        if len(candidates) > 1:
            # matches that agree on every corresponded value are harmless
            images = {
                tuple(m[attr] for attr in correspondence.values())
                for m in candidates
            }
            if len(images) > 1:
                ambiguous.append(t)
                if on_ambiguous == "skip":
                    repaired.add(t)
                    continue
        matched += 1
        reference = candidates[0]
        updated = t
        for dirty_attr, master_attr in correspondence.items():
            master_value = reference[master_attr]
            if updated[dirty_attr] != master_value:
                changes.append(
                    CellChange(
                        dirty.schema.name,
                        t,
                        dirty_attr,
                        updated[dirty_attr],
                        master_value,
                        cost_model.weight(t, dirty_attr)
                        * cost_model.distance(updated[dirty_attr], master_value),
                    )
                )
                updated = updated.replace(**{dirty_attr: master_value})
        repaired.add(updated)
    return MasterRepairResult(repaired, changes, matched, unmatched, ambiguous)
