"""Repair models and the cost metric of §5.1.

Three repair models (paper, §5.1):

* **X-repair** — a maximal consistent subset (tuple deletions only);
* **S-repair** — consistent D′ with ⊆-minimal symmetric difference
  (deletions and insertions);
* **U-repair** — consistent D′ obtained by value modifications with
  minimal aggregate cost.

The cost metric is the one "motivated by an approach proposed for use in
US national statistical agencies [40, 69]":

    cost(v, v′) = w(t, A) · dis(v, v′)

summed over all modified cells.  ``w`` is a per-cell confidence weight
(default 1); ``dis`` a distance with lower = more similar — normalized
edit distance for strings, relative difference for numbers.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Mapping, Sequence, Tuple as PyTuple

from repro.md.similarity import levenshtein
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple

__all__ = [
    "RepairModel",
    "default_distance",
    "CostModel",
    "CellChange",
    "ValueRepair",
]


class RepairModel(enum.Enum):
    """The three repair models of §5.1."""

    X = "X-repair"   # deletions only, maximal subset
    S = "S-repair"   # deletions + insertions, minimal symmetric difference
    U = "U-repair"   # value modifications, minimal cost


def default_distance(old: Any, new: Any) -> float:
    """dis(v, v′) ∈ [0, 1]: 0 iff equal; normalized edit distance for
    strings; relative difference for numbers; 1 otherwise."""
    if old == new:
        return 0.0
    if isinstance(old, str) and isinstance(new, str):
        longest = max(len(old), len(new))
        if longest == 0:
            return 0.0
        return levenshtein(old, new) / longest
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        denominator = max(abs(old), abs(new), 1)
        return min(1.0, abs(old - new) / denominator)
    return 1.0


class CostModel:
    """w(t, A) · dis(v, v′) with pluggable weights and distance.

    ``weights`` maps (tuple, attribute) to the user's confidence in the
    cell's accuracy; absent cells use ``default_weight`` — exactly the
    paper's "if w(t, A) is not available, a default value is used".
    """

    def __init__(
        self,
        weights: Mapping[PyTuple[Tuple, str], float] | None = None,
        distance: Callable[[Any, Any], float] = default_distance,
        default_weight: float = 1.0,
    ):
        self._weights: Dict[PyTuple[Tuple, str], float] = dict(weights or {})
        self.distance = distance
        self.default_weight = default_weight

    def weight(self, t: Tuple, attribute: str) -> float:
        return self._weights.get((t, attribute), self.default_weight)

    def set_weight(self, t: Tuple, attribute: str, value: float) -> None:
        self._weights[(t, attribute)] = value

    def change_cost(self, t: Tuple, attribute: str, new_value: Any) -> float:
        """cost of changing t[A] to ``new_value``."""
        return self.weight(t, attribute) * self.distance(t[attribute], new_value)

    def tuple_cost(self, original: Tuple, repaired: Tuple) -> float:
        """Sum of per-attribute change costs between two versions of a tuple."""
        total = 0.0
        for attribute in original.schema.attribute_names:
            if original[attribute] != repaired[attribute]:
                total += self.change_cost(original, attribute, repaired[attribute])
        return total


class CellChange:
    """One value modification: (relation, tuple, attribute, old → new)."""

    __slots__ = ("relation", "original", "attribute", "old", "new", "cost")

    def __init__(
        self,
        relation: str,
        original: Tuple,
        attribute: str,
        old: Any,
        new: Any,
        cost: float,
    ):
        self.relation = relation
        self.original = original
        self.attribute = attribute
        self.old = old
        self.new = new
        self.cost = cost

    def __repr__(self) -> str:
        return (
            f"CellChange({self.relation}.{self.attribute}: "
            f"{self.old!r} → {self.new!r}, cost={self.cost:.3f})"
        )


class ValueRepair:
    """A U-repair result: the repaired database, the edit log, total cost."""

    def __init__(
        self,
        repaired: DatabaseInstance,
        changes: Sequence[CellChange],
        resolved: bool,
        passes: int | None = None,
    ):
        self.repaired = repaired
        self.changes = list(changes)
        self.resolved = resolved  # False when the heuristic hit its pass cap
        self.passes = passes  # repair passes the heuristic actually ran

    @property
    def cost(self) -> float:
        return sum(c.cost for c in self.changes)

    def changed_cells(self) -> int:
        return len(self.changes)

    def __repr__(self) -> str:
        return (
            f"ValueRepair({self.changed_cells()} changes, cost={self.cost:.3f}, "
            f"resolved={self.resolved})"
        )
