"""U-repair: heuristic value-modification repair for FDs and CFDs.

"U-repair is often used in practice" (§5.1): instead of dropping whole
tuples, fix the fields that are wrong.  This implements the
equivalence-class strategy of the cost-based algorithms the paper cites —
[16] (FDs/INDs) and [28] (CFDs) — adapted to our in-memory instances:

1. **Constant phase** — every single-tuple CFD violation (the tuple matches
   tp[X] but clashes with an RHS pattern constant) is resolved by writing
   the constant, since the pattern's RHS value is the only consistent
   choice for that cell;
2. **Variable phase** — pair violations are resolved per LHS-group by
   merging the group's RHS cells into one equivalence class and assigning
   the class the value of minimal aggregate cost (weighted plurality);
3. repeat (changes can re-trigger other rules) up to ``max_passes``.

The loop runs on the delta engine: a
:class:`~repro.engine.delta.DeltaEngine` maintains the violation set while
cells are rewritten, so each pass works straight off the *current*
violations — which tuples clash with which constants, which LHS-groups
still disagree — instead of re-scanning the relation per pattern row, and
the post-repair consistency verdict is read off the maintained set.

The result records every cell edit with its cost w(t,A)·dis(v,v′).  Like
the algorithms it reproduces, this is a heuristic: finding a minimum-cost
repair is NP-complete already for a fixed set of FDs (Theorem 5.1), and on
adversarial inputs the pass cap may be reached (``resolved=False``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.cfd.model import CFD, fd_as_cfd
from repro.deps.fd import FD
from repro.engine.delta import Changeset, DeltaEngine
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple
from repro.repair.models import CellChange, CostModel, ValueRepair

__all__ = ["repair_cfds", "repair_fds"]


def _best_class_value(
    members: List[PyTuple[Tuple, Tuple]],
    attribute: str,
    cost_model: CostModel,
) -> Any:
    """Value minimizing the total cost of aligning every member's cell.

    ``members`` pairs (original_tuple, current_tuple); candidates are the
    current values of the class.
    """
    candidates = {current[attribute] for _, current in members}
    best_value = None
    best_cost = float("inf")
    for candidate in sorted(candidates, key=repr):
        cost = sum(
            cost_model.weight(original, attribute)
            * cost_model.distance(current[attribute], candidate)
            for original, current in members
        )
        if cost < best_cost:
            best_cost = cost
            best_value = candidate
    return best_value


def repair_cfds(
    db: DatabaseInstance,
    cfds: Sequence[CFD],
    cost_model: CostModel | None = None,
    max_passes: int = 25,
    shards: Optional[int] = None,
) -> ValueRepair:
    """Heuristic U-repair of a database against a set of CFDs."""
    cost_model = cost_model or CostModel()
    cfds = list(cfds)
    repaired = db.copy()
    engine = DeltaEngine(repaired, cfds, shards=shards)
    changes: List[CellChange] = []
    # map current tuple -> its original (for weights / cost accounting)
    origin: Dict[PyTuple[str, Tuple], Tuple] = {}
    for relation in repaired.schema.relation_names:
        for t in repaired.relation(relation):
            origin[(relation, t)] = t

    def apply_change(relation: str, current: Tuple, attribute: str, value: Any) -> Tuple:
        original = origin.pop((relation, current))
        engine.apply(Changeset().update(relation, current, **{attribute: value}))
        updated = current.replace(**{attribute: value})
        origin[(relation, updated)] = original
        changes.append(
            CellChange(
                relation,
                original,
                attribute,
                current[attribute],
                value,
                cost_model.weight(original, attribute)
                * cost_model.distance(current[attribute], value),
            )
        )
        return updated

    passes = 0
    for _ in range(max_passes):
        passes += 1
        progress = False
        # Phase 1: constant violations — read the current single-tuple
        # violations off the engine; each one names exactly the tuples that
        # clash with an RHS constant.  A witness updated earlier in the
        # pass is skipped (its new violations, if any, surface next pass).
        by_dep = engine.report().by_dependency()
        for cfd in cfds:
            for violation in by_dep.get(cfd, ()):
                if len(violation.tuples) != 1:
                    continue
                _, t = violation.tuples[0]
                if t not in repaired.relation(cfd.relation_name):
                    continue  # stale witness: already rewritten this pass
                for tp in cfd.tableau:
                    rhs_constants = tp.constants_on(cfd.rhs)
                    if not rhs_constants:
                        continue
                    if not tp.matches_tuple(t, list(cfd.lhs)):
                        continue
                    for attribute, constant in rhs_constants.items():
                        if t[attribute] != constant:
                            t = apply_change(
                                cfd.relation_name, t, attribute, constant
                            )
                            progress = True
        # Phase 2: pair violations, per LHS equivalence class.  The
        # engine's maintained partitions give each violating class in full
        # (witnesses alone would miss members that agree with the
        # plurality), live across the merges this phase performs.
        by_dep = engine.report().by_dependency()
        for cfd in cfds:
            partitions = engine.partitions(cfd.relation_name, cfd.scan_signature)
            signature = list(cfd.scan_signature)
            class_keys: List[tuple] = []
            seen = set()
            for violation in by_dep.get(cfd, ()):
                if len(violation.tuples) < 2:
                    continue
                _, witness = violation.tuples[0]
                if witness not in repaired.relation(cfd.relation_name):
                    continue
                key = witness[signature]
                if key not in seen:
                    seen.add(key)
                    class_keys.append(key)
            for key in class_keys:
                group = partitions.get(key)
                if not group or len(group) < 2:
                    continue
                for tp in cfd.tableau:
                    if not tp.matches_tuple(next(iter(group)), list(cfd.lhs)):
                        continue
                    for attribute in cfd.rhs:
                        members_now = list(group)
                        values = {t[attribute] for t in members_now}
                        if len(values) <= 1:
                            continue
                        members = [
                            (origin[(cfd.relation_name, t)], t)
                            for t in members_now
                        ]
                        target = _best_class_value(members, attribute, cost_model)
                        for t in members_now:
                            if t[attribute] != target:
                                apply_change(
                                    cfd.relation_name, t, attribute, target
                                )
                                progress = True
        if not progress:
            break
    return ValueRepair(repaired, changes, resolved=engine.is_clean(), passes=passes)


def repair_fds(
    db: DatabaseInstance,
    fds: Sequence[FD],
    cost_model: CostModel | None = None,
    max_passes: int = 25,
) -> ValueRepair:
    """U-repair against plain FDs ([16]-style) via the CFD embedding."""
    return repair_cfds(db, [fd_as_cfd(fd) for fd in fds], cost_model, max_passes)
