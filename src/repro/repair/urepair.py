"""U-repair: heuristic value-modification repair for FDs and CFDs.

"U-repair is often used in practice" (§5.1): instead of dropping whole
tuples, fix the fields that are wrong.  This implements the
equivalence-class strategy of the cost-based algorithms the paper cites —
[16] (FDs/INDs) and [28] (CFDs) — adapted to our in-memory instances:

1. **Constant phase** — every single-tuple CFD violation (the tuple matches
   tp[X] but clashes with an RHS pattern constant) is resolved by writing
   the constant, since the pattern's RHS value is the only consistent
   choice for that cell;
2. **Variable phase** — pair violations are resolved per LHS-group by
   merging the group's RHS cells into one equivalence class and assigning
   the class the value of minimal aggregate cost (weighted plurality);
3. repeat (changes can re-trigger other rules) up to ``max_passes``.

The result records every cell edit with its cost w(t,A)·dis(v,v′).  Like
the algorithms it reproduces, this is a heuristic: finding a minimum-cost
repair is NP-complete already for a fixed set of FDs (Theorem 5.1), and on
adversarial inputs the pass cap may be reached (``resolved=False``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple as PyTuple

from repro.cfd.model import CFD, UNNAMED, fd_as_cfd
from repro.deps.fd import FD
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple
from repro.repair.models import CellChange, CostModel, ValueRepair

__all__ = ["repair_cfds", "repair_fds"]


def _best_class_value(
    members: List[PyTuple[Tuple, Tuple]],
    attribute: str,
    cost_model: CostModel,
) -> Any:
    """Value minimizing the total cost of aligning every member's cell.

    ``members`` pairs (original_tuple, current_tuple); candidates are the
    current values of the class.
    """
    candidates = {current[attribute] for _, current in members}
    best_value = None
    best_cost = float("inf")
    for candidate in sorted(candidates, key=repr):
        cost = sum(
            cost_model.weight(original, attribute)
            * cost_model.distance(current[attribute], candidate)
            for original, current in members
        )
        if cost < best_cost:
            best_cost = cost
            best_value = candidate
    return best_value


def repair_cfds(
    db: DatabaseInstance,
    cfds: Sequence[CFD],
    cost_model: CostModel | None = None,
    max_passes: int = 25,
) -> ValueRepair:
    """Heuristic U-repair of a database against a set of CFDs."""
    cost_model = cost_model or CostModel()
    repaired = db.copy()
    changes: List[CellChange] = []
    # map current tuple -> its original (for weights / cost accounting)
    origin: Dict[PyTuple[str, Tuple], Tuple] = {}
    for relation in repaired.schema.relation_names:
        for t in repaired.relation(relation):
            origin[(relation, t)] = t

    def apply_change(relation: str, current: Tuple, attribute: str, value: Any) -> Tuple:
        original = origin.pop((relation, current))
        updated = current.replace(**{attribute: value})
        rel = repaired.relation(relation)
        rel.discard(current)
        rel.add(updated)
        origin[(relation, updated)] = original
        changes.append(
            CellChange(
                relation,
                original,
                attribute,
                current[attribute],
                value,
                cost_model.weight(original, attribute)
                * cost_model.distance(current[attribute], value),
            )
        )
        return updated

    for _ in range(max_passes):
        progress = False
        # Phase 1: constant violations
        for cfd in cfds:
            relation = repaired.relation(cfd.relation_name)
            for tp in cfd.tableau:
                rhs_constants = tp.constants_on(cfd.rhs)
                if not rhs_constants:
                    continue
                for t in list(relation):
                    if not tp.matches_tuple(t, list(cfd.lhs)):
                        continue
                    for attribute, constant in rhs_constants.items():
                        if t[attribute] != constant:
                            t = apply_change(
                                cfd.relation_name, t, attribute, constant
                            )
                            progress = True
        # Phase 2: pair violations, per pattern row and LHS group
        for cfd in cfds:
            relation = repaired.relation(cfd.relation_name)
            for tp in cfd.tableau:
                groups: Dict[tuple, List[Tuple]] = {}
                for t in relation:
                    if tp.matches_tuple(t, list(cfd.lhs)):
                        groups.setdefault(t[list(cfd.lhs)], []).append(t)
                for group in groups.values():
                    if len(group) < 2:
                        continue
                    for attribute in cfd.rhs:
                        values = {t[attribute] for t in group}
                        if len(values) <= 1:
                            continue
                        members = [
                            (origin[(cfd.relation_name, t)], t) for t in group
                        ]
                        target = _best_class_value(members, attribute, cost_model)
                        updated_group = []
                        for t in group:
                            if t[attribute] != target:
                                t = apply_change(
                                    cfd.relation_name, t, attribute, target
                                )
                                progress = True
                            updated_group.append(t)
                        group[:] = updated_group
        if not progress:
            break
    still_violated = any(
        next(cfd.violations(repaired), None) is not None for cfd in cfds
    )
    return ValueRepair(repaired, changes, resolved=not still_violated)


def repair_fds(
    db: DatabaseInstance,
    fds: Sequence[FD],
    cost_model: CostModel | None = None,
    max_passes: int = 25,
) -> ValueRepair:
    """U-repair against plain FDs ([16]-style) via the CFD embedding."""
    return repair_cfds(db, [fd_as_cfd(fd) for fd in fds], cost_model, max_passes)
