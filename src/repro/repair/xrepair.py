"""X-repairs: maximal consistent subsets (tuple deletions only).

The X-repair model of [25] assumes the data is inconsistent but *complete*,
so only deletions are allowed.  Two algorithms:

* :func:`greedy_x_repair` — delete a most-conflicting tuple until clean,
  then add deleted tuples back while consistency allows (guaranteeing
  maximality); polynomial with a violation-count heuristic.
* :func:`all_x_repairs` — exact enumeration of *all* maximal consistent
  subsets by branching on the witnesses of a violation; exponential, as it
  must be (Example 5.1 exhibits 2^n repairs), intended for small instances
  and for the EX51 benchmark.

Both are complete for *universal* dependencies (FDs, CFDs, eCFDs, denial
constraints) and remain correct for INDs/CINDs because a violated source
tuple can only be fixed by deleting it when insertions are forbidden.

Both run on the delta engine (:mod:`repro.engine.delta`): the violation set
is maintained incrementally as tuples are deleted and restored, so the
greedy loop pays per-edit cost instead of a full re-detection per step, and
the exhaustive search explores its tree through apply/undo instead of
copying the database at every node.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.deps.base import Dependency
from repro.engine.delta import Changeset, DeltaEngine
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple

__all__ = ["greedy_x_repair", "all_x_repairs", "count_x_repairs"]

Cell = PyTuple[str, Tuple]  # (relation name, tuple)


def _subset_db(db: DatabaseInstance, removed: Set[Cell]) -> DatabaseInstance:
    result = db.copy()
    for relation, t in removed:
        result.relation(relation).discard(t)
    return result


def greedy_x_repair(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    shards: Optional[int] = None,
) -> DatabaseInstance:
    """A maximal consistent subset, greedily (delete max-degree witnesses,
    then re-insert while consistent)."""
    current = db.copy()
    engine = DeltaEngine(current, dependencies, shards=shards)
    removed: Set[Cell] = set()
    while not engine.is_clean():
        degree: Dict[Cell, int] = {}
        for v in engine.violations():
            for cell in v.tuples:
                degree[cell] = degree.get(cell, 0) + 1
        victim = max(degree, key=lambda c: (degree[c], repr(c[1])))
        removed.add(victim)
        engine.apply(Changeset().delete(victim[0], victim[1]))
    # maximality: try to re-add in deterministic order
    for relation, t in sorted(removed, key=lambda c: (c[0], repr(c[1]))):
        delta = engine.apply(Changeset().insert(relation, t))
        if not delta.clean_after:
            engine.apply(delta.undo)
    return current


def all_x_repairs(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    limit: int = 100_000,
    shards: Optional[int] = None,
) -> List[DatabaseInstance]:
    """All X-repairs (maximal consistent subsets), exactly.

    Branch on the witness tuples of the first violation: any consistent
    subset must exclude at least one of them.  The search walks one
    delta-maintained working instance via apply/undo.  Collected subsets
    are then filtered for maximality and deduplicated.  ``limit`` bounds
    the number of search nodes (MemoryError beyond — Example 5.1 is
    exponential).
    """
    engine = DeltaEngine(db.copy(), dependencies, shards=shards)
    consistent_subsets: Set[FrozenSet[Cell]] = set()
    nodes = [0]

    def explore(removed: FrozenSet[Cell]) -> None:
        nodes[0] += 1
        if nodes[0] > limit:
            raise MemoryError(f"X-repair enumeration exceeded {limit} nodes")
        violations = engine.violations()
        if not violations:
            consistent_subsets.add(removed)
            return
        first = violations[0]
        for cell in first.tuples:
            delta = engine.apply(Changeset().delete(cell[0], cell[1]))
            explore(removed | {cell})
            engine.apply(delta.undo)

    explore(frozenset())
    # keep only subsets whose removal set is minimal (⟺ subset maximal)
    repairs: List[DatabaseInstance] = []
    minimal: List[FrozenSet[Cell]] = [
        r
        for r in consistent_subsets
        if not any(other < r for other in consistent_subsets)
    ]
    for removed in sorted(minimal, key=lambda s: (len(s), sorted(map(repr, s)))):
        repairs.append(_subset_db(db, set(removed)))
    return repairs


def count_x_repairs(
    db: DatabaseInstance, dependencies: Sequence[Dependency], limit: int = 100_000
) -> int:
    """Number of X-repairs (exact; exponential in the worst case)."""
    return len(all_x_repairs(db, dependencies, limit))
