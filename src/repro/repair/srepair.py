"""S-repairs: consistent instances at ⊆-minimal symmetric difference.

The S-repair model of [7] allows deletions *and* insertions.  Two regimes:

* For **denial-class** dependencies (FDs, CFDs, eCFDs, denial constraints)
  insertions never help — the paper notes X- and S-repairs coincide there —
  so S-repairs are exactly the maximal consistent subsets and we delegate
  to :mod:`repro.repair.xrepair`.

* With **inclusion dependencies** in the mix, insertions can replace
  deletions; :func:`all_s_repairs` additionally explores insertion of
  *witness tuples* built over the active domain plus the pattern constants
  (the canonical choices), up to a configurable bound.  This is exact for
  the acyclic, small-instance cases the tests and benchmarks exercise, and
  bounded otherwise (repair checking is already coNP-hard in general,
  Theorem 5.1).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.cind.model import CIND
from repro.deps.base import Dependency
from repro.deps.ind import IND
from repro.engine.delta import Changeset, DeltaEngine
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple
from repro.repair.xrepair import all_x_repairs

__all__ = ["is_denial_class", "all_s_repairs", "symmetric_difference"]

Cell = PyTuple[str, Tuple]


def is_denial_class(dependencies: Sequence[Dependency]) -> bool:
    """True iff no dependency has existential (inclusion) semantics."""
    return not any(isinstance(d, (IND, CIND)) for d in dependencies)


def symmetric_difference(
    original: DatabaseInstance, repaired: DatabaseInstance
) -> Set[Cell]:
    """(D \\ D′) ∪ (D′ \\ D) as a set of (relation, tuple) cells."""
    delta: Set[Cell] = set()
    for rel in original.schema.relation_names:
        old = set(original.relation(rel))
        new = set(repaired.relation(rel))
        for t in old - new:
            delta.add((rel, t))
        for t in new - old:
            delta.add((rel, t))
    return delta


def _insertion_candidates(
    db: DatabaseInstance, dependencies: Sequence[Dependency], max_per_relation: int
) -> List[Cell]:
    """Witness tuples an IND/CIND repair might insert: for each inclusion
    dependency and each violated source tuple, the forced target tuple with
    unconstrained attributes drawn from the active domain."""
    candidates: List[Cell] = []
    for dep in dependencies:
        if isinstance(dep, IND):
            specs = [
                (dep.lhs_relation, dep.lhs_attrs, dep.rhs_relation, dep.rhs_attrs, {})
            ]
        elif isinstance(dep, CIND):
            specs = [
                (
                    dep.lhs_relation,
                    dep.lhs_attrs,
                    dep.rhs_relation,
                    dep.rhs_attrs,
                    dep.rhs_pattern(row),
                )
                for row in dep.tableau
            ]
        else:
            continue
        for lhs_rel, lhs_attrs, rhs_rel, rhs_attrs, pinned in specs:
            target_schema = db.relation(rhs_rel).schema
            free_attrs = [
                a
                for a in target_schema.attribute_names
                if a not in rhs_attrs and a not in pinned
            ]
            pools = []
            for attr in free_attrs:
                pool = db.relation(rhs_rel).active_domain(attr) or [
                    target_schema.domain(attr).fresh_value()
                ]
                pools.append(pool[:max_per_relation])
            for source in db.relation(lhs_rel):
                produced = 0
                for combo in itertools.product(*pools):
                    values = dict(zip(free_attrs, combo))
                    values.update(pinned)
                    for src_attr, dst_attr in zip(lhs_attrs, rhs_attrs):
                        values[dst_attr] = source[src_attr]
                    candidates.append((rhs_rel, Tuple(target_schema, values)))
                    produced += 1
                    if produced >= max_per_relation:
                        break
    seen: Set[Cell] = set()
    unique: List[Cell] = []
    for cell in candidates:
        if cell not in seen:
            seen.add(cell)
            unique.append(cell)
    return unique


def all_s_repairs(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    limit: int = 100_000,
    max_insertions: int = 4,
    max_candidates_per_relation: int = 8,
    shards: Optional[int] = None,
) -> List[DatabaseInstance]:
    """All S-repairs (⊆-minimal symmetric difference), exactly for the
    denial class and bounded-exactly with inclusion dependencies."""
    if is_denial_class(dependencies):
        return all_x_repairs(db, dependencies, limit, shards=shards)

    candidates = _insertion_candidates(
        db, dependencies, max_candidates_per_relation
    )
    # One delta-maintained working instance walks the whole search tree:
    # each branch applies its edit, recurses, and reverts through the
    # returned undo changeset instead of copying the database per node.
    engine = DeltaEngine(db.copy(), dependencies, shards=shards)
    consistent: List[PyTuple[FrozenSet[Cell], DatabaseInstance]] = []
    nodes = [0]

    def branch(cell: Cell, removed: FrozenSet[Cell], inserted: FrozenSet[Cell], remove: bool) -> None:
        rel, t = cell
        edit = Changeset()
        (edit.delete if remove else edit.insert)(rel, t)
        delta = engine.apply(edit)
        explore(
            removed | {cell} if remove else removed,
            inserted if remove else inserted | {cell},
        )
        engine.apply(delta.undo)

    def explore(
        removed: FrozenSet[Cell], inserted: FrozenSet[Cell]
    ) -> None:
        nodes[0] += 1
        if nodes[0] > limit:
            raise MemoryError(f"S-repair enumeration exceeded {limit} nodes")
        violations = engine.violations()
        if not violations:
            consistent.append((removed | inserted, engine.database.copy()))
            return
        first = violations[0]
        for cell in first.tuples:
            if cell not in inserted:
                branch(cell, removed, inserted, remove=True)
            else:
                # undoing an insertion re-creates the obligation; skip
                continue
        if len(inserted) < max_insertions:
            for cell in candidates:
                rel, t = cell
                if t in db.relation(rel) or cell in inserted:
                    continue
                branch(cell, removed, inserted, remove=False)

    explore(frozenset(), frozenset())
    deltas = [symmetric_difference(db, inst) for _, inst in consistent]
    repairs: List[DatabaseInstance] = []
    seen: Set[FrozenSet[Cell]] = set()
    for delta, (_, inst) in zip(deltas, consistent):
        frozen = frozenset(delta)
        if frozen in seen:
            continue
        if any(frozenset(other) < frozen for other in deltas):
            continue
        seen.add(frozen)
        repairs.append(inst)
    return repairs
