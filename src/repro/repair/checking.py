"""Repair checking (paper §5.1, Theorem 5.1).

Given Σ, D and a candidate D′, is D′ a repair of D?  The answer depends on
the repair model:

* X-repair: D′ ⊆ D, D′ ⊨ Σ, and no deleted tuple can be added back;
* S-repair: D′ ⊨ Σ and no consistent D″ has a strictly smaller symmetric
  difference — checked exactly by testing every proper subset of the
  difference (exponential in |Δ|, as the coNP-hardness of Theorem 5.1
  demands; |Δ| is small in practice);
* U-repair: D′ is a value modification of D, D′ ⊨ Σ; *global* cost
  minimality is NP-hard to verify, so we check the standard local notion:
  no single cell can be reverted to its original value while keeping Σ
  satisfied (and report the cost).

Every probe ("does Σ still hold after this edit?") runs on the delta
engine: the check builds one :class:`~repro.engine.delta.DeltaEngine` over
a working copy and answers each hypothetical through
:meth:`~repro.engine.delta.DeltaEngine.probe`, which applies the edit,
reads off the violation delta, and reverts — no full re-detection and no
per-probe database copy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple as PyTuple

from repro.deps.base import Dependency, holds
from repro.engine.delta import Changeset, DeltaEngine
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple
from repro.repair.models import CostModel
from repro.repair.srepair import symmetric_difference

__all__ = ["is_x_repair", "is_s_repair", "check_u_repair", "URepairCheck"]

Cell = PyTuple[str, Tuple]


def is_x_repair(
    original: DatabaseInstance,
    candidate: DatabaseInstance,
    dependencies: Sequence[Dependency],
    shards: Optional[int] = None,
) -> bool:
    """Is ``candidate`` a maximal consistent subset of ``original``?"""
    deleted: List[Cell] = []
    for rel in original.schema.relation_names:
        old = set(original.relation(rel))
        new = set(candidate.relation(rel))
        if not new <= old:
            return False  # not a subset
        deleted.extend((rel, t) for t in old - new)
    if not holds(candidate, dependencies):
        return False  # short-circuits at the first violation, no copy
    engine = DeltaEngine(candidate.copy(), dependencies, shards=shards)
    # Candidate is consistent, so each add-back probe is one violation
    # delta over the partitions the restored tuple lands in.
    for rel, t in deleted:
        if engine.probe(Changeset().insert(rel, t)).clean_after:
            return False  # not maximal
    return True


def is_s_repair(
    original: DatabaseInstance,
    candidate: DatabaseInstance,
    dependencies: Sequence[Dependency],
    shards: Optional[int] = None,
) -> bool:
    """Is ``candidate`` consistent with ⊆-minimal symmetric difference?

    Exact: every proper subset of the difference is re-applied and tested
    (2^|Δ| probes against one delta-maintained working instance; the
    problem is coNP-hard in general, Theorem 5.1).
    """
    import itertools

    if not holds(candidate, dependencies):
        return False
    delta = sorted(
        symmetric_difference(original, candidate), key=lambda c: (c[0], repr(c[1]))
    )
    engine = DeltaEngine(original.copy(), dependencies, shards=shards)
    for size in range(len(delta)):
        for subset in itertools.combinations(delta, size):
            trial = Changeset()
            for rel, t in subset:
                if t in original.relation(rel):
                    trial.delete(rel, t)
                else:
                    trial.insert(rel, t)
            if engine.probe(trial).clean_after:
                return False  # smaller difference suffices
    return True


class URepairCheck:
    """Outcome of a U-repair check: validity, local minimality, cost."""

    def __init__(self, consistent: bool, locally_minimal: bool, cost: float):
        self.consistent = consistent
        self.locally_minimal = locally_minimal
        self.cost = cost

    @property
    def acceptable(self) -> bool:
        return self.consistent and self.locally_minimal

    def __repr__(self) -> str:
        return (
            f"URepairCheck(consistent={self.consistent}, "
            f"locally_minimal={self.locally_minimal}, cost={self.cost:.3f})"
        )


def check_u_repair(
    original: DatabaseInstance,
    candidate: DatabaseInstance,
    dependencies: Sequence[Dependency],
    cost_model: CostModel | None = None,
    shards: Optional[int] = None,
) -> URepairCheck:
    """Check a value-modification repair (tuple counts must be preserved).

    Pairs tuples positionally (insertion order) — callers repairing via
    :mod:`repro.repair.urepair` preserve order — and verifies consistency,
    computes the aggregate cost, and tests local minimality (reverting any
    single changed cell breaks consistency).
    """
    cost_model = cost_model or CostModel()
    cost = 0.0
    reversions: List[PyTuple[str, Tuple, str, object]] = []
    for rel in original.schema.relation_names:
        old = original.relation(rel).tuples()
        new = candidate.relation(rel).tuples()
        if len(old) != len(new):
            return URepairCheck(False, False, float("inf"))
        for o, n in zip(old, new):
            for attr in o.schema.attribute_names:
                if o[attr] != n[attr]:
                    cost += cost_model.weight(o, attr) * cost_model.distance(
                        o[attr], n[attr]
                    )
                    reversions.append((rel, n, attr, o[attr]))
    consistent = holds(candidate, dependencies)
    locally_minimal = True
    if consistent:
        # Each reversion probe is a single-cell update against the
        # consistent candidate: one violation delta over the partitions
        # the reverted tuple moves between.
        engine = DeltaEngine(candidate.copy(), dependencies, shards=shards)
        for rel, changed_tuple, attr, old_value in reversions:
            probe = Changeset().update(rel, changed_tuple, **{attr: old_value})
            if engine.probe(probe).clean_after:
                locally_minimal = False
                break
    return URepairCheck(consistent, locally_minimal, cost)
