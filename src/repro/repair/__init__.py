"""Data repairing (paper §5.1): repair models X/S/U, the statistical-agency
cost metric, repair checking, heuristic and exact repair algorithms, and
repair-space enumeration."""

from repro.repair.checking import (
    URepairCheck,
    check_u_repair,
    is_s_repair,
    is_x_repair,
)
from repro.repair.enumerate import (
    conflict_components,
    count_repairs_by_components,
    repair_space,
)
from repro.repair.master import MasterRepairResult, repair_with_master_data
from repro.repair.models import (
    CellChange,
    CostModel,
    RepairModel,
    ValueRepair,
    default_distance,
)
from repro.repair.srepair import all_s_repairs, is_denial_class, symmetric_difference
from repro.repair.urepair import repair_cfds, repair_fds
from repro.repair.xrepair import all_x_repairs, count_x_repairs, greedy_x_repair

__all__ = [
    "CellChange",
    "MasterRepairResult",
    "repair_with_master_data",
    "CostModel",
    "RepairModel",
    "URepairCheck",
    "ValueRepair",
    "all_s_repairs",
    "all_x_repairs",
    "check_u_repair",
    "conflict_components",
    "count_repairs_by_components",
    "count_x_repairs",
    "default_distance",
    "greedy_x_repair",
    "is_denial_class",
    "is_s_repair",
    "is_x_repair",
    "repair_cfds",
    "repair_fds",
    "repair_space",
    "symmetric_difference",
]
