"""Repair-space enumeration and counting (Example 5.1).

Example 5.1: for the key A → B, the family Dn = {(ai, b), (ai, b′)} has 2n
tuples and **2^n repairs** under S- and X-repair alike — the result that
motivates the condensed representations of §5.3.  These helpers expose the
repair space as an explicit (small-n) list and as an exact count computed
from the conflict structure without materializing the space.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple as PyTuple

from repro.deps.base import Dependency, all_violations
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple
from repro.repair.xrepair import all_x_repairs

__all__ = ["conflict_components", "count_repairs_by_components", "repair_space"]

Cell = PyTuple[str, Tuple]


def conflict_components(
    db: DatabaseInstance, dependencies: Sequence[Dependency]
) -> List[Set[Cell]]:
    """Connected components of the conflict graph (violation witnesses).

    For denial-class dependencies the repairs of independent components
    multiply, which is how Example 5.1's 2^n arises from n independent
    2-cliques.
    """
    adjacency: Dict[Cell, Set[Cell]] = {}
    for violation in all_violations(db, dependencies):
        cells = list(violation.tuples)
        for cell in cells:
            adjacency.setdefault(cell, set())
        for i, a in enumerate(cells):
            for b in cells[i + 1 :]:
                adjacency[a].add(b)
                adjacency[b].add(a)
    components: List[Set[Cell]] = []
    unvisited = set(adjacency)
    while unvisited:
        start = unvisited.pop()
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour in unvisited:
                    unvisited.remove(neighbour)
                    component.add(neighbour)
                    frontier.append(neighbour)
        components.append(component)
    return components


def count_repairs_by_components(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    per_component_limit: int = 10_000,
) -> int:
    """Exact X-repair count as the product of per-component counts.

    Valid for denial-class dependencies (conflicts are local and static
    under deletion), where the repair choice inside each conflict component
    is independent of the others.  Components are repaired in isolation on
    the sub-instance they induce plus all conflict-free tuples.
    """
    components = conflict_components(db, dependencies)
    if not components:
        return 1
    total = 1
    conflicted: Set[Cell] = set().union(*components)
    for component in components:
        sub = db.copy()
        for rel in sub.schema.relation_names:
            for t in list(sub.relation(rel)):
                cell = (rel, t)
                if cell in conflicted and cell not in component:
                    sub.relation(rel).discard(t)
        total *= len(all_x_repairs(sub, dependencies, per_component_limit))
    return total


def repair_space(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    limit: int = 100_000,
) -> List[DatabaseInstance]:
    """All X(=S for denial-class)-repairs, materialized (small inputs)."""
    return all_x_repairs(db, dependencies, limit)
