"""``repro.client`` — a thin stdlib client for the ``repro.server`` API.

One class, :class:`ServerClient`, wrapping ``urllib.request``: every method
maps to one endpoint, takes/returns the plain JSON documents described in
``docs/server.md``, and raises :class:`ServerError` (with the HTTP status
and the server's error text) on any non-2xx response — so the registry's
error messages (unknown constraint tags, malformed changesets, schema
mismatches) surface verbatim on the client side.

::

    client = ServerClient("http://127.0.0.1:8765")
    client.create_session(schema={...}, rules=[...], data={"customer": rows},
                          session_id="crm")
    report = client.detect("crm")                    # the CLI's JSON doc
    delta = client.apply("crm", {"ops": [...]})      # delta + undo token
    client.undo("crm", delta["undo_token"])
    client.delete_session("crm")

No third-party dependencies; used by the test suite, the CI packaging
round-trip and ``benchmarks/bench_server_throughput.py``.
"""

from __future__ import annotations

import json
from http.client import HTTPException
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.errors import ReproError

__all__ = ["ServerClient", "ServerError"]

#: HTTP statuses that signal a transient server-side condition: the request
#: may well succeed if simply retried (503 is what degraded sessions answer).
_RETRIABLE_STATUSES = frozenset({502, 503, 504})


class ServerError(ReproError):
    """A non-2xx response from the server (or no response at all).

    ``status`` is the HTTP status code (0 when the server was unreachable),
    ``kind`` the server-side exception class name when one was reported,
    ``document`` the parsed error body (``{}`` when there was none), and
    ``retriable`` whether retrying the same request can plausibly succeed:
    transport failures (connection refused/reset, torn responses) and
    502/503/504 responses are retriable, everything else is not.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        kind: str = "",
        retriable: Optional[bool] = None,
        document: Optional[Mapping[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.document: Dict[str, Any] = dict(document or {})
        if retriable is None:
            retriable = status == 0 or status in _RETRIABLE_STATUSES
        self.retriable = retriable


class ServerClient:
    """Client for one ``repro.server`` instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body, default=str).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(url, data=data, headers=headers, method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except HTTPError as exc:
            raw = exc.read()
            document: Dict[str, Any] = {}
            try:
                parsed = json.loads(raw)
                if isinstance(parsed, dict):
                    document = parsed
                message = document.get("error", raw.decode("utf-8", "replace"))
                kind = document.get("type", "")
            except (json.JSONDecodeError, AttributeError):
                message = raw.decode("utf-8", "replace") or str(exc)
                kind = ""
            raise ServerError(
                f"{method} {path} -> {exc.code}: {message}",
                status=exc.code,
                kind=kind,
                document=document,
            ) from None
        except URLError as exc:
            raise ServerError(
                f"{method} {path}: server unreachable at {self.base_url} "
                f"({exc.reason})",
                retriable=True,
            ) from None
        except (HTTPException, OSError) as exc:
            # urllib leaks raw socket/protocol errors raised *after* the
            # connection is up (RemoteDisconnected, ConnectionResetError,
            # IncompleteRead, timeouts) — same failure class as URLError.
            raise ServerError(
                f"{method} {path}: transport failure talking to "
                f"{self.base_url} ({exc!r})",
                retriable=True,
            ) from None
        except json.JSONDecodeError as exc:
            # A torn/truncated 2xx body (e.g. the server was SIGKILLed
            # mid-response) is a transport failure, not a client bug.
            raise ServerError(
                f"{method} {path}: invalid JSON in response from "
                f"{self.base_url} ({exc})",
                retriable=True,
            ) from None

    # -- service ---------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def prometheus_metrics(self) -> str:
        """``GET /metrics?format=prometheus`` — the text exposition format."""
        url = f"{self.base_url}/metrics?format=prometheus"
        request = Request(url, headers={"Accept": "text/plain"}, method="GET")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except HTTPError as exc:
            raise ServerError(
                f"GET /metrics?format=prometheus -> {exc.code}",
                status=exc.code,
            ) from None
        except (URLError, HTTPException, OSError) as exc:
            raise ServerError(
                f"GET /metrics?format=prometheus: transport failure "
                f"({exc!r})",
                retriable=True,
            ) from None

    def wait_ready(self, attempts: int = 50, delay: float = 0.1) -> Dict[str, Any]:
        """Poll ``/healthz`` until the server answers (boot synchronizer).

        Only *retriable* failures (connection refused while the listener
        boots, transient 503s) keep the poll going; a definitive error —
        say a 404 because the URL points at something else entirely — is
        raised immediately.
        """
        import time

        last: Optional[ServerError] = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except ServerError as exc:
                if not exc.retriable:
                    raise
                last = exc
                time.sleep(delay)
        raise ServerError(
            f"server at {self.base_url} not ready after "
            f"{attempts * delay:.1f}s: {last}"
        )

    # -- session lifecycle -----------------------------------------------

    def list_sessions(self) -> List[Dict[str, Any]]:
        """Info documents for the *resident* (warm) sessions.

        On a durable server evicted sessions are not listed here — they
        are still recoverable; see :meth:`cold_sessions`."""
        return self._request("GET", "/sessions")["sessions"]

    def cold_sessions(self) -> List[str]:
        """Durable session ids on disk but not resident (durable servers
        only; empty when the server runs without ``--state-dir``).  Any
        verb against one of these ids rehydrates it transparently."""
        return self._request("GET", "/sessions").get("cold_sessions", [])

    def create_session(
        self,
        schema: Union[Mapping[str, Any], str],
        rules: Union[Sequence[Mapping[str, Any]], str, None] = None,
        data: Optional[Mapping[str, Any]] = None,
        session_id: Optional[str] = None,
        executor: str = "indexed",
        shards: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Create a hosted session; returns its info document.

        ``schema``/``rules``/``data`` values may be inline documents (row
        lists for data) or server-side paths, exactly as the endpoint
        accepts them.
        """
        body: Dict[str, Any] = {"schema": schema, "executor": executor}
        if rules is not None:
            body["rules"] = rules
        if data is not None:
            body["data"] = data
        if session_id is not None:
            body["id"] = session_id
        if shards is not None:
            body["shards"] = shards
        return self._request("POST", "/sessions", body)

    def session_info(self, session_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/sessions/{session_id}")

    def diagnostics(self, session_id: str) -> Dict[str, Any]:
        """Per-session diagnostics: engine/delta stats, lock waits,
        durability generation and WAL depth, degraded state."""
        return self._request("GET", f"/sessions/{session_id}/diagnostics")

    def delete_session(self, session_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/sessions/{session_id}")

    # -- verbs -----------------------------------------------------------

    def detect(
        self,
        session_id: str,
        executor: Optional[str] = None,
        shards: Optional[int] = None,
        include_violations: bool = True,
    ) -> Dict[str, Any]:
        """Run detection; returns the CLI's ``--format json`` document."""
        body: Dict[str, Any] = {"include_violations": include_violations}
        if executor is not None:
            body["executor"] = executor
        if shards is not None:
            body["shards"] = shards
        return self._request("POST", f"/sessions/{session_id}/detect", body)

    def apply(
        self, session_id: str, changeset: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Apply a changeset document; returns the violation delta document
        (``added``/``removed``/``remaining``/``clean``/``undo_token``)."""
        return self._request(
            "POST", f"/sessions/{session_id}/apply", changeset
        )

    def undo(self, session_id: str, token: str) -> Dict[str, Any]:
        """Replay a stored undo token (single-use)."""
        return self._request(
            "POST", f"/sessions/{session_id}/undo", {"token": token}
        )

    def repair(
        self,
        session_id: str,
        strategy: str = "u",
        adopt: bool = False,
        **options: Any,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"strategy": strategy, "adopt": adopt}
        body.update(options)
        return self._request("POST", f"/sessions/{session_id}/repair", body)

    def get_rules(self, session_id: str) -> List[Dict[str, Any]]:
        return self._request("GET", f"/sessions/{session_id}/rules")["rules"]

    def set_rules(
        self, session_id: str, rules: Sequence[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Replace the session's rule set with ``rules`` documents."""
        return self._request(
            "PUT", f"/sessions/{session_id}/rules", {"rules": list(rules)}
        )

    def add_rules(
        self, session_id: str, rules: Sequence[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Append ``rules`` documents to the session's rule set."""
        return self._request(
            "POST", f"/sessions/{session_id}/rules", {"rules": list(rules)}
        )

    def __repr__(self) -> str:
        return f"ServerClient({self.base_url!r})"
