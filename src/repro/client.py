"""``repro.client`` — a thin stdlib client for the ``repro.server`` API.

One class, :class:`ServerClient`, wrapping ``urllib.request``: every method
maps to one ``/v1`` endpoint, takes the plain JSON documents described in
``docs/server.md``, and raises :class:`ServerError` (with the HTTP status
and the server's error text) on any non-2xx response — so the registry's
error messages (unknown constraint tags, malformed changesets, schema
mismatches) surface verbatim on the client side.

The constructor is keyword-only::

    client = ServerClient(base_url="http://127.0.0.1:8765",
                          timeout=30.0, retries=2)
    client.create_session(schema={...}, rules=[...], data={"customer": rows},
                          session_id="crm")
    report = client.detect("crm")                    # the CLI's JSON doc
    delta = client.apply("crm", {"ops": [...]})      # delta + undo token
    client.undo("crm", delta.undo_token)
    client.delete_session("crm")

(the pre-/v1 positional form ``ServerClient(url, timeout)`` still works
for one release behind a :class:`DeprecationWarning`).

Every request is sent to the versioned ``/v1`` mount and every response
body arrives in the versioned envelope ``{"wire_version": 1, ...}``.  The
client strips the envelope: returned documents carry the payload keys
only (byte-compatible with the offline CLI's documents) and expose the
stripped version as a ``.wire_version`` attribute — returns are *typed*
:class:`WireDocument` subclasses (still plain ``dict`` subclasses, so
``json.dumps``/key access keep working) with properties for the fields
each endpoint guarantees.

With ``retries=N`` the client retransmits a failed request up to ``N``
times when — and only when — the failure is *retriable*
(``ServerError.retriable``: transport failures and 502/503/504), sleeping
``backoff * 2**attempt`` between attempts.  The default is ``retries=0``:
verbs like ``apply`` are not idempotent, so opting into retransmission is
the caller's call.

No third-party dependencies; used by the test suite, the CI packaging
round-trip and ``benchmarks/bench_server_throughput.py``.
"""

from __future__ import annotations

import json
import time
import warnings
from http.client import HTTPException
from typing import Any, Dict, List, Mapping, Optional, Sequence, Type, Union
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.errors import ReproError

__all__ = [
    "ServerClient",
    "ServerError",
    "WireDocument",
    "HealthDocument",
    "SessionInfoDocument",
    "DeltaDocument",
    "DetectDocument",
    "RepairDocument",
]

#: HTTP statuses that signal a transient server-side condition: the request
#: may well succeed if simply retried (503 is what degraded sessions answer).
_RETRIABLE_STATUSES = frozenset({502, 503, 504})


class ServerError(ReproError):
    """A non-2xx response from the server (or no response at all).

    ``status`` is the HTTP status code (0 when the server was unreachable),
    ``kind`` the server-side exception class name when one was reported,
    ``document`` the parsed error body (``{}`` when there was none, with
    the envelope's ``wire_version`` stripped into the attribute of the
    same name), and ``retriable`` whether retrying the same request can
    plausibly succeed: transport failures (connection refused/reset, torn
    responses) and 502/503/504 responses are retriable, everything else
    is not.
    """

    def __init__(
        self,
        message: str,
        status: int = 0,
        kind: str = "",
        retriable: Optional[bool] = None,
        document: Optional[Mapping[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.document: Dict[str, Any] = dict(document or {})
        self.wire_version: Optional[int] = self.document.pop(
            "wire_version", None
        )
        if retriable is None:
            retriable = status == 0 or status in _RETRIABLE_STATUSES
        self.retriable = retriable


# --------------------------------------------------------------------------
# Typed response documents
# --------------------------------------------------------------------------


class WireDocument(Dict[str, Any]):
    """A response payload: a plain ``dict`` of the document keys plus the
    envelope's ``wire_version`` as an attribute.

    Subclasses add read-only properties for the fields their endpoint
    guarantees; everything stays a ``dict`` so existing key-access call
    sites, ``json.dumps(..., default=str)`` round-trips and byte-compare
    harnesses keep working unchanged.
    """

    def __init__(
        self, document: Mapping[str, Any], wire_version: Optional[int] = None
    ) -> None:
        super().__init__(document)
        self.wire_version = wire_version


class HealthDocument(WireDocument):
    """``GET /v1/healthz``."""

    @property
    def status(self) -> str:
        return str(self["status"])

    @property
    def sessions(self) -> int:
        return int(self["sessions"])


class SessionInfoDocument(WireDocument):
    """A session info document (create / info / list entries)."""

    @property
    def session_id(self) -> str:
        return str(self["session"])

    @property
    def executor(self) -> str:
        return str(self["executor"])

    @property
    def shards(self) -> Optional[int]:
        value = self.get("shards")
        return None if value is None else int(value)

    @property
    def degraded(self) -> bool:
        return bool(self["degraded"])

    @property
    def undo_tokens(self) -> List[str]:
        return list(self.get("undo_tokens", []))


class DeltaDocument(WireDocument):
    """A violation delta (``apply`` / ``undo``):
    added/removed/remaining/clean plus the stored undo token."""

    @property
    def undo_token(self) -> str:
        return str(self["undo_token"])

    @property
    def clean(self) -> bool:
        return bool(self["clean"])

    @property
    def added(self) -> List[Dict[str, Any]]:
        return list(self["added"])

    @property
    def removed(self) -> List[Dict[str, Any]]:
        return list(self["removed"])

    @property
    def remaining(self) -> int:
        return int(self["remaining"])


class DetectDocument(WireDocument):
    """``POST /v1/sessions/{id}/detect`` — the CLI's ``--format json``
    detection document."""

    @property
    def clean(self) -> bool:
        # the detection document carries counts, not a "clean" flag
        return int(self["total"]) == 0

    @property
    def violations(self) -> List[Dict[str, Any]]:
        return list(self.get("violations", []))


class RepairDocument(WireDocument):
    """``POST /v1/sessions/{id}/repair``."""

    @property
    def strategy(self) -> str:
        return str(self["strategy"])


class ServerClient:
    """Client for one ``repro.server`` instance at ``base_url``."""

    def __init__(
        self,
        *args: Any,
        base_url: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> None:
        if args:
            # pre-/v1 positional signature: ServerClient(url[, timeout])
            warnings.warn(
                "positional ServerClient(base_url, timeout) is deprecated; "
                "use keyword arguments: ServerClient(base_url=..., "
                "timeout=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 2:
                raise TypeError(
                    "ServerClient() takes at most 2 positional arguments "
                    f"(got {len(args)})"
                )
            if base_url is not None:
                raise TypeError(
                    "ServerClient() got base_url both positionally and by "
                    "keyword"
                )
            base_url = args[0]
            if len(args) == 2:
                timeout = args[1]
        if base_url is None:
            raise TypeError("ServerClient() requires base_url=...")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # -- plumbing --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        cls: Type[WireDocument] = WireDocument,
    ) -> Any:
        """One wire round-trip (plus opt-in retransmission).

        Prefixes the versioned mount, strips the response envelope into
        ``cls(..., wire_version=...)``, and — when ``retries > 0`` —
        retransmits retriable failures with exponential backoff.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, cls)
            except ServerError as exc:
                if not exc.retriable or attempt >= self.retries:
                    raise
                time.sleep(self.backoff * (2**attempt))
                attempt += 1

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]],
        cls: Type[WireDocument],
    ) -> Any:
        url = f"{self.base_url}/v1{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body, default=str).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(url, data=data, headers=headers, method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                parsed = json.loads(response.read())
        except HTTPError as exc:
            raw = exc.read()
            document: Dict[str, Any] = {}
            try:
                error_doc = json.loads(raw)
                if isinstance(error_doc, dict):
                    document = error_doc
                message = document.get("error", raw.decode("utf-8", "replace"))
                kind = document.get("type", "")
            except (json.JSONDecodeError, AttributeError):
                message = raw.decode("utf-8", "replace") or str(exc)
                kind = ""
            raise ServerError(
                f"{method} {path} -> {exc.code}: {message}",
                status=exc.code,
                kind=kind,
                document=document,
            ) from None
        except URLError as exc:
            raise ServerError(
                f"{method} {path}: server unreachable at {self.base_url} "
                f"({exc.reason})",
                retriable=True,
            ) from None
        except (HTTPException, OSError) as exc:
            # urllib leaks raw socket/protocol errors raised *after* the
            # connection is up (RemoteDisconnected, ConnectionResetError,
            # IncompleteRead, timeouts) — same failure class as URLError.
            raise ServerError(
                f"{method} {path}: transport failure talking to "
                f"{self.base_url} ({exc!r})",
                retriable=True,
            ) from None
        except json.JSONDecodeError as exc:
            # A torn/truncated 2xx body (e.g. the server was SIGKILLed
            # mid-response) is a transport failure, not a client bug.
            raise ServerError(
                f"{method} {path}: invalid JSON in response from "
                f"{self.base_url} ({exc})",
                retriable=True,
            ) from None
        if not isinstance(parsed, dict):
            return parsed
        wire_version = parsed.pop("wire_version", None)
        return cls(parsed, wire_version=wire_version)

    # -- service ---------------------------------------------------------

    def healthz(self) -> HealthDocument:
        return self._request("GET", "/healthz", cls=HealthDocument)

    def metrics(self) -> WireDocument:
        return self._request("GET", "/metrics")

    def prometheus_metrics(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — text exposition."""
        url = f"{self.base_url}/v1/metrics?format=prometheus"
        request = Request(url, headers={"Accept": "text/plain"}, method="GET")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except HTTPError as exc:
            raise ServerError(
                f"GET /metrics?format=prometheus -> {exc.code}",
                status=exc.code,
            ) from None
        except (URLError, HTTPException, OSError) as exc:
            raise ServerError(
                f"GET /metrics?format=prometheus: transport failure "
                f"({exc!r})",
                retriable=True,
            ) from None

    def wait_ready(
        self, attempts: int = 50, delay: float = 0.1
    ) -> HealthDocument:
        """Poll ``/healthz`` until the server answers (boot synchronizer).

        Only *retriable* failures (connection refused while the listener
        boots, transient 503s) keep the poll going; a definitive error —
        say a 404 because the URL points at something else entirely — is
        raised immediately.
        """
        last: Optional[ServerError] = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except ServerError as exc:
                if not exc.retriable:
                    raise
                last = exc
                time.sleep(delay)
        raise ServerError(
            f"server at {self.base_url} not ready after "
            f"{attempts * delay:.1f}s: {last}"
        )

    # -- session lifecycle -----------------------------------------------

    def list_sessions(self) -> List[SessionInfoDocument]:
        """Info documents for the *resident* (warm) sessions.

        On a durable server evicted sessions are not listed here — they
        are still recoverable; see :meth:`cold_sessions`."""
        listing = self._request("GET", "/sessions")
        return [
            SessionInfoDocument(entry, wire_version=listing.wire_version)
            for entry in listing["sessions"]
        ]

    def cold_sessions(self) -> List[str]:
        """Durable session ids on disk but not resident (durable servers
        only; empty when the server runs without ``--state-dir``).  Any
        verb against one of these ids rehydrates it transparently."""
        return self._request("GET", "/sessions").get("cold_sessions", [])

    def create_session(
        self,
        schema: Union[Mapping[str, Any], str],
        rules: Union[Sequence[Mapping[str, Any]], str, None] = None,
        data: Optional[Mapping[str, Any]] = None,
        session_id: Optional[str] = None,
        executor: str = "indexed",
        shards: Optional[int] = None,
    ) -> SessionInfoDocument:
        """Create a hosted session; returns its info document.

        ``schema``/``rules``/``data`` values may be inline documents (row
        lists for data) or server-side paths, exactly as the endpoint
        accepts them.  Engine configuration travels in the unified
        ``{"engine": {"executor": ..., "shards": ...}}`` wire object.
        """
        engine: Dict[str, Any] = {"executor": executor}
        if shards is not None:
            engine["shards"] = shards
        body: Dict[str, Any] = {"schema": schema, "engine": engine}
        if rules is not None:
            body["rules"] = rules
        if data is not None:
            body["data"] = data
        if session_id is not None:
            body["id"] = session_id
        return self._request(
            "POST", "/sessions", body, cls=SessionInfoDocument
        )

    def session_info(self, session_id: str) -> SessionInfoDocument:
        return self._request(
            "GET", f"/sessions/{session_id}", cls=SessionInfoDocument
        )

    def diagnostics(self, session_id: str) -> WireDocument:
        """Per-session diagnostics: engine/delta stats, lock waits,
        durability generation and WAL depth, degraded state."""
        return self._request("GET", f"/sessions/{session_id}/diagnostics")

    def delete_session(self, session_id: str) -> WireDocument:
        return self._request("DELETE", f"/sessions/{session_id}")

    # -- verbs -----------------------------------------------------------

    def detect(
        self,
        session_id: str,
        executor: Optional[str] = None,
        shards: Optional[int] = None,
        include_violations: bool = True,
    ) -> DetectDocument:
        """Run detection; returns the CLI's ``--format json`` document."""
        body: Dict[str, Any] = {"include_violations": include_violations}
        engine: Dict[str, Any] = {}
        if executor is not None:
            engine["executor"] = executor
        if shards is not None:
            engine["shards"] = shards
        if engine:
            body["engine"] = engine
        return self._request(
            "POST", f"/sessions/{session_id}/detect", body, cls=DetectDocument
        )

    def apply(
        self, session_id: str, changeset: Mapping[str, Any]
    ) -> DeltaDocument:
        """Apply a changeset document; returns the violation delta document
        (``added``/``removed``/``remaining``/``clean``/``undo_token``)."""
        return self._request(
            "POST", f"/sessions/{session_id}/apply", changeset,
            cls=DeltaDocument,
        )

    def undo(self, session_id: str, token: str) -> DeltaDocument:
        """Replay a stored undo token (single-use)."""
        return self._request(
            "POST", f"/sessions/{session_id}/undo", {"token": token},
            cls=DeltaDocument,
        )

    def repair(
        self,
        session_id: str,
        strategy: str = "u",
        adopt: bool = False,
        **options: Any,
    ) -> RepairDocument:
        body: Dict[str, Any] = {"strategy": strategy, "adopt": adopt}
        body.update(options)
        return self._request(
            "POST", f"/sessions/{session_id}/repair", body, cls=RepairDocument
        )

    def get_rules(self, session_id: str) -> List[Dict[str, Any]]:
        return self._request("GET", f"/sessions/{session_id}/rules")["rules"]

    def set_rules(
        self, session_id: str, rules: Sequence[Mapping[str, Any]]
    ) -> WireDocument:
        """Replace the session's rule set with ``rules`` documents."""
        return self._request(
            "PUT", f"/sessions/{session_id}/rules", {"rules": list(rules)}
        )

    def add_rules(
        self, session_id: str, rules: Sequence[Mapping[str, Any]]
    ) -> WireDocument:
        """Append ``rules`` documents to the session's rule set."""
        return self._request(
            "POST", f"/sessions/{session_id}/rules", {"rules": list(rules)}
        )

    def __repr__(self) -> str:
        return f"ServerClient(base_url={self.base_url!r})"
