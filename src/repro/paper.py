"""The paper's running examples as ready-made objects.

Everything in Figures 1–4 and Examples 2.1, 2.2, 4.1, 4.2, 5.1 of
Fan, "Dependencies Revisited for Improving Data Quality" (PODS 2008) is
constructed here exactly as printed, so tests, examples and benchmarks can
refer to `fig1_instance()`, `fig2_cfds()`, ... and assert the claims the
paper makes about them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple as PyTuple

from repro.cfd.model import CFD, UNNAMED, PatternTableau
from repro.cind.model import CIND
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.relational.domains import BOOL, FLOAT, INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = [
    "customer_schema",
    "fig1_instance",
    "fig1_fds",
    "fig2_cfds",
    "source_target_schema",
    "fig3_instance",
    "fig3_naive_inds",
    "fig4_cinds",
    "example41_schema",
    "example41_cfds",
    "example42_sources",
    "example51_schema",
    "example51_instance",
    "example51_key",
]


# ---------------------------------------------------------------------------
# Section 2.1: the customer relation (Figure 1) and its FDs/CFDs (Figure 2)
# ---------------------------------------------------------------------------

def customer_schema() -> RelationSchema:
    """customer (CC, AC, phn, name, street, city, zip) — paper §2.1.

    The paper types CC/AC/phn as int; zip codes like 'EH4 8LE' force zip to
    be a string, as printed.
    """
    return RelationSchema(
        "customer",
        [
            ("CC", INT),
            ("AC", INT),
            ("phn", INT),
            ("name", STRING),
            ("street", STRING),
            ("city", STRING),
            ("zip", STRING),
        ],
    )


def fig1_instance() -> DatabaseInstance:
    """The instance D0 of Figure 1 (tuples t1, t2, t3)."""
    schema = customer_schema()
    db = DatabaseInstance(DatabaseSchema([schema]))
    rel = db.relation("customer")
    rel.add((44, 131, 1234567, "Mike", "Mayfield", "NYC", "EH4 8LE"))   # t1
    rel.add((44, 131, 3456789, "Rick", "Crichton", "NYC", "EH4 8LE"))   # t2
    rel.add((1, 908, 3456789, "Joe", "Mtn Ave", "NYC", "07974"))        # t3
    return db


def fig1_fds() -> List[FD]:
    """f1: [CC,AC,phn] → [street,city,zip];  f2: [CC,AC] → [city]."""
    return [
        FD("customer", ["CC", "AC", "phn"], ["street", "city", "zip"]),
        FD("customer", ["CC", "AC"], ["city"]),
    ]


def fig2_cfds() -> Dict[str, CFD]:
    """The CFDs ϕ1, ϕ2, ϕ3 of Figure 2.

    ϕ1 expresses cfd1; ϕ2's three pattern rows express f1, cfd2 and cfd3;
    ϕ3 expresses f2.
    """
    phi1 = CFD(
        "customer",
        ["CC", "zip"],
        ["street"],
        PatternTableau(
            ("CC", "zip", "street"),
            [{"CC": 44, "zip": UNNAMED, "street": UNNAMED}],
        ),
        name="phi1",
    )
    phi2 = CFD(
        "customer",
        ["CC", "AC", "phn"],
        ["street", "city", "zip"],
        PatternTableau(
            ("CC", "AC", "phn", "street", "city", "zip"),
            [
                {a: UNNAMED for a in ("CC", "AC", "phn", "street", "city", "zip")},
                {"CC": 44, "AC": 131, "phn": UNNAMED, "street": UNNAMED,
                 "city": "EDI", "zip": UNNAMED},
                {"CC": 1, "AC": 908, "phn": UNNAMED, "street": UNNAMED,
                 "city": "MH", "zip": UNNAMED},
            ],
        ),
        name="phi2",
    )
    phi3 = CFD(
        "customer",
        ["CC", "AC"],
        ["city"],
        PatternTableau(
            ("CC", "AC", "city"),
            [{"CC": UNNAMED, "AC": UNNAMED, "city": UNNAMED}],
        ),
        name="phi3",
    )
    return {"phi1": phi1, "phi2": phi2, "phi3": phi3}


# ---------------------------------------------------------------------------
# Section 2.2: source/target schemas (Figure 3) and CINDs (Figure 4)
# ---------------------------------------------------------------------------

def source_target_schema() -> DatabaseSchema:
    """order(asin, title, type, price); book(isbn, title, price, format);
    CD(id, album, price, genre)."""
    return DatabaseSchema(
        [
            RelationSchema(
                "order",
                [("asin", STRING), ("title", STRING), ("type", STRING), ("price", FLOAT)],
            ),
            RelationSchema(
                "book",
                [("isbn", STRING), ("title", STRING), ("price", FLOAT), ("format", STRING)],
            ),
            RelationSchema(
                "CD",
                [("id", STRING), ("album", STRING), ("price", FLOAT), ("genre", STRING)],
            ),
        ]
    )


def fig3_instance() -> DatabaseInstance:
    """The instance D1 of Figure 3 (tuples t4..t9)."""
    db = DatabaseInstance(source_target_schema())
    order = db.relation("order")
    order.add(("a23", "Snow White", "CD", 7.99))      # t4
    order.add(("a12", "Harry Potter", "book", 17.99))  # t5
    book = db.relation("book")
    book.add(("b32", "Harry Potter", 17.99, "hard-cover"))  # t6
    book.add(("b65", "Snow White", 7.99, "paper-cover"))    # t7
    cd = db.relation("CD")
    cd.add(("c12", "J. Denver", 7.94, "country"))   # t8
    cd.add(("c58", "Snow White", 7.99, "a-book"))   # t9
    return db


def fig3_naive_inds() -> List[IND]:
    """The INDs the paper says "do not make sense" on Figure 3's data."""
    return [
        IND("order", ["title", "price"], "book", ["title", "price"]),
        IND("order", ["title", "price"], "CD", ["album", "price"]),
    ]


def fig4_cinds() -> Dict[str, CIND]:
    """The CINDs ϕ4, ϕ5, ϕ6 of Figure 4 (cind1, cind2, cind3)."""
    phi4 = CIND(
        "order", ["title", "price"], "book", ["title", "price"],
        lhs_pattern_attrs=["type"],
        tableau=[{"type": "book"}],
        name="phi4",
    )
    phi5 = CIND(
        "order", ["title", "price"], "CD", ["album", "price"],
        lhs_pattern_attrs=["type"],
        tableau=[{"type": "CD"}],
        name="phi5",
    )
    phi6 = CIND(
        "CD", ["album", "price"], "book", ["title", "price"],
        lhs_pattern_attrs=["genre"],
        rhs_pattern_attrs=["format"],
        tableau=[{"genre": "a-book", "format": "audio"}],
        name="phi6",
    )
    return {"phi4": phi4, "phi5": phi5, "phi6": phi6}


# ---------------------------------------------------------------------------
# Section 3: card/billing schemas, MDs (Example 3.1), relative keys (3.2)
# ---------------------------------------------------------------------------

def card_billing_schema() -> DatabaseSchema:
    """card(c#, SSN, FN, LN, addr, tel, email, type);
    billing(c#, FN, SN, post, phn, email, item, price)."""
    return DatabaseSchema(
        [
            RelationSchema(
                "card",
                [
                    ("cnum", STRING), ("SSN", STRING), ("FN", STRING),
                    ("LN", STRING), ("addr", STRING), ("tel", STRING),
                    ("email", STRING), ("type", STRING),
                ],
            ),
            RelationSchema(
                "billing",
                [
                    ("cnum", STRING), ("FN", STRING), ("SN", STRING),
                    ("post", STRING), ("phn", STRING), ("email", STRING),
                    ("item", STRING), ("price", FLOAT),
                ],
            ),
        ]
    )


#: Yc = [FN, LN, addr, tel, email];  Yb = [FN, SN, post, phn, email]
YC: PyTuple[str, ...] = ("FN", "LN", "addr", "tel", "email")
YB: PyTuple[str, ...] = ("FN", "SN", "post", "phn", "email")


def example31_mds(edit_threshold: int = 2):
    """The MDs φ1–φ4 of Example 3.1 (≈d = edit distance ≤ threshold)."""
    from repro.md.model import MATCH, MD
    from repro.md.similarity import EQ, EditDistanceSimilarity

    approx = EditDistanceSimilarity(edit_threshold)
    phi1 = MD(
        "card", "billing",
        [("tel", "phn", EQ)],
        ["addr"], ["post"], MATCH, name="md-phi1",
    )
    phi2 = MD(
        "card", "billing",
        [("email", "email", MATCH)],
        ["FN", "LN"], ["FN", "SN"], MATCH, name="md-phi2",
    )
    phi3 = MD(
        "card", "billing",
        [("LN", "SN", MATCH), ("addr", "post", MATCH), ("FN", "FN", MATCH)],
        list(YC), list(YB), MATCH, name="md-phi3",
    )
    phi4 = MD(
        "card", "billing",
        [("LN", "SN", MATCH), ("addr", "post", MATCH), ("FN", "FN", approx)],
        list(YC), list(YB), MATCH, name="md-phi4",
    )
    return {"phi1": phi1, "phi2": phi2, "phi3": phi3, "phi4": phi4}


def example32_rcks(edit_threshold: int = 2):
    """The relative keys rck1–rck3 of Example 3.2."""
    from repro.md.model import RelativeKey
    from repro.md.similarity import EQ, EditDistanceSimilarity

    approx = EditDistanceSimilarity(edit_threshold)
    rck1 = RelativeKey(
        "card", "billing",
        [("email", "email"), ("addr", "post")],
        [EQ, EQ],
        list(YC), list(YB), name="rck1",
    )
    rck2 = RelativeKey(
        "card", "billing",
        [("LN", "SN"), ("tel", "phn"), ("FN", "FN")],
        [EQ, EQ, approx],
        list(YC), list(YB), name="rck2",
    )
    rck3 = RelativeKey(
        "card", "billing",
        [("LN", "SN"), ("addr", "post"), ("FN", "FN")],
        [EQ, EQ, approx],
        list(YC), list(YB), name="rck3",
    )
    return {"rck1": rck1, "rck2": rck2, "rck3": rck3}


# ---------------------------------------------------------------------------
# Example 4.1: an inconsistent CFD set over a finite (bool) domain
# ---------------------------------------------------------------------------

def example41_schema(bool_domain: bool = True) -> RelationSchema:
    """R(A, B) with dom(A) = bool (or an infinite domain when
    ``bool_domain=False``, in which case the same CFDs are consistent)."""
    a_domain = BOOL if bool_domain else INT
    return RelationSchema("R", [("A", a_domain), ("B", STRING)])


def example41_cfds(bool_domain: bool = True) -> List[CFD]:
    """ψ1 = ([A] → [B], {(true‖b1), (false‖b2)}),
    ψ2 = ([B] → [A], {(b1‖false), (b2‖true)})."""
    true_value = True if bool_domain else 1
    false_value = False if bool_domain else 0
    psi1 = CFD(
        "R", ["A"], ["B"],
        PatternTableau(
            ("A", "B"),
            [{"A": true_value, "B": "b1"}, {"A": false_value, "B": "b2"}],
        ),
        name="psi1",
    )
    psi2 = CFD(
        "R", ["B"], ["A"],
        PatternTableau(
            ("B", "A"),
            [{"B": "b1", "A": false_value}, {"B": "b2", "A": true_value}],
        ),
        name="psi2",
    )
    return [psi1, psi2]


# ---------------------------------------------------------------------------
# Example 4.2: three customer sources and an integration view
# ---------------------------------------------------------------------------

def example42_sources() -> DatabaseSchema:
    """R1 (UK), R2 (US), R3 (Netherlands): zip, street, AC, city."""
    attrs = [("zip", STRING), ("street", STRING), ("AC", INT), ("city", STRING)]
    return DatabaseSchema(
        [
            RelationSchema("R1", attrs),
            RelationSchema("R2", attrs),
            RelationSchema("R3", attrs),
        ]
    )


# ---------------------------------------------------------------------------
# Example 5.1: the exponential-repair family
# ---------------------------------------------------------------------------

def example51_schema() -> RelationSchema:
    """R(A, B) with string attributes."""
    return RelationSchema("R", [("A", STRING), ("B", STRING)])


def example51_instance(n: int) -> DatabaseInstance:
    """Dn = {(ai, b), (ai, b') | i ∈ [1, n]} — 2n tuples, 2^n repairs."""
    schema = example51_schema()
    db = DatabaseInstance(DatabaseSchema([schema]))
    rel = db.relation("R")
    for i in range(1, n + 1):
        rel.add((f"a{i}", "b"))
        rel.add((f"a{i}", "b'"))
    return db


def example51_key() -> FD:
    """The key A → B of Example 5.1."""
    return FD("R", ["A"], ["B"])
