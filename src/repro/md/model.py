"""Matching dependencies and relative keys (paper §3.2).

An MD over a pair of relation schemas (R1, R2) is

    ⋀_{j ∈ [1,k]}  R1[X1[j]] ≈j R2[X2[j]]   →   R1[Z1] ⇋ R2[Z2]

where each ≈j is a similarity operator in Θ and the conclusion operator is
usually the matching operator ⇋ ("refer to the same real-world object").
A *relative key* is an MD whose premise uses no ⇋.

The matching operator is typically *not given* on the data (§3.3): it is
the relation to be inferred.  Checking an MD on concrete instances
therefore takes a :class:`MatchInterpretation` — an explicit, transitive,
pairwise-decomposable interpretation of ⇋ (tests use interpretations
derived from ground truth; the matcher builds one as it runs).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple as PyTuple

from repro.errors import DependencyError
from repro.md.similarity import SimilarityOperator
from repro.relational.tuples import Tuple

__all__ = ["MATCH", "MatchOperator", "MDPremise", "MD", "RelativeKey", "MatchInterpretation"]


class MatchOperator(SimilarityOperator):
    """The matching operator ⇋: transitive and pairwise-decomposable.

    ``similar`` on raw values falls back to equality (x = x ⇋ x): the true
    relation is supplied per-analysis by a :class:`MatchInterpretation`.
    """

    name = "⇋"

    def similar(self, left: Any, right: Any) -> bool:
        return left == right


#: the shared matching-operator token used in MD conclusions/premises
MATCH = MatchOperator()


class MDPremise:
    """One conjunct R1[A] ≈ R2[B] of an MD's premise."""

    __slots__ = ("left_attr", "right_attr", "operator")

    def __init__(self, left_attr: str, right_attr: str, operator: SimilarityOperator):
        self.left_attr = left_attr
        self.right_attr = right_attr
        self.operator = operator

    def __repr__(self) -> str:
        return f"{self.left_attr} {self.operator.name} {self.right_attr}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MDPremise)
            and (self.left_attr, self.right_attr, self.operator)
            == (other.left_attr, other.right_attr, other.operator)
        )

    def __hash__(self) -> int:
        return hash((self.left_attr, self.right_attr, self.operator))


class MatchInterpretation:
    """A concrete interpretation of ⇋ on attribute-value lists.

    Maintains an equivalence over (tag, value-tuple) items via union-find;
    ``matched(a, b)`` is True when the two items were declared equivalent
    (or are equal — ⇋ subsumes equality).
    """

    def __init__(self) -> None:
        self._parent: Dict[Any, Any] = {}

    def _find(self, item: Any) -> Any:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self._find(parent)
            self._parent[item] = root
            return root
        return item

    def declare(self, left: Any, right: Any) -> bool:
        """Declare left ⇋ right; True iff the classes were distinct."""
        left_root, right_root = self._find(left), self._find(right)
        if left_root == right_root:
            return False
        self._parent[left_root] = right_root
        return True

    def matched(self, left: Any, right: Any) -> bool:
        if left == right:
            return True
        return self._find(left) == self._find(right)


class MD:
    """A matching dependency over (R1, R2)."""

    def __init__(
        self,
        left_relation: str,
        right_relation: str,
        premises: Sequence[MDPremise | PyTuple[str, str, SimilarityOperator]],
        rhs_left: Sequence[str],
        rhs_right: Sequence[str],
        rhs_operator: SimilarityOperator = MATCH,
        name: str | None = None,
    ):
        if len(rhs_left) != len(rhs_right):
            raise DependencyError("MD conclusion lists must have equal length")
        if not rhs_left:
            raise DependencyError("MD conclusion must be non-empty")
        if not premises:
            raise DependencyError("MD premise must be non-empty")
        self.left_relation = left_relation
        self.right_relation = right_relation
        normalized: List[MDPremise] = []
        for p in premises:
            if isinstance(p, MDPremise):
                normalized.append(p)
            else:
                left_attr, right_attr, operator = p
                normalized.append(MDPremise(left_attr, right_attr, operator))
        self.premises: PyTuple[MDPremise, ...] = tuple(normalized)
        self.rhs_left: PyTuple[str, ...] = tuple(rhs_left)
        self.rhs_right: PyTuple[str, ...] = tuple(rhs_right)
        self.rhs_operator = rhs_operator
        self.name = name or f"md:{len(self.premises)}-premise"

    @property
    def length(self) -> int:
        """k — the number of premise conjuncts."""
        return len(self.premises)

    def is_relative_key(self) -> bool:
        """True iff no premise uses the matching operator ⇋."""
        return all(p.operator != MATCH for p in self.premises)

    def premise_holds(
        self,
        t1: Tuple,
        t2: Tuple,
        interpretation: MatchInterpretation | None = None,
    ) -> bool:
        """Evaluate the premise on a concrete tuple pair.

        ⇋-premises consult ``interpretation`` (single-attribute items are
        tagged with their attribute pair so independently declared matches
        do not collide).
        """
        for p in self.premises:
            left_value, right_value = t1[p.left_attr], t2[p.right_attr]
            if p.operator == MATCH:
                # ⇋ subsumes equality on raw values (§3.2 axiom) ...
                if left_value == right_value:
                    continue
                # ... otherwise only a previously derived match witnesses it
                if interpretation is None or not interpretation.matched(
                    ("L", p.left_attr, left_value), ("R", p.right_attr, right_value)
                ):
                    return False
            elif not p.operator.similar(left_value, right_value):
                return False
        return True

    def __repr__(self) -> str:
        premise = " ∧ ".join(map(repr, self.premises))
        return (
            f"MD({self.left_relation}, {self.right_relation}: {premise} → "
            f"{list(self.rhs_left)} {self.rhs_operator.name} {list(self.rhs_right)})"
        )

    def _key(self):
        return (
            self.left_relation,
            self.right_relation,
            frozenset(self.premises),
            self.rhs_left,
            self.rhs_right,
            self.rhs_operator,
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MD) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


class RelativeKey(MD):
    """A key (X1, X2, C) relative to (Y1, Y2): no ⇋ in the premise."""

    def __init__(
        self,
        left_relation: str,
        right_relation: str,
        lhs_pairs: Sequence[PyTuple[str, str]],
        operators: Sequence[SimilarityOperator],
        rhs_left: Sequence[str],
        rhs_right: Sequence[str],
        name: str | None = None,
    ):
        if len(lhs_pairs) != len(operators):
            raise DependencyError("one operator per LHS attribute pair required")
        if any(op == MATCH for op in operators):
            raise DependencyError("relative keys must not use ⇋ in the premise")
        premises = [
            MDPremise(a, b, op) for (a, b), op in zip(lhs_pairs, operators)
        ]
        super().__init__(
            left_relation,
            right_relation,
            premises,
            rhs_left,
            rhs_right,
            MATCH,
            name=name or f"rck:{[p for p in lhs_pairs]}",
        )
        self.lhs_pairs: PyTuple[PyTuple[str, str], ...] = tuple(lhs_pairs)
        self.operators: PyTuple[SimilarityOperator, ...] = tuple(operators)
