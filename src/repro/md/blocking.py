"""Blocking for object identification.

Matching every pair is O(|D1|·|D2|); §4.2's claim that derived RCKs
improve the *efficiency* of object identification rests on using their
equality premises to restrict the candidate pairs.  A :class:`Blocker`
indexes the right-hand instance on a rule's equality attribute pairs and
yields only the pairs that can possibly satisfy that rule — pairs that
agree on every ``=``-premise.  Rules without any equality premise fall
back to the full cross product (reported so callers can see the cost).

The blocked matcher is exact for relative keys whose non-equality
premises are the only approximate ones: blocking never discards a pair
that the rule would match, because a pair failing an equality premise
cannot satisfy the rule.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple as PyTuple

from repro.md.model import MATCH, MD, MatchInterpretation
from repro.md.similarity import EQ
from repro.md.matching import MatchReport
from repro.relational.instance import RelationInstance
from repro.relational.tuples import Tuple

__all__ = ["Blocker", "BlockedObjectIdentifier"]


class Blocker:
    """Candidate-pair generator driven by a rule's equality premises."""

    def __init__(self, rule: MD, right: RelationInstance):
        self.rule = rule
        self.equality_pairs: List[PyTuple[str, str]] = [
            (p.left_attr, p.right_attr)
            for p in rule.premises
            if p.operator == EQ
        ]
        self._right = right
        self._index: Dict[tuple, List[Tuple]] | None = None
        if self.equality_pairs:
            # Shared engine index: rules blocking on the same attribute set
            # reuse one partition of the right-hand instance.
            key_attrs = [b for _, b in self.equality_pairs]
            self._index = right.indexes.group_index(key_attrs)

    @property
    def is_indexed(self) -> bool:
        return self._index is not None

    def candidates(self, left_tuple: Tuple) -> Iterator[Tuple]:
        """Right tuples agreeing with ``left_tuple`` on all '='-premises."""
        if self._index is None:
            yield from self._right
            return
        key = tuple(left_tuple[a] for a, _ in self.equality_pairs)
        yield from self._index.get(key, ())


class BlockedObjectIdentifier:
    """Rule application over blocked candidate pairs.

    Semantics match :class:`repro.md.matching.ObjectIdentifier` (including
    the ``target`` entity-conclusion filter) for rules whose ⇋-premises
    are fed by earlier rounds; the comparison count drops from
    |L|·|R|·|rules| to the number of blocked candidates.
    """

    def __init__(
        self,
        rules: Sequence[MD],
        target: PyTuple[Sequence[str], Sequence[str]] | None = None,
        chain: bool = True,
    ):
        self.rules = list(rules)
        self.target = (
            (tuple(target[0]), tuple(target[1])) if target is not None else None
        )
        self.chain = chain

    def _is_entity_rule(self, rule: MD) -> bool:
        if rule.rhs_operator != MATCH:
            return False
        if self.target is None:
            return True
        return (rule.rhs_left, rule.rhs_right) == self.target

    def identify(
        self,
        left: RelationInstance,
        right: RelationInstance,
        max_rounds: int = 10,
    ) -> MatchReport:
        interpretation = MatchInterpretation() if self.chain else None
        matches: Set[PyTuple[Tuple, Tuple]] = set()
        comparisons = 0
        rule_fires: Dict[str, int] = {rule.name: 0 for rule in self.rules}
        blockers = [Blocker(rule, right) for rule in self.rules]
        left_tuples = left.tuples()
        if not self.chain:
            max_rounds = 1
        for _ in range(max_rounds):
            changed = False
            for rule, blocker in zip(self.rules, blockers):
                for t1 in left_tuples:
                    for t2 in blocker.candidates(t1):
                        comparisons += rule.length
                        if not rule.premise_holds(t1, t2, interpretation):
                            continue
                        rule_fires[rule.name] += 1
                        pair = (t1, t2)
                        if pair not in matches and self._is_entity_rule(rule):
                            matches.add(pair)
                            changed = True
                        if interpretation is not None:
                            for a, b in zip(rule.rhs_left, rule.rhs_right):
                                changed |= interpretation.declare(
                                    ("L", a, t1[a]), ("R", b, t2[b])
                                )
            if not changed:
                break
        return MatchReport(matches, comparisons, rule_fires)
