"""Matching dependencies (paper §3): similarity operators, MDs, relative
candidate keys, PTIME implication, and object identification."""

from repro.md.blocking import BlockedObjectIdentifier, Blocker
from repro.md.dedup import DedupResult, EntityCluster, deduplicate
from repro.md.inference import MDFactStore, deduce_closure, md_implies
from repro.md.matching import MatchReport, ObjectIdentifier, match_pairs
from repro.md.model import (
    MATCH,
    MD,
    MatchInterpretation,
    MatchOperator,
    MDPremise,
    RelativeKey,
)
from repro.md.rck import derive_rcks, is_rck_among, key_leq
from repro.md.similarity import (
    EQ,
    ContainmentLattice,
    EditDistanceSimilarity,
    Equality,
    JaroSimilarity,
    QGramSimilarity,
    SimilarityOperator,
    TokenSetSimilarity,
    jaro,
    levenshtein,
    qgrams,
)

__all__ = [
    "BlockedObjectIdentifier",
    "Blocker",
    "ContainmentLattice",
    "DedupResult",
    "EntityCluster",
    "deduplicate",
    "EQ",
    "EditDistanceSimilarity",
    "Equality",
    "JaroSimilarity",
    "MATCH",
    "MD",
    "MDFactStore",
    "MDPremise",
    "MatchInterpretation",
    "MatchOperator",
    "MatchReport",
    "ObjectIdentifier",
    "QGramSimilarity",
    "RelativeKey",
    "SimilarityOperator",
    "TokenSetSimilarity",
    "deduce_closure",
    "derive_rcks",
    "is_rck_among",
    "jaro",
    "key_leq",
    "levenshtein",
    "match_pairs",
    "md_implies",
    "qgrams",
]
