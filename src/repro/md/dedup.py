"""Deduplication (merge/purge) within a single relation.

§3.1 frames object identification as "data deduplication, record linkage,
merge-purge": find the tuples of *one* relation that describe the same
real-world entity and consolidate them.  This module runs the matching
rules of :mod:`repro.md` reflexively over a relation, closes the matched
pairs transitively (the ⇋ axiom), and merges each entity cluster into a
golden record by weighted per-attribute voting (the same w(t, A)
confidence weights as the repair cost model).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set, Tuple as PyTuple

from repro.md.blocking import Blocker
from repro.md.model import MD, MatchInterpretation
from repro.relational.instance import RelationInstance
from repro.relational.tuples import Tuple

__all__ = ["EntityCluster", "DedupResult", "deduplicate"]


class EntityCluster:
    """One group of tuples identified as the same entity."""

    __slots__ = ("members", "golden")

    def __init__(self, members: List[Tuple], golden: Tuple):
        self.members = members
        self.golden = golden

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return f"EntityCluster({len(self.members)} tuples → {self.golden!r})"


class DedupResult:
    """Clusters plus the consolidated relation."""

    def __init__(
        self,
        clusters: List[EntityCluster],
        consolidated: RelationInstance,
        comparisons: int,
    ):
        self.clusters = clusters
        self.consolidated = consolidated
        self.comparisons = comparisons

    @property
    def duplicates_removed(self) -> int:
        return sum(len(c) - 1 for c in self.clusters)

    def __repr__(self) -> str:
        return (
            f"DedupResult({len(self.clusters)} entities, "
            f"{self.duplicates_removed} duplicates merged)"
        )


class _TupleUnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Tuple, Tuple] = {}

    def find(self, t: Tuple) -> Tuple:
        parent = self._parent.setdefault(t, t)
        if parent != t:
            root = self.find(parent)
            self._parent[t] = root
            return root
        return t

    def union(self, a: Tuple, b: Tuple) -> None:
        self._parent[self.find(a)] = self.find(b)


def _golden_record(members: List[Tuple], cost_model) -> Tuple:
    """Weighted plurality per attribute (ties broken deterministically)."""
    schema = members[0].schema
    values: Dict[str, Any] = {}
    for attr in schema.attribute_names:
        weight_of: Dict[Any, float] = {}
        for t in members:
            weight_of[t[attr]] = weight_of.get(t[attr], 0.0) + cost_model.weight(
                t, attr
            )
        values[attr] = max(
            sorted(weight_of, key=repr), key=lambda v: weight_of[v]
        )
    return Tuple(schema, values, validate=False)


def deduplicate(
    instance: RelationInstance,
    rules: Sequence[MD],
    cost_model=None,
    max_rounds: int = 5,
) -> DedupResult:
    """Merge/purge ``instance`` with reflexive matching rules.

    ``rules`` must be MDs over (R, R) for the instance's relation; pairs
    matched by any rule are merged transitively into entity clusters.
    ``cost_model`` is a :class:`repro.repair.models.CostModel` (imported
    lazily: repair's cost metric itself uses the similarity metrics here).
    """
    if cost_model is None:
        from repro.repair.models import CostModel

        cost_model = CostModel()
    interpretation = MatchInterpretation()
    uf = _TupleUnionFind()
    tuples = instance.tuples()
    comparisons = 0
    matched_pairs: Set[PyTuple[Tuple, Tuple]] = set()
    blockers = [Blocker(rule, instance) for rule in rules]
    for _ in range(max_rounds):
        changed = False
        for rule, blocker in zip(rules, blockers):
            for i, t1 in enumerate(tuples):
                for t2 in blocker.candidates(t1):
                    if t1 == t2:
                        continue
                    comparisons += rule.length
                    if not rule.premise_holds(t1, t2, interpretation):
                        continue
                    pair = (t1, t2)
                    if pair not in matched_pairs:
                        matched_pairs.add(pair)
                        uf.union(t1, t2)
                        changed = True
                    for a, b in zip(rule.rhs_left, rule.rhs_right):
                        changed |= interpretation.declare(
                            ("L", a, t1[a]), ("R", b, t2[b])
                        )
        if not changed:
            break
    groups: Dict[Tuple, List[Tuple]] = {}
    for t in tuples:
        groups.setdefault(uf.find(t), []).append(t)
    clusters: List[EntityCluster] = []
    consolidated = RelationInstance(instance.schema)
    for members in groups.values():
        golden = (
            members[0] if len(members) == 1 else _golden_record(members, cost_model)
        )
        clusters.append(EntityCluster(members, golden))
        consolidated.add(golden)
    clusters.sort(key=lambda c: repr(c.golden))
    return DedupResult(clusters, consolidated, comparisons)
