"""Domain-specific similarity operators (paper §3.2).

Each operator ≈ ∈ Θ is a binary relation on values that is **reflexive**,
**symmetric**, and **subsumes equality** (x = y ⟹ x ≈ y).  The metrics the
paper names — edit distance, q-grams, Jaro — are implemented from scratch,
each thresholded (`x ≈θ y` iff the distance/score passes θ).

Operators carry a *name* (identity for generic reasoning) and an optional
declared containment: ``a.contained_in(b)`` means a ⊆ b as relations, the
piece of knowledge the RCK derivation of §4.2 assumes is given.  Built-in
containments: equality is contained in every operator, and two thresholded
instances of the same metric are ordered by threshold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, FrozenSet, Iterable, Set, Tuple as PyTuple

__all__ = [
    "SimilarityOperator",
    "Equality",
    "EditDistanceSimilarity",
    "JaroSimilarity",
    "QGramSimilarity",
    "TokenSetSimilarity",
    "EQ",
    "levenshtein",
    "jaro",
    "qgrams",
    "ContainmentLattice",
]


def levenshtein(left: str, right: str) -> int:
    """Classical edit distance (insert/delete/substitute, unit costs)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, lch in enumerate(left, start=1):
        current = [i]
        for j, rch in enumerate(right, start=1):
            cost = 0 if lch == rch else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def jaro(left: str, right: str) -> float:
    """Jaro similarity in [0, 1] (1 = identical)."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_matched = [False] * len(left)
    right_matched = [False] * len(right)
    matches = 0
    for i, ch in enumerate(left):
        lo = max(0, i - window)
        hi = min(len(right), i + window + 1)
        for j in range(lo, hi):
            if not right_matched[j] and right[j] == ch:
                left_matched[i] = True
                right_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len(left)):
        if left_matched[i]:
            while not right_matched[k]:
                k += 1
            if left[i] != right[k]:
                transpositions += 1
            k += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(left) + m / len(right) + (m - transpositions) / m) / 3.0


def qgrams(value: str, q: int = 2) -> FrozenSet[str]:
    """The padded q-gram set of a string."""
    padded = ("#" * (q - 1)) + value + ("#" * (q - 1))
    return frozenset(padded[i : i + q] for i in range(len(padded) - q + 1))


class SimilarityOperator(ABC):
    """A named, reflexive, symmetric relation subsuming equality."""

    #: unique identifier; operators compare by name
    name: str

    @abstractmethod
    def similar(self, left: Any, right: Any) -> bool:
        """x ≈ y."""

    def contained_in(self, other: "SimilarityOperator") -> bool:
        """Declared containment ≈_self ⊆ ≈_other (generic knowledge).

        Default: only reflexive containment plus "equality ⊆ everything".
        Thresholded metrics refine this.
        """
        return self.name == other.name or isinstance(self, Equality)

    def __call__(self, left: Any, right: Any) -> bool:
        return self.similar(left, right)

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimilarityOperator) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("SimilarityOperator", self.name))


class Equality(SimilarityOperator):
    """The equality relation = (always in Θ)."""

    name = "="

    def similar(self, left: Any, right: Any) -> bool:
        return left == right


#: shared equality instance
EQ = Equality()


class EditDistanceSimilarity(SimilarityOperator):
    """x ≈θ y iff levenshtein(x, y) ≤ θ (the paper's ≈d)."""

    def __init__(self, threshold: int = 2, name: str | None = None):
        self.threshold = threshold
        self.name = name or f"edit≤{threshold}"

    def similar(self, left: Any, right: Any) -> bool:
        left_s, right_s = str(left), str(right)
        if abs(len(left_s) - len(right_s)) > self.threshold:
            return False
        return levenshtein(left_s, right_s) <= self.threshold

    def contained_in(self, other: SimilarityOperator) -> bool:
        if isinstance(other, EditDistanceSimilarity):
            return self.threshold <= other.threshold
        return super().contained_in(other)


class JaroSimilarity(SimilarityOperator):
    """x ≈ y iff jaro(x, y) ≥ θ."""

    def __init__(self, threshold: float = 0.85, name: str | None = None):
        self.threshold = threshold
        self.name = name or f"jaro≥{threshold}"

    def similar(self, left: Any, right: Any) -> bool:
        return jaro(str(left), str(right)) >= self.threshold

    def contained_in(self, other: SimilarityOperator) -> bool:
        if isinstance(other, JaroSimilarity):
            return self.threshold >= other.threshold
        return super().contained_in(other)


class QGramSimilarity(SimilarityOperator):
    """x ≈ y iff the Jaccard overlap of q-gram sets is ≥ θ."""

    def __init__(self, q: int = 2, threshold: float = 0.7, name: str | None = None):
        self.q = q
        self.threshold = threshold
        self.name = name or f"{q}gram≥{threshold}"

    def similar(self, left: Any, right: Any) -> bool:
        left_s, right_s = str(left), str(right)
        if left_s == right_s:
            return True
        left_g, right_g = qgrams(left_s, self.q), qgrams(right_s, self.q)
        union = left_g | right_g
        if not union:
            return True
        return len(left_g & right_g) / len(union) >= self.threshold

    def contained_in(self, other: SimilarityOperator) -> bool:
        if isinstance(other, QGramSimilarity) and self.q == other.q:
            return self.threshold >= other.threshold
        return super().contained_in(other)


class TokenSetSimilarity(SimilarityOperator):
    """x ≈ y iff the Jaccard overlap of whitespace tokens is ≥ θ.

    Useful for addresses ("Mountain Ave 600" vs "600 Mountain Ave").
    """

    def __init__(self, threshold: float = 0.6, name: str | None = None):
        self.threshold = threshold
        self.name = name or f"tokens≥{threshold}"

    def similar(self, left: Any, right: Any) -> bool:
        left_t = set(str(left).lower().split())
        right_t = set(str(right).lower().split())
        if left_t == right_t:
            return True
        union = left_t | right_t
        if not union:
            return True
        return len(left_t & right_t) / len(union) >= self.threshold

    def contained_in(self, other: SimilarityOperator) -> bool:
        if isinstance(other, TokenSetSimilarity):
            return self.threshold >= other.threshold
        return super().contained_in(other)


class ContainmentLattice:
    """The known containment relationships among similarity operators.

    The RCK derivation of §4.2 "assumes that the containment relationship
    of similarity relations in Θ is known (excluding ⇋)".  The lattice is
    seeded with each operator's self-declared containments and closed under
    reflexivity and transitivity; extra pairs can be declared explicitly.
    """

    def __init__(
        self,
        operators: Iterable[SimilarityOperator],
        extra_pairs: Iterable[PyTuple[str, str]] = (),
    ):
        self.operators: Dict[str, SimilarityOperator] = {
            op.name: op for op in operators
        }
        if EQ.name not in self.operators:
            self.operators[EQ.name] = EQ
        self._contained: Set[PyTuple[str, str]] = set()
        names = list(self.operators)
        for a in names:
            for b in names:
                if self.operators[a].contained_in(self.operators[b]):
                    self._contained.add((a, b))
        for a, b in extra_pairs:
            self._contained.add((a, b))
        # transitive closure (tiny lattices; cubic is fine)
        changed = True
        while changed:
            changed = False
            for a, b in list(self._contained):
                for c, d in list(self._contained):
                    if b == c and (a, d) not in self._contained:
                        self._contained.add((a, d))
                        changed = True

    def contains(self, smaller: SimilarityOperator, larger: SimilarityOperator) -> bool:
        """smaller ⊆ larger?"""
        return (smaller.name, larger.name) in self._contained

    def __repr__(self) -> str:
        return f"ContainmentLattice({sorted(self.operators)})"
