"""Object identification with matching rules (paper §3.1/§3.3).

The engine applies relative keys (matching rules) to a pair of relation
instances: a pair (t1, t2) is *matched* when some rule's premise holds on
the concrete values — similarity premises are evaluated with the concrete
metrics, ⇋-premises against the matches established so far, so rules like
φ2/φ3 of Example 3.1 chain (hence the fixpoint loop).  Matches are closed
transitively (the ⇋ axiom) over a union-find.

`MatchReport` carries precision/recall/F1 against a ground truth and the
number of attribute comparisons performed — the quality *and* efficiency
dimensions of the EXP-MATCH benchmark.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple as PyTuple

from repro.md.model import MATCH, MD, MatchInterpretation
from repro.relational.instance import RelationInstance
from repro.relational.tuples import Tuple

__all__ = ["MatchReport", "ObjectIdentifier", "match_pairs"]


class MatchReport:
    """Matched pairs plus quality/efficiency statistics."""

    def __init__(
        self,
        matches: Set[PyTuple[Tuple, Tuple]],
        comparisons: int,
        rule_fires: Dict[str, int],
    ):
        self.matches = matches
        self.comparisons = comparisons
        self.rule_fires = rule_fires

    def quality(
        self, truth: Set[PyTuple[Tuple, Tuple]]
    ) -> Dict[str, float]:
        """precision / recall / f1 against a ground-truth pair set."""
        true_positives = len(self.matches & truth)
        precision = true_positives / len(self.matches) if self.matches else 1.0
        recall = true_positives / len(truth) if truth else 1.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return {"precision": precision, "recall": recall, "f1": f1}

    def __repr__(self) -> str:
        return (
            f"MatchReport({len(self.matches)} matches, "
            f"{self.comparisons} comparisons, fires={self.rule_fires})"
        )


class ObjectIdentifier:
    """Applies a set of matching rules (MDs) to two relation instances.

    ``target`` optionally names the (Y1, Y2) attribute lists whose ⇋
    identifies *entities* (e.g. (Yc, Yb) of §3.1): only rules concluding
    exactly that pair add (t1, t2) to the match set, while every rule
    still contributes its attribute-level ⇋ facts for chaining.  With
    ``target=None`` any ⇋-conclusion counts as an entity match.

    ``chain`` controls how ⇋-premises are evaluated:

    * ``True`` (default) — the fixpoint engine: ⇋-premises consult the
      matches established by earlier rule firings (φ1 feeding φ3/φ4);
    * ``False`` — rules are applied *directly on the source data*, the
      way matching rules are used in practice (§3.3): a ⇋-premise is
      witnessed only by raw equality.  This is the regime in which
      derived RCKs add recall — they compile the reasoning chain into
      direct source-attribute comparisons (§3.1's "derived comparison
      vectors can improve match quality").
    """

    def __init__(
        self,
        rules: Sequence[MD],
        target: PyTuple[Sequence[str], Sequence[str]] | None = None,
        chain: bool = True,
    ):
        self.rules = list(rules)
        self.target = (
            (tuple(target[0]), tuple(target[1])) if target is not None else None
        )
        self.chain = chain

    def _is_entity_rule(self, rule: MD) -> bool:
        if rule.rhs_operator != MATCH:
            return False
        if self.target is None:
            return True
        return (rule.rhs_left, rule.rhs_right) == self.target

    def identify(
        self,
        left: RelationInstance,
        right: RelationInstance,
        max_rounds: int = 10,
    ) -> MatchReport:
        """Find all matched (t1, t2) pairs.

        Runs rounds to fixpoint because ⇋-premises (e.g. φ3 of Example 3.1
        needs addr ⇋ post established by φ1) may only be satisfied after
        earlier rules have fired.
        """
        interpretation = MatchInterpretation() if self.chain else None
        matches: Set[PyTuple[Tuple, Tuple]] = set()
        comparisons = 0
        rule_fires: Dict[str, int] = {rule.name: 0 for rule in self.rules}
        left_tuples = left.tuples()
        right_tuples = right.tuples()
        if not self.chain:
            max_rounds = 1
        for _ in range(max_rounds):
            changed = False
            for t1 in left_tuples:
                for t2 in right_tuples:
                    for rule in self.rules:
                        comparisons += rule.length
                        if not rule.premise_holds(t1, t2, interpretation):
                            continue
                        rule_fires[rule.name] += 1
                        pair = (t1, t2)
                        if pair not in matches and self._is_entity_rule(rule):
                            matches.add(pair)
                            changed = True
                        # record per-attribute matches so ⇋-premises of
                        # other rules can consume them (pairwise decomposition)
                        if interpretation is not None:
                            for a, b in zip(rule.rhs_left, rule.rhs_right):
                                changed |= interpretation.declare(
                                    ("L", a, t1[a]), ("R", b, t2[b])
                                )
            if not changed:
                break
        return MatchReport(matches, comparisons, rule_fires)


def match_pairs(
    left: RelationInstance,
    right: RelationInstance,
    rules: Sequence[MD],
) -> Set[PyTuple[Tuple, Tuple]]:
    """Convenience wrapper returning just the matched pairs."""
    return ObjectIdentifier(rules).identify(left, right).matches
