"""Generic reasoning about MDs: the PTIME implication algorithm (Thm 4.8).

Σ ⊨m φ holds iff φ is enforced whenever Σ is, *for every* interpretation of
the similarity and matching operators satisfying their generic axioms
(§3.2): each ≈ reflexive, symmetric, subsuming equality; ⇋ additionally
transitive and pairwise-decomposable on lists.

The decision procedure reasons about one universally-quantified tuple pair
(t1, t2).  Its state is a set of *facts* about attribute nodes — ``L.A``
(t1's value of A) and ``R.B`` (t2's) — of three kinds:

* equality facts, closed under the equivalence axioms (union-find);
* match facts (⇋), also an equivalence (union-find) into which equality
  feeds (= ⊆ ⇋);
* similarity facts (A, B, ≈) for the other operators, *not* transitive,
  consulted modulo the equality classes and the known containment lattice.

Seed the facts with φ's premise, saturate with Σ (fire an MD when each of
its premise conjuncts is entailed by the facts), and test φ's conclusion.
Each firing adds at least one fact over a quadratic universe, so the
fixpoint is reached in polynomial time — this is the algorithm of [38]
(Theorem 4.8), and its soundness/completeness rests on the canonical-model
argument: the final fact set *is* an interpretation satisfying the generic
axioms, so a non-derived conclusion has a countermodel.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple as PyTuple

from repro.errors import DependencyError
from repro.md.model import MATCH, MD, MDPremise
from repro.md.similarity import EQ, ContainmentLattice, SimilarityOperator

__all__ = ["MDFactStore", "md_implies", "deduce_closure"]

Node = PyTuple[str, str]  # ("L" | "R", attribute)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Node, Node] = {}

    def find(self, item: Node) -> Node:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self._parent[item] = root
            return root
        return item

    def union(self, left: Node, right: Node) -> bool:
        """Merge; True iff the classes were previously distinct."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        self._parent[left_root] = right_root
        return True

    def same(self, left: Node, right: Node) -> bool:
        return self.find(left) == self.find(right)


class MDFactStore:
    """The fact state of the implication procedure."""

    def __init__(self, lattice: ContainmentLattice):
        self.lattice = lattice
        self.eq = _UnionFind()
        self.match = _UnionFind()
        self.sim: Set[PyTuple[Node, Node, str]] = set()

    def add(self, left: Node, right: Node, op: SimilarityOperator) -> bool:
        """Record a fact; returns True iff the state changed."""
        if op == EQ:
            changed = self.eq.union(left, right)
            # = ⊆ ⇋ and = ⊆ every similarity operator: equality classes are
            # consulted directly by `entails`, so only ⇋ needs the feed-in.
            changed |= self.match.union(left, right)
            return changed
        if op == MATCH:
            return self.match.union(left, right)
        fact = (self.eq.find(left), self.eq.find(right), op.name)
        if fact in self.sim:
            return False
        self.sim.add(fact)
        return True

    def entails(self, left: Node, right: Node, op: SimilarityOperator) -> bool:
        """Is t1[left] ≈op t2[right] forced by the facts?"""
        # reflexivity + equality: equal values satisfy every operator
        if self.eq.same(left, right):
            return True
        if op == MATCH and self.match.same(left, right):
            return True
        if op == EQ:
            return False  # only the equality classes witness equality
        left_root, right_root = self.eq.find(left), self.eq.find(right)
        for fact_left, fact_right, fact_op in self.sim:
            if {self.eq.find(fact_left), self.eq.find(fact_right)} != {
                left_root,
                right_root,
            }:
                continue
            smaller = self.lattice.operators.get(fact_op)
            if smaller is not None and self.lattice.contains(smaller, op):
                return True
        return False


def _orient(
    md: MD, left_relation: str, right_relation: str
) -> PyTuple[List[MDPremise], bool] | None:
    """Premises of ``md`` oriented as (left_relation, right_relation) and a
    flag saying whether the MD was flipped; None for other relation pairs."""
    if (md.left_relation, md.right_relation) == (left_relation, right_relation):
        return list(md.premises), False
    if (md.right_relation, md.left_relation) == (left_relation, right_relation):
        # similarity operators are symmetric, so premises flip soundly
        flipped = [
            MDPremise(p.right_attr, p.left_attr, p.operator) for p in md.premises
        ]
        return flipped, True
    return None


def deduce_closure(
    sigma: Sequence[MD],
    target: MD,
    lattice: ContainmentLattice,
) -> MDFactStore:
    """Seed with target's premise and saturate with Σ; returns the store."""
    left_rel, right_rel = target.left_relation, target.right_relation
    store = MDFactStore(lattice)
    for p in target.premises:
        store.add(("L", p.left_attr), ("R", p.right_attr), p.operator)

    oriented: List[PyTuple[List[MDPremise], MD, bool]] = []
    for md in sigma:
        result = _orient(md, left_rel, right_rel)
        if result is not None:
            premises, swapped = result
            oriented.append((premises, md, swapped))
    changed = True
    while changed:
        changed = False
        for premises, md, swapped in oriented:
            if not all(
                store.entails(("L", p.left_attr), ("R", p.right_attr), p.operator)
                for p in premises
            ):
                continue
            pairs = list(zip(md.rhs_left, md.rhs_right))
            if swapped:
                pairs = [(b, a) for a, b in pairs]
            if md.rhs_operator in (MATCH, EQ):
                # pairwise decomposition (axiom of ⇋; trivial for =)
                for a, b in pairs:
                    changed |= store.add(("L", a), ("R", b), md.rhs_operator)
            else:
                if len(pairs) != 1:
                    raise DependencyError(
                        "non-⇋ MD conclusions must be single-attribute"
                    )
                a, b = pairs[0]
                changed |= store.add(("L", a), ("R", b), md.rhs_operator)
    return store


def md_implies(
    sigma: Sequence[MD],
    target: MD,
    lattice: ContainmentLattice | None = None,
) -> bool:
    """Decide Σ ⊨m φ in PTIME (Theorem 4.8).

    ``lattice`` carries the known containments among similarity operators;
    by default only the generic ones (= ⊆ ≈ for all ≈, thresholded metrics
    ordered by threshold) collected from the operators appearing in
    Σ ∪ {φ}.
    """
    if lattice is None:
        operators = {p.operator for md in list(sigma) + [target] for p in md.premises}
        operators |= {md.rhs_operator for md in list(sigma) + [target]}
        lattice = ContainmentLattice(operators)
    store = deduce_closure(sigma, target, lattice)
    pairs = list(zip(target.rhs_left, target.rhs_right))
    if target.rhs_operator in (MATCH, EQ):
        return all(
            store.entails(("L", a), ("R", b), target.rhs_operator) for a, b in pairs
        )
    if len(pairs) != 1:
        raise DependencyError("non-⇋ MD conclusions must be single-attribute")
    a, b = pairs[0]
    return store.entails(("L", a), ("R", b), target.rhs_operator)
