"""Deriving relative candidate keys from MDs (paper §3.3 and §4.2).

A key ψ = (X1, X2, C) relative to (Y1, Y2) is an MD without ⇋ in the
premise whose conclusion is R1[Y1] ⇋ R2[Y2].  The ordering ψ ≤ ψ′ (fewer
attribute pairs, each compared by a contained — i.e. stronger — similarity
operator) makes "minimal" precise; a *relative candidate key* (RCK) is a
≤-minimal key.  Derived RCKs serve as matching rules; [38] reports they
"improve the quality and efficiency of various object identification
methods", the claim benchmark EXP-MATCH measures.

``derive_rcks`` enumerates candidate keys over a given pool of attribute
pairs and operators (bounded length), keeps those implied by Σ (via the
PTIME procedure of :mod:`repro.md.inference`), and prunes non-minimal ones.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple as PyTuple

from repro.md.inference import md_implies
from repro.md.model import MATCH, MD, RelativeKey
from repro.md.similarity import ContainmentLattice, SimilarityOperator

__all__ = ["key_leq", "is_rck_among", "derive_rcks"]


def key_leq(
    first: RelativeKey, second: RelativeKey, lattice: ContainmentLattice
) -> bool:
    """ψ ≤ ψ′ per the paper: every pair of ψ appears in ψ′ with a similarity
    operator of ψ′ contained in ψ's (and ψ is no longer than ψ′)."""
    if first.length > second.length:
        return False
    for (pair, op) in zip(first.lhs_pairs, first.operators):
        found = False
        for (pair2, op2) in zip(second.lhs_pairs, second.operators):
            if pair == pair2 and lattice.contains(op2, op):
                found = True
                break
        if not found:
            return False
    return True


def key_lt(first: RelativeKey, second: RelativeKey, lattice: ContainmentLattice) -> bool:
    """ψ < ψ′: ψ ≤ ψ′ but not ψ′ ≤ ψ."""
    return key_leq(first, second, lattice) and not key_leq(second, first, lattice)


def is_rck_among(
    key: RelativeKey, others: Iterable[RelativeKey], lattice: ContainmentLattice
) -> bool:
    """True iff no other key is strictly smaller than ``key``."""
    return not any(key_lt(other, key, lattice) for other in others if other != key)


def derive_rcks(
    sigma: Sequence[MD],
    rhs_left: Sequence[str],
    rhs_right: Sequence[str],
    attribute_pairs: Sequence[PyTuple[str, str]] | None = None,
    operators: Sequence[SimilarityOperator] | None = None,
    max_length: int = 3,
    lattice: ContainmentLattice | None = None,
) -> List[RelativeKey]:
    """Derive relative candidate keys for (rhs_left, rhs_right) from Σ.

    ``attribute_pairs``/``operators`` bound the candidate space; both
    default to the pairs and (non-⇋) operators appearing in Σ's premises.
    Exhaustive up to ``max_length`` premise conjuncts, then ≤-minimized.
    """
    if not sigma:
        return []
    left_rel = sigma[0].left_relation
    right_rel = sigma[0].right_relation
    if attribute_pairs is None:
        attribute_pairs = sorted(
            {
                (p.left_attr, p.right_attr)
                for md in sigma
                for p in md.premises
            }
        )
    if operators is None:
        operators = sorted(
            {
                p.operator
                for md in sigma
                for p in md.premises
                if p.operator != MATCH
            },
            key=lambda op: op.name,
        )
    if lattice is None:
        pool = set(operators)
        for md in sigma:
            pool.update(p.operator for p in md.premises)
            pool.add(md.rhs_operator)
        lattice = ContainmentLattice(pool)

    implied: List[RelativeKey] = []
    for size in range(1, max_length + 1):
        for pairs in itertools.combinations(attribute_pairs, size):
            for ops in itertools.product(operators, repeat=size):
                candidate = RelativeKey(
                    left_rel, right_rel, list(pairs), list(ops), rhs_left, rhs_right
                )
                # prune: a candidate ≥ an already-implied key is implied too
                # but never minimal, so skip it outright
                if any(key_leq(prev, candidate, lattice) for prev in implied):
                    continue
                if md_implies(sigma, candidate, lattice):
                    implied.append(candidate)
    return [k for k in implied if is_rck_among(k, implied, lattice)]
